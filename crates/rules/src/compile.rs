//! Compilation of verified rule files onto the streaming engine.
//!
//! A [`RuleSet`] implements [`DynDetector`]: installed into the
//! `DiagnosisEngine` it sees exactly the event stream the hand-coded
//! detectors see and publishes the same typed [`Alert`] documents.
//! Stream rules evaluate per event over shared [`StreamState`]; window
//! rules compile their aggregates into per-window accumulators on the
//! same [`SlidingWindows`] machinery (and therefore the same watermark
//! and sealing semantics) as the built-in detectors.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use dio_diagnose::{Alert, AlertKind, DynDetector, Severity, SlidingWindows};
use dio_telemetry::{Counter, MetricsRegistry};
use serde_json::{json, Value};

use crate::ast::{Action, Expr, ExprKind, Rule, RuleFile, SeverityLit, Trigger};
use crate::check::{verify_rules, RulesError, RulesReport};
use crate::exec::{eval, event_resolver, EventAtoms, StreamState, V};
use crate::lexer::ParseError;
use crate::parser::parse_rules;

/// Why a rule source failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The source did not parse.
    Parse(ParseError),
    /// The file parsed but the static pass rejected it.
    Verify(RulesError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<RulesError> for CompileError {
    fn from(e: RulesError) -> Self {
        CompileError::Verify(e)
    }
}

/// Parses, verifies, and compiles rule source. The only path onto the
/// engine: a statically rejected file never produces a [`RuleSet`].
pub fn compile(src: &str) -> Result<RuleSet, CompileError> {
    let file = parse_rules(src)?;
    let report = verify_rules(&file).into_result()?;
    Ok(RuleSet::build(file, report))
}

/// Compiles an already-parsed file, still enforcing the static pass.
pub fn compile_file(file: &RuleFile) -> Result<RuleSet, RulesError> {
    let report = verify_rules(file).into_result()?;
    Ok(RuleSet::build(file.clone(), report))
}

/// Compiles without the static pass.
///
/// Only for tests (the never-fires property runs statically-rejected
/// rules on purpose); evaluation is total and unknown-tolerant, so even
/// ill-typed predicates execute without panicking — they just never
/// evaluate to true.
pub fn compile_unchecked(file: &RuleFile) -> RuleSet {
    RuleSet::build(file.clone(), verify_rules(file))
}

// ------------------------------------------------------------ aggregates

/// One base (per-window) aggregate, identified by its printed form.
#[derive(Debug, Clone)]
enum AggSpec {
    Count(Option<Expr>),
    Errors,
    ErrorFraction,
    Rate,
    Pct(f64, Expr),
    Distinct(Expr, Option<Expr>),
    /// Malformed under `compile_unchecked`: accumulates nothing,
    /// evaluates to unknown.
    Invalid,
}

/// A derived aggregate computed at seal time from per-key history.
#[derive(Debug, Clone)]
enum PostSpec {
    /// Mean of `inner` over the previous `n` sealed windows of the key;
    /// defined only once exactly `n` windows of history exist.
    Baseline { inner: String, n: usize },
    /// Running mean of `inner` over past windows where `cond` held.
    MeanWhen { inner: String, cond: Expr },
}

/// Per-window per-key accumulator state, parallel to the spec list.
#[derive(Debug, Clone)]
enum AggAcc {
    Count(u64),
    Errors(u64),
    ErrorFraction { ops: u64, errs: u64 },
    Rate(u64),
    Pct(Vec<f64>),
    Distinct(std::collections::BTreeSet<String>),
    Invalid,
}

impl AggSpec {
    fn fresh_acc(&self) -> AggAcc {
        match self {
            AggSpec::Count(_) => AggAcc::Count(0),
            AggSpec::Errors => AggAcc::Errors(0),
            AggSpec::ErrorFraction => AggAcc::ErrorFraction { ops: 0, errs: 0 },
            AggSpec::Rate => AggAcc::Rate(0),
            AggSpec::Pct(..) => AggAcc::Pct(Vec::new()),
            AggSpec::Distinct(..) => AggAcc::Distinct(Default::default()),
            AggSpec::Invalid => AggAcc::Invalid,
        }
    }

    fn observe(&self, acc: &mut AggAcc, doc: &Value) {
        let resolver = event_resolver(doc, None);
        match (self, acc) {
            (AggSpec::Count(None), AggAcc::Count(n)) => *n += 1,
            (AggSpec::Count(Some(pred)), AggAcc::Count(n)) if eval(pred, &resolver).is_true() => {
                *n += 1;
            }
            (AggSpec::Count(Some(_)), AggAcc::Count(_)) => {}
            (AggSpec::Errors, AggAcc::Errors(n))
                if doc["ret_val"].as_i64().is_some_and(|r| r < 0) =>
            {
                *n += 1;
            }
            (AggSpec::Errors, AggAcc::Errors(_)) => {}
            (AggSpec::ErrorFraction, AggAcc::ErrorFraction { ops, errs }) => {
                *ops += 1;
                if doc["ret_val"].as_i64().is_some_and(|r| r < 0) {
                    *errs += 1;
                }
            }
            (AggSpec::Rate, AggAcc::Rate(n)) => *n += 1,
            (AggSpec::Pct(_, expr), AggAcc::Pct(values)) => {
                if let V::Num(v) = eval(expr, &resolver) {
                    values.push(v);
                }
            }
            (AggSpec::Distinct(value, pred), AggAcc::Distinct(set)) => {
                let selected = match pred {
                    Some(p) => eval(p, &resolver).is_true(),
                    None => true,
                };
                if selected {
                    match eval(value, &resolver) {
                        V::Num(n) => {
                            set.insert(format!("{n}"));
                        }
                        V::Str(s) => {
                            set.insert(s);
                        }
                        V::Bool(b) => {
                            set.insert(b.to_string());
                        }
                        V::Unknown => {}
                    }
                }
            }
            _ => {}
        }
    }

    fn value(&self, acc: &AggAcc, width_ns: u64) -> V {
        match acc {
            AggAcc::Count(n) | AggAcc::Errors(n) => V::Num(*n as f64),
            AggAcc::ErrorFraction { ops: 0, .. } => V::Unknown,
            AggAcc::ErrorFraction { ops, errs } => V::Num(*errs as f64 / *ops as f64),
            AggAcc::Rate(n) => V::Num(*n as f64 / (width_ns.max(1) as f64 / 1e9)),
            AggAcc::Pct(values) => {
                if values.is_empty() {
                    return V::Unknown;
                }
                let AggSpec::Pct(q, _) = self else { return V::Unknown };
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                // Nearest-rank percentile.
                let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
                V::Num(sorted[rank.clamp(1, sorted.len()) - 1])
            }
            AggAcc::Distinct(set) => V::Num(set.len() as f64),
            AggAcc::Invalid => V::Unknown,
        }
    }
}

/// The aggregate program of one window rule: base aggregates keyed by
/// printed form, then derived aggregates in dependency order.
#[derive(Debug, Clone, Default)]
struct WindowProgram {
    aggs: Vec<(String, AggSpec)>,
    posts: Vec<(String, PostSpec)>,
}

impl WindowProgram {
    fn collect(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(name) if is_nullary_agg(name) => {
                self.register_base(name.clone(), base_spec(name, &[]));
            }
            ExprKind::Call { name, args } if crate::catalog::is_aggregate(name) => {
                let key = e.to_string();
                match name.as_str() {
                    "baseline" | "mean_when" => {
                        if self.posts.iter().any(|(k, _)| *k == key) {
                            return;
                        }
                        let Some(first) = args.first() else {
                            self.register_base(key, AggSpec::Invalid);
                            return;
                        };
                        // The inner aggregate (and any aggregates inside a
                        // mean_when condition) must be computed first.
                        self.collect(first);
                        let inner = first.to_string();
                        let post = match name.as_str() {
                            "baseline" => {
                                let n = match args.get(1).map(|a| &a.kind) {
                                    Some(ExprKind::Int(n)) if *n >= 1 => *n as usize,
                                    _ => 1,
                                };
                                PostSpec::Baseline { inner, n }
                            }
                            _ => {
                                let cond = match args.get(1) {
                                    Some(c) => {
                                        self.collect(c);
                                        c.clone()
                                    }
                                    None => Expr::new(ExprKind::Int(0)),
                                };
                                PostSpec::MeanWhen { inner, cond }
                            }
                        };
                        self.posts.push((key, post));
                    }
                    _ => self.register_base(key, base_spec(name, args)),
                }
            }
            ExprKind::Neg(inner) | ExprKind::Not(inner) => self.collect(inner),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.collect(lhs);
                self.collect(rhs);
            }
            ExprKind::In { lhs, .. } | ExprKind::StartsWith { lhs, .. } => self.collect(lhs),
            _ => {}
        }
    }

    fn register_base(&mut self, key: String, spec: AggSpec) {
        if !self.aggs.iter().any(|(k, _)| *k == key) {
            self.aggs.push((key, spec));
        }
    }
}

fn is_nullary_agg(name: &str) -> bool {
    matches!(name, "count" | "errors" | "error_fraction" | "rate")
}

fn base_spec(name: &str, args: &[Expr]) -> AggSpec {
    match (name, args) {
        ("count", []) => AggSpec::Count(None),
        ("count", [pred]) => AggSpec::Count(Some(pred.clone())),
        ("errors", []) => AggSpec::Errors,
        ("error_fraction", []) => AggSpec::ErrorFraction,
        ("rate", []) => AggSpec::Rate,
        ("p50", [v]) => AggSpec::Pct(50.0, v.clone()),
        ("p95", [v]) => AggSpec::Pct(95.0, v.clone()),
        ("p99", [v]) => AggSpec::Pct(99.0, v.clone()),
        ("distinct", [v]) => AggSpec::Distinct(v.clone(), None),
        ("distinct", [v, pred]) => AggSpec::Distinct(v.clone(), Some(pred.clone())),
        _ => AggSpec::Invalid,
    }
}

// ---------------------------------------------------------- compiled rule

/// Per-key state behind a derived aggregate.
#[derive(Debug, Clone, Default)]
struct PostState {
    /// Trailing inner values (baseline).
    hist: VecDeque<f64>,
    /// Running sum/count of inner values over matching windows (mean_when).
    sum: f64,
    n: u64,
}

#[derive(Debug, Default)]
struct RuleStats {
    evaluated: u64,
    fired: u64,
    suppressed: u64,
    records: u64,
}

struct CompiledRule {
    rule: Rule,
    program: WindowProgram,
    /// Window start → key value → accumulators (window rules only).
    windows: Option<SlidingWindows<BTreeMap<String, Vec<AggAcc>>>>,
    /// Per post-spec, per key value: derived-aggregate state.
    post_state: Vec<BTreeMap<String, PostState>>,
    stats: RuleStats,
    fired_counter: Option<Arc<Counter>>,
    suppressed_counter: Option<Arc<Counter>>,
}

impl CompiledRule {
    fn new(rule: Rule) -> CompiledRule {
        let mut program = WindowProgram::default();
        let windows = match &rule.trigger {
            Trigger::Stream => None,
            Trigger::Window { width, slide } => {
                program.collect(&rule.when);
                Some(SlidingWindows::new(width.as_ns(), slide.map(|s| s.as_ns()).unwrap_or(0)))
            }
        };
        let post_state = vec![BTreeMap::new(); program.posts.len()];
        CompiledRule {
            rule,
            program,
            windows,
            post_state,
            stats: RuleStats::default(),
            fired_counter: None,
            suppressed_counter: None,
        }
    }

    fn width_ns(&self) -> u64 {
        match &self.rule.trigger {
            Trigger::Window { width, .. } => width.as_ns(),
            Trigger::Stream => 0,
        }
    }

    /// The window key for `doc`, `None` when the key field is missing
    /// (the event is skipped, matching the hand-coded detectors).
    fn key_of(&self, doc: &Value) -> Option<String> {
        let Some(dim) = self.rule.key else { return Some(String::new()) };
        let field = dim.field();
        match &doc[field] {
            Value::Number(n) => n.as_u64().map(|v| v.to_string()),
            Value::String(s) => Some(s.clone()),
            _ => None,
        }
    }

    fn observe_window(&mut self, doc: &Value) {
        let Some(key) = self.key_of(doc) else { return };
        // Missing timestamps bucket at 0, matching the built-in detectors.
        let t = doc["time"].as_u64().unwrap_or(0);
        let Some(windows) = &mut self.windows else { return };
        let program = &self.program;
        windows.observe(t, |acc| {
            let accs = acc
                .entry(key.clone())
                .or_insert_with(|| program.aggs.iter().map(|(_, s)| s.fresh_acc()).collect());
            for ((_, spec), slot) in program.aggs.iter().zip(accs.iter_mut()) {
                spec.observe(slot, doc);
            }
        });
    }

    /// Evaluates one sealed window, raising alerts for definite matches.
    fn seal(&mut self, start: u64, keys: BTreeMap<String, Vec<AggAcc>>, out: &mut Vec<Alert>) {
        let width = self.width_ns();
        for (key, accs) in keys {
            self.stats.evaluated += 1;
            // 1. Base aggregate values.
            let mut env: BTreeMap<String, V> = BTreeMap::new();
            for ((name, spec), acc) in self.program.aggs.iter().zip(accs.iter()) {
                env.insert(name.clone(), spec.value(acc, width));
            }
            // 2. Derived aggregates, in dependency order, reading history
            //    from *before* this window.
            for (i, (name, post)) in self.program.posts.iter().enumerate() {
                let state = self.post_state[i].entry(key.clone()).or_default();
                let value = match post {
                    PostSpec::Baseline { n, .. } => {
                        if state.hist.len() == *n {
                            V::Num(state.hist.iter().sum::<f64>() / *n as f64)
                        } else {
                            V::Unknown
                        }
                    }
                    PostSpec::MeanWhen { .. } => {
                        if state.n > 0 {
                            V::Num(state.sum / state.n as f64)
                        } else {
                            V::Unknown
                        }
                    }
                };
                env.insert(name.clone(), value);
            }
            // 3. Evaluate the predicate in window scope.
            let resolver = |e: &Expr| env.get(&e.to_string()).cloned();
            let fired = eval(&self.rule.when, &resolver).is_true();
            if fired {
                let subject = if key.is_empty() { self.rule.name.clone() } else { key.clone() };
                self.fire(subject, start + width, Some((start, start + width)), &env, &[], out);
            }
            // 4. Update derived-aggregate state *after* evaluation, so a
            //    window never contributes to its own baseline.
            for (i, (_, post)) in self.program.posts.iter().enumerate() {
                let inner = match post {
                    PostSpec::Baseline { inner, .. } | PostSpec::MeanWhen { inner, .. } => inner,
                };
                let Some(V::Num(inner_value)) = env.get(inner.as_str()).cloned() else { continue };
                let update_mean = match post {
                    PostSpec::Baseline { .. } => false,
                    PostSpec::MeanWhen { cond, .. } => {
                        eval(cond, &|e: &Expr| env.get(&e.to_string()).cloned()).is_true()
                    }
                };
                let state = self.post_state[i].entry(key.clone()).or_default();
                match post {
                    PostSpec::Baseline { n, .. } => {
                        state.hist.push_back(inner_value);
                        while state.hist.len() > *n {
                            state.hist.pop_front();
                        }
                    }
                    PostSpec::MeanWhen { .. } => {
                        if update_mean {
                            state.sum += inner_value;
                            state.n += 1;
                        }
                    }
                }
            }
        }
    }

    fn observe_stream(&mut self, doc: &Value, atoms: &EventAtoms, out: &mut Vec<Alert>) {
        self.stats.evaluated += 1;
        let resolver = event_resolver(doc, Some(atoms));
        if eval(&self.rule.when, &resolver).is_true() {
            let subject = doc["file_tag"]
                .as_str()
                .map(str::to_string)
                .unwrap_or_else(|| self.rule.name.clone());
            let time = doc["time"].as_u64().unwrap_or(0);
            self.fire(subject, time, None, &BTreeMap::new(), std::slice::from_ref(doc), out);
        }
    }

    fn fire(
        &mut self,
        subject: String,
        time_ns: u64,
        window: Option<(u64, u64)>,
        env: &BTreeMap<String, V>,
        evidence: &[Value],
        out: &mut Vec<Alert>,
    ) {
        match &self.rule.action {
            Action::Record { .. } => {
                self.stats.records += 1;
            }
            Action::Alert { severity, kind, message, .. } => {
                if self.rule.limit.is_some_and(|l| self.stats.fired >= l) {
                    self.stats.suppressed += 1;
                    if let Some(c) = &self.suppressed_counter {
                        c.inc();
                    }
                    return;
                }
                self.stats.fired += 1;
                if let Some(c) = &self.fired_counter {
                    c.inc();
                }
                let kind =
                    kind.as_deref().and_then(AlertKind::parse).unwrap_or(AlertKind::RuleMatch);
                let mut values = serde_json::Map::new();
                for (k, v) in env {
                    values.insert(k.clone(), v.to_json());
                }
                let values = Value::Object(values);
                out.push(Alert {
                    seq: 0,
                    detector: "rules",
                    kind,
                    severity: match severity {
                        SeverityLit::Info => Severity::Info,
                        SeverityLit::Warning => Severity::Warning,
                        SeverityLit::Critical => Severity::Critical,
                    },
                    time_ns,
                    window_start_ns: window.map(|(s, _)| s),
                    window_end_ns: window.map(|(_, e)| e),
                    subject,
                    message: message.clone(),
                    fields: json!({ "rule": self.rule.name, "values": values }),
                    evidence: evidence.to_vec(),
                    attribution: None,
                });
            }
        }
    }

    fn report(&self) -> Value {
        let (trigger, window_ns, slide_ns) = match &self.rule.trigger {
            Trigger::Stream => ("stream", None, None),
            Trigger::Window { width, slide } => {
                ("window", Some(width.as_ns()), slide.map(|s| s.as_ns()))
            }
        };
        let (action, severity, kind) = match &self.rule.action {
            Action::Alert { severity, kind, .. } => {
                ("alert", Some(severity.keyword()), Some(kind.as_deref().unwrap_or("rule_match")))
            }
            Action::Record { .. } => ("record", None, None),
        };
        json!({
            "rule": self.rule.name,
            "trigger": trigger,
            "window_ns": window_ns,
            "slide_ns": slide_ns,
            "key": self.rule.key.map(|k| k.keyword()),
            "when": self.rule.when.to_string(),
            "action": action,
            "severity": severity,
            "alert_kind": kind,
            "limit": self.rule.limit,
            "attribution": self.rule.attribution,
            "evaluated": self.stats.evaluated,
            "fired": self.stats.fired,
            "suppressed": self.stats.suppressed,
            "records": self.stats.records,
            "open_windows": self.windows.as_ref().map(|w| w.open_count()).unwrap_or(0),
        })
    }
}

// --------------------------------------------------------------- rule set

/// A compiled set of rules, installable into the engine as a detector.
pub struct RuleSet {
    rules: Vec<CompiledRule>,
    stream: StreamState,
    has_stream_rules: bool,
    report: RulesReport,
}

impl RuleSet {
    fn build(file: RuleFile, report: RulesReport) -> RuleSet {
        let rules: Vec<CompiledRule> = file.rules.into_iter().map(CompiledRule::new).collect();
        let has_stream_rules = rules.iter().any(|r| matches!(r.rule.trigger, Trigger::Stream));
        RuleSet { rules, stream: StreamState::default(), has_stream_rules, report }
    }

    /// The static-analysis report the set was admitted under (carries any
    /// warnings; rejecting reports never reach a `RuleSet` via [`compile`]).
    pub fn verify_report(&self) -> &RulesReport {
        &self.report
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Rule names, in file order.
    pub fn names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.rule.name.as_str()).collect()
    }

    /// Names of rules carrying `attribution on`, in file order.
    pub fn attribution_rules(&self) -> Vec<&str> {
        self.rules.iter().filter(|r| r.rule.attribution).map(|r| r.rule.name.as_str()).collect()
    }
}

impl DynDetector for RuleSet {
    fn name(&self) -> &str {
        "rules"
    }

    fn attribution_optins(&self) -> Vec<String> {
        self.attribution_rules().iter().map(|s| s.to_string()).collect()
    }

    fn observe(&mut self, doc: &Value, out: &mut Vec<Alert>) {
        // Sequence atoms advance once per event, shared across rules.
        let atoms =
            if self.has_stream_rules { self.stream.advance(doc) } else { EventAtoms::default() };
        for rule in &mut self.rules {
            match rule.rule.trigger {
                Trigger::Stream => rule.observe_stream(doc, &atoms, out),
                Trigger::Window { .. } => rule.observe_window(doc),
            }
        }
    }

    fn evaluate_ready(&mut self, out: &mut Vec<Alert>) {
        for rule in &mut self.rules {
            let ready = match &mut rule.windows {
                Some(w) => w.drain_ready(),
                None => continue,
            };
            for (start, keys) in ready {
                rule.seal(start, keys, out);
            }
        }
    }

    fn evaluate_all(&mut self, out: &mut Vec<Alert>) {
        for rule in &mut self.rules {
            let remaining = match &mut rule.windows {
                Some(w) => w.drain_all(),
                None => continue,
            };
            for (start, keys) in remaining {
                rule.seal(start, keys, out);
            }
        }
    }

    fn open_windows(&self) -> usize {
        self.rules.iter().filter_map(|r| r.windows.as_ref()).map(|w| w.open_count()).sum()
    }

    fn reports(&self) -> Vec<Value> {
        self.rules.iter().map(|r| r.report()).collect()
    }

    fn bind_telemetry(&mut self, registry: &MetricsRegistry) {
        for rule in &mut self.rules {
            let name = &rule.rule.name;
            rule.fired_counter = Some(registry.counter(&format!("diagnose.rule.{name}.fired")));
            rule.suppressed_counter =
                Some(registry.counter(&format!("diagnose.rule.{name}.suppressed")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(t: u64, syscall: &str, extra: Value) -> Value {
        let mut d = json!({
            "syscall": syscall,
            "class": "data",
            "pid": 10,
            "tid": 10,
            "proc_name": "app",
            "time": t,
            "ret_val": 1,
        });
        if let (Value::Object(base), Value::Object(e)) = (&mut d, extra) {
            for (k, v) in e.iter() {
                base.insert(k.clone(), v.clone());
            }
        }
        d
    }

    fn run(set: &mut RuleSet, docs: &[Value]) -> Vec<Alert> {
        let mut out = Vec::new();
        for d in docs {
            set.observe(d, &mut out);
        }
        set.evaluate_ready(&mut out);
        set.evaluate_all(&mut out);
        out
    }

    #[test]
    fn rejected_sources_never_compile() {
        let Err(err) = compile("rule r when offset > 0 and offset < 0 then record(\"x\")") else {
            panic!("statically empty rule must not compile")
        };
        assert!(matches!(err, CompileError::Verify(_)));
        assert!(compile("rule r when (((").is_err());
    }

    #[test]
    fn stream_rule_fires_and_carries_evidence() {
        let mut set = compile(
            "rule slow when latency_ns > 5ms and ret_val < 0 \
             then alert(warning, \"slow failing call\")",
        )
        .unwrap();
        let alerts = run(
            &mut set,
            &[
                doc(10, "read", json!({"latency_ns": 6_000_000, "ret_val": -5})),
                doc(20, "read", json!({"latency_ns": 1_000, "ret_val": -5})),
            ],
        );
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RuleMatch);
        assert_eq!(alerts[0].severity, Severity::Warning);
        assert_eq!(alerts[0].time_ns, 10);
        assert_eq!(alerts[0].evidence.len(), 1);
        assert_eq!(alerts[0].fields["rule"], "slow");
    }

    #[test]
    fn window_rule_counts_per_key() {
        let mut set = compile(
            "rule burst on window(1us) by pid when count >= 3 \
             then alert(info, \"bursty\")",
        )
        .unwrap();
        let mut docs: Vec<Value> = (0..5).map(|i| doc(100 + i, "read", json!({}))).collect();
        docs.push(doc(50, "read", json!({"pid": 99})));
        let alerts = run(&mut set, &docs);
        assert_eq!(alerts.len(), 1, "only pid 10 bursts");
        assert_eq!(alerts[0].subject, "10");
        assert_eq!(alerts[0].window_start_ns, Some(0));
        assert_eq!(alerts[0].window_end_ns, Some(1_000));
        assert_eq!(alerts[0].time_ns, 1_000);
    }

    #[test]
    fn baseline_needs_full_history_then_detects_spikes() {
        let mut set = compile(
            "rule spike on window(1us) when count > baseline(count, 2) * 3.0 \
             then alert(warning, syscall_rate_anomaly, \"spike\")",
        )
        .unwrap();
        // Windows: 2, 2, then 50 events.
        let mut docs = Vec::new();
        for w in 0..2u64 {
            for i in 0..2u64 {
                docs.push(doc(w * 1_000 + i, "read", json!({})));
            }
        }
        for i in 0..50u64 {
            docs.push(doc(2_000 + i, "read", json!({})));
        }
        let alerts = run(&mut set, &docs);
        assert_eq!(alerts.len(), 1, "first two windows build the baseline");
        assert_eq!(alerts[0].kind, AlertKind::SyscallRateAnomaly);
        assert_eq!(alerts[0].window_start_ns, Some(2_000));
        assert_eq!(alerts[0].fields["values"]["baseline(count, 2)"], 2.0);
    }

    #[test]
    fn mean_when_tracks_only_matching_windows() {
        // Calm mean over windows with no errors; fire when a clean window
        // dips below the calm mean.
        let mut set = compile(
            "rule dip on window(1us) when errors == 0 and count * 2 < \
             mean_when(count, errors == 0) then alert(info, \"dip\")",
        )
        .unwrap();
        let mut docs = Vec::new();
        // Window 0: 10 clean events. Window 1: 10 events with errors
        // (excluded from the mean). Window 2: 1 clean event → dip.
        for i in 0..10u64 {
            docs.push(doc(i, "read", json!({})));
        }
        for i in 0..10u64 {
            docs.push(doc(1_000 + i, "read", json!({"ret_val": -1})));
        }
        docs.push(doc(2_000, "read", json!({})));
        let alerts = run(&mut set, &docs);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window_start_ns, Some(2_000));
        assert_eq!(alerts[0].fields["values"]["mean_when(count, errors == 0)"], 10.0);
    }

    #[test]
    fn attribution_optins_name_only_opted_rules() {
        let set = compile(
            "rule opted when ret_val >= 0 then alert(info, \"hit\") attribution on\n\
             rule plain when ret_val >= 0 then alert(info, \"hit\")\n\
             rule explicit_off when ret_val >= 0 then alert(info, \"hit\") attribution off",
        )
        .unwrap();
        assert_eq!(set.attribution_rules(), vec!["opted"]);
        assert_eq!(set.attribution_optins(), vec!["opted".to_string()]);
        let report = &set.reports()[0];
        assert_eq!(report["rule"], "opted");
        assert_eq!(report["attribution"], true);
        assert_eq!(set.reports()[1]["attribution"], false);
    }

    #[test]
    fn limit_suppresses_and_counts() {
        let mut set =
            compile("rule all when ret_val >= 0 then alert(info, \"hit\") limit 2").unwrap();
        let docs: Vec<Value> = (0..5).map(|i| doc(i, "read", json!({}))).collect();
        let alerts = run(&mut set, &docs);
        assert_eq!(alerts.len(), 2);
        let report = &set.reports()[0];
        assert_eq!(report["fired"], 2);
        assert_eq!(report["suppressed"], 3);
        assert_eq!(report["evaluated"], 5);
    }

    #[test]
    fn record_rules_count_without_alerting() {
        let mut set = compile("rule seen when syscall == \"read\" then record(\"reads\")").unwrap();
        let alerts = run(&mut set, &[doc(1, "read", json!({})), doc(2, "write", json!({}))]);
        assert!(alerts.is_empty());
        assert_eq!(set.reports()[0]["records"], 1);
    }

    #[test]
    fn telemetry_counters_track_fires() {
        let registry = MetricsRegistry::new();
        let mut set = compile("rule r when ret_val >= 0 then alert(info, \"x\")").unwrap();
        set.bind_telemetry(&registry);
        run(&mut set, &[doc(1, "read", json!({}))]);
        assert_eq!(registry.snapshot().counter("diagnose.rule.r.fired"), 1);
    }

    #[test]
    fn percentile_and_error_fraction_aggregates() {
        let mut set = compile(
            "rule slow on window(1us) when p95(latency_ns) > 5ms and error_fraction >= 0.5 \
             then alert(warning, \"slow and failing\")",
        )
        .unwrap();
        let mut docs = Vec::new();
        for i in 0..10u64 {
            let ret = if i < 5 { -1 } else { 1 };
            docs.push(doc(i, "read", json!({"latency_ns": 10_000_000, "ret_val": ret})));
        }
        let alerts = run(&mut set, &docs);
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn unchecked_compilation_of_rejected_rules_never_fires() {
        let file = parse_rules(
            "rule empty when offset > 10 and offset < 5 then alert(critical, \"never\")",
        )
        .unwrap();
        let mut set = compile_unchecked(&file);
        assert!(set.verify_report().statically_empty("empty"));
        let docs: Vec<Value> = (0..20).map(|i| doc(i, "read", json!({"offset": i * 3}))).collect();
        let alerts = run(&mut set, &docs);
        assert!(alerts.is_empty(), "statically empty rule must never fire");
    }

    #[test]
    fn unchecked_ill_typed_rules_execute_without_panicking() {
        let file = parse_rules(
            "rule bad when nonsense > syscall + 3 or p95(args) > 1 then alert(info, \"x\")",
        )
        .unwrap();
        let mut set = compile_unchecked(&file);
        let alerts = run(&mut set, &[doc(1, "read", json!({}))]);
        assert!(alerts.is_empty());
    }
}
