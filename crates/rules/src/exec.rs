//! Three-valued runtime evaluation of rule predicates.
//!
//! Evaluation uses Kleene's strong three-valued logic: a missing document
//! field (or any expression the event cannot answer) evaluates to
//! *unknown*, `and` is false-dominant, `or` is true-dominant, and a rule
//! fires only when its predicate is definitely true. Kleene evaluation is
//! monotone in the unknowns, which is what makes the static pass sound:
//! a predicate proven classically unsatisfiable cannot become true under
//! any assignment, so it can never fire at runtime either.

use std::collections::{BTreeMap, BTreeSet};

use serde_json::Value;

use crate::ast::{BinOp, Expr, ExprKind};

/// A runtime value in the three-valued domain.
#[derive(Debug, Clone, PartialEq)]
pub enum V {
    /// A number (integers, floats, and nanosecond quantities unify here).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// The third truth value: the event cannot answer this expression.
    Unknown,
}

impl V {
    /// Converts a JSON document value.
    pub fn of_json(v: &Value) -> V {
        match v {
            Value::Number(n) => V::Num(n.as_f64()),
            Value::String(s) => V::Str(s.clone()),
            Value::Bool(b) => V::Bool(*b),
            _ => V::Unknown,
        }
    }

    /// Renders into JSON (unknown becomes `null`).
    pub fn to_json(&self) -> Value {
        match self {
            V::Num(n) => serde_json::Number::from_f64(*n).map(Value::Number).unwrap_or(Value::Null),
            V::Str(s) => Value::String(s.clone()),
            V::Bool(b) => Value::Bool(*b),
            V::Unknown => Value::Null,
        }
    }

    /// The definite truth value, if any.
    pub fn truth(&self) -> Option<bool> {
        match self {
            V::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is definitely true.
    pub fn is_true(&self) -> bool {
        matches!(self, V::Bool(true))
    }

    fn num(&self) -> Option<f64> {
        match self {
            V::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Evaluates `e`, resolving `Ident`/`Call` leaves through `resolve`.
///
/// The resolver returns `None` for names it cannot answer, which becomes
/// [`V::Unknown`]. Evaluation never panics, whatever the expression — the
/// escape hatch `compile_unchecked` feeds arbitrary (even ill-typed)
/// predicates through here.
pub fn eval(e: &Expr, resolve: &dyn Fn(&Expr) -> Option<V>) -> V {
    match &e.kind {
        ExprKind::Int(v) => V::Num(*v as f64),
        ExprKind::Float(v) => V::Num(*v),
        ExprKind::Dur(d) => V::Num(d.as_ns() as f64),
        ExprKind::Str(s) => V::Str(s.clone()),
        ExprKind::Ident(_) | ExprKind::Call { .. } => resolve(e).unwrap_or(V::Unknown),
        ExprKind::Neg(inner) => match eval(inner, resolve).num() {
            Some(n) => V::Num(-n),
            None => V::Unknown,
        },
        ExprKind::Not(inner) => match eval(inner, resolve).truth() {
            Some(b) => V::Bool(!b),
            None => V::Unknown,
        },
        ExprKind::Binary { op, lhs, rhs } => {
            match op {
                // Kleene: false dominates `and`, true dominates `or`.
                BinOp::And => match (eval(lhs, resolve).truth(), eval(rhs, resolve).truth()) {
                    (Some(false), _) | (_, Some(false)) => V::Bool(false),
                    (Some(true), Some(true)) => V::Bool(true),
                    _ => V::Unknown,
                },
                BinOp::Or => match (eval(lhs, resolve).truth(), eval(rhs, resolve).truth()) {
                    (Some(true), _) | (_, Some(true)) => V::Bool(true),
                    (Some(false), Some(false)) => V::Bool(false),
                    _ => V::Unknown,
                },
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    cmp(*op, eval(lhs, resolve), eval(rhs, resolve))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    match (eval(lhs, resolve).num(), eval(rhs, resolve).num()) {
                        (Some(a), Some(b)) => match op {
                            BinOp::Add => V::Num(a + b),
                            BinOp::Sub => V::Num(a - b),
                            BinOp::Mul => V::Num(a * b),
                            _ if b == 0.0 => V::Unknown,
                            _ => V::Num(a / b),
                        },
                        _ => V::Unknown,
                    }
                }
            }
        }
        ExprKind::In { lhs, items } => match eval(lhs, resolve) {
            V::Str(s) => V::Bool(items.contains(&s)),
            _ => V::Unknown,
        },
        ExprKind::StartsWith { lhs, prefix } => match eval(lhs, resolve) {
            V::Str(s) => V::Bool(s.starts_with(prefix.as_str())),
            _ => V::Unknown,
        },
    }
}

fn cmp(op: BinOp, a: V, b: V) -> V {
    let ord = match (&a, &b) {
        (V::Num(x), V::Num(y)) => x.partial_cmp(y),
        (V::Str(x), V::Str(y)) => Some(x.cmp(y)),
        (V::Bool(x), V::Bool(y)) => match op {
            BinOp::Eq | BinOp::Ne => Some(x.cmp(y)),
            _ => None,
        },
        _ => None,
    };
    match ord {
        Some(ord) => V::Bool(match op {
            BinOp::Eq => ord.is_eq(),
            BinOp::Ne => !ord.is_eq(),
            BinOp::Lt => ord.is_lt(),
            BinOp::Le => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::Ge => ord.is_ge(),
            // Non-comparison operators never reach `cmp`.
            _ => return V::Unknown,
        }),
        None => V::Unknown,
    }
}

// -------------------------------------------------------- stream atoms

/// Per-event values of the stream sequence atoms.
#[derive(Debug, Clone, Default)]
pub struct EventAtoms {
    /// 1-based reuse generation of the event's file tag, when defined.
    pub generation: Option<u64>,
    /// Whether this is the first read observed for the tag, when defined.
    pub first_read: Option<bool>,
    /// The previous syscall on this event's thread, when known.
    pub prev_syscall: Option<String>,
}

/// Shared sequence state across all stream rules of a rule set.
///
/// Mirrors the bookkeeping of the hand-coded `DataLossDetector`:
/// generations are registered per `(dev, ino)` pair for the four
/// data-path calls carrying a parseable `file_tag`, and first reads are
/// tracked per tag.
#[derive(Debug, Default)]
pub struct StreamState {
    generations: BTreeMap<(u64, u64), Vec<String>>,
    first_read_seen: BTreeSet<String>,
    last_syscall_by_tid: BTreeMap<u64, String>,
}

/// Data-path syscalls that define `generation`/`first_read`.
fn is_data_rw(syscall: &str) -> bool {
    matches!(syscall, "read" | "write" | "pread64" | "pwrite64")
}

/// Parses a `dev|ino|ts` file tag into its `(dev, ino)` identity.
fn parse_tag(tag: &str) -> Option<(u64, u64)> {
    let mut parts = tag.split('|');
    let dev = parts.next()?.parse().ok()?;
    let ino = parts.next()?.parse().ok()?;
    parts.next()?.parse::<u64>().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((dev, ino))
}

impl StreamState {
    /// Computes this event's atom values, then folds the event into the
    /// sequence state (atoms describe the stream *up to and including*
    /// this event, matching the hand-coded detector's evaluation point).
    pub fn advance(&mut self, doc: &Value) -> EventAtoms {
        let syscall = doc["syscall"].as_str().unwrap_or("");
        let mut atoms = EventAtoms::default();
        if let Some(tid) = doc["tid"].as_u64() {
            atoms.prev_syscall = self.last_syscall_by_tid.get(&tid).cloned();
            if !syscall.is_empty() {
                self.last_syscall_by_tid.insert(tid, syscall.to_string());
            }
        }
        let tag = doc["file_tag"].as_str().unwrap_or("");
        if is_data_rw(syscall) {
            if let Some(identity) = parse_tag(tag) {
                let tags = self.generations.entry(identity).or_default();
                let position = match tags.iter().position(|t| t == tag) {
                    Some(p) => p,
                    None => {
                        tags.push(tag.to_string());
                        tags.len() - 1
                    }
                };
                atoms.generation = Some(position as u64 + 1);
                if matches!(syscall, "read" | "pread64") {
                    atoms.first_read = Some(self.first_read_seen.insert(tag.to_string()));
                }
            }
        }
        atoms
    }
}

/// Resolver for per-event evaluation: document fields, plus the stream
/// atoms when `atoms` is provided (stream rules only).
pub fn event_resolver<'a>(
    doc: &'a Value,
    atoms: Option<&'a EventAtoms>,
) -> impl Fn(&Expr) -> Option<V> + 'a {
    move |e: &Expr| match &e.kind {
        ExprKind::Ident(name) => match name.as_str() {
            "generation" => atoms.and_then(|a| a.generation).map(|g| V::Num(g as f64)),
            "first_read" => atoms.and_then(|a| a.first_read).map(V::Bool),
            _ => match doc.get(name.as_str()) {
                Some(v) => Some(V::of_json(v)),
                None => Some(V::Unknown),
            },
        },
        ExprKind::Call { name, args } if name == "follows" => {
            let atoms = atoms?;
            let prev = atoms.prev_syscall.as_deref()?;
            match args.first().map(|a| &a.kind) {
                Some(ExprKind::Ident(sys)) => Some(V::Bool(prev == sys)),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use serde_json::json;

    fn eval_on(src: &str, doc: &Value, atoms: Option<&EventAtoms>) -> V {
        let expr = parse_expr(src).unwrap();
        eval(&expr, &event_resolver(doc, atoms))
    }

    #[test]
    fn field_comparisons_evaluate() {
        let doc = json!({"syscall": "read", "ret_val": -5, "latency_ns": 7_000_000});
        assert_eq!(eval_on("ret_val < 0", &doc, None), V::Bool(true));
        assert_eq!(eval_on("latency_ns > 5ms", &doc, None), V::Bool(true));
        assert_eq!(eval_on("syscall in (read, write)", &doc, None), V::Bool(true));
        assert_eq!(eval_on("syscall starts_with \"pw\"", &doc, None), V::Bool(false));
    }

    #[test]
    fn missing_fields_are_unknown_and_do_not_fire() {
        let doc = json!({"syscall": "read"});
        assert_eq!(eval_on("offset > 0", &doc, None), V::Unknown);
        // False dominates and: the rule is definitely not firing.
        assert_eq!(eval_on("offset > 0 and ret_val == 1", &doc, None), V::Unknown);
        assert_eq!(
            eval_on("offset > 0 and syscall == \"write\"", &doc, None),
            V::Bool(false),
            "a definite false short-circuits the unknown"
        );
        // True dominates or.
        assert_eq!(eval_on("offset > 0 or syscall == \"read\"", &doc, None), V::Bool(true));
        assert_eq!(eval_on("not (offset > 0)", &doc, None), V::Unknown);
    }

    #[test]
    fn arithmetic_and_division_guard() {
        let doc = json!({"ret_val": 10, "offset": 3});
        assert_eq!(eval_on("ret_val * 2 + offset == 23", &doc, None), V::Bool(true));
        assert_eq!(eval_on("ret_val / 0 > 1", &doc, None), V::Unknown);
        assert_eq!(eval_on("-ret_val < 0", &doc, None), V::Bool(true));
    }

    #[test]
    fn stream_state_tracks_generations_and_first_reads() {
        let mut state = StreamState::default();
        let write_g1 = json!({"syscall": "write", "tid": 1, "file_tag": "7|12|100", "ret_val": 4});
        let read_g2 = json!({"syscall": "read", "tid": 1, "file_tag": "7|12|900", "ret_val": 0});
        let a = state.advance(&write_g1);
        assert_eq!(a.generation, Some(1));
        assert_eq!(a.first_read, None, "writes do not define first_read");
        let a = state.advance(&read_g2);
        assert_eq!(a.generation, Some(2), "same (dev, ino), new tag");
        assert_eq!(a.first_read, Some(true));
        assert_eq!(a.prev_syscall.as_deref(), Some("write"));
        let a = state.advance(&read_g2);
        assert_eq!(a.first_read, Some(false), "second read of the tag");
    }

    #[test]
    fn atoms_undefined_off_the_data_path() {
        let mut state = StreamState::default();
        let openat = json!({"syscall": "openat", "tid": 1, "file_tag": "7|12|100"});
        let atoms = state.advance(&openat);
        assert_eq!(atoms.generation, None);
        let doc = json!({"syscall": "openat"});
        assert_eq!(eval_on("generation > 1", &doc, Some(&atoms)), V::Unknown);
        assert_eq!(eval_on("first_read", &doc, Some(&atoms)), V::Unknown);
    }

    #[test]
    fn follows_matches_the_previous_syscall_per_tid() {
        let mut state = StreamState::default();
        state.advance(&json!({"syscall": "write", "tid": 7}));
        state.advance(&json!({"syscall": "openat", "tid": 8}));
        let atoms = state.advance(&json!({"syscall": "fsync", "tid": 7}));
        let doc = json!({"syscall": "fsync"});
        assert_eq!(eval_on("follows(write)", &doc, Some(&atoms)), V::Bool(true));
        assert_eq!(eval_on("follows(read)", &doc, Some(&atoms)), V::Bool(false));
        let first = state.advance(&json!({"syscall": "read", "tid": 9}));
        assert_eq!(eval_on("follows(read)", &doc, Some(&first)), V::Unknown);
    }
}
