//! Tokenizer for the rule DSL.
//!
//! Whitespace separates tokens; `#` starts a line comment. Numbers with a
//! `ns`/`us`/`ms`/`s` suffix lex as duration literals, keeping units
//! explicit at the token level (fractional durations are rejected with a
//! pointer at the smaller unit to use instead).

use crate::ast::{DurUnit, Span};

/// One token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token variant.
    pub kind: TokenKind,
    /// Position of the token's first character.
    pub span: Span,
}

/// Token variants.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Duration literal: written value + unit.
    Dur(u64, DurUnit),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl TokenKind {
    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(v) => format!("`{v}`"),
            TokenKind::Float(v) => format!("`{v:?}`"),
            TokenKind::Dur(v, u) => format!("`{v}{}`", u.suffix()),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::EqEq => "`==`".to_string(),
            TokenKind::Ne => "`!=`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::Le => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::Ge => "`>=`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
        }
    }
}

/// A lexer or parser failure, with position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {} ({})", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

/// Tokenizes `src`, or reports the first malformed token.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        let span = Span { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, span });
                bump!();
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, span });
                bump!();
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, span });
                bump!();
            }
            b'+' => {
                tokens.push(Token { kind: TokenKind::Plus, span });
                bump!();
            }
            b'-' => {
                tokens.push(Token { kind: TokenKind::Minus, span });
                bump!();
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, span });
                bump!();
            }
            b'/' => {
                tokens.push(Token { kind: TokenKind::Slash, span });
                bump!();
            }
            b'=' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    tokens.push(Token { kind: TokenKind::EqEq, span });
                } else {
                    return Err(ParseError {
                        message: "single `=` is not an operator; use `==`".into(),
                        span,
                    });
                }
            }
            b'!' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    tokens.push(Token { kind: TokenKind::Ne, span });
                } else {
                    return Err(ParseError {
                        message: "`!` is not an operator; use `not` or `!=`".into(),
                        span,
                    });
                }
            }
            b'<' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    tokens.push(Token { kind: TokenKind::Le, span });
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, span });
                }
            }
            b'>' => {
                bump!();
                if i < bytes.len() && bytes[i] == b'=' {
                    bump!();
                    tokens.push(Token { kind: TokenKind::Ge, span });
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, span });
                }
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError { message: "unterminated string".into(), span });
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            if i >= bytes.len() {
                                return Err(ParseError {
                                    message: "unterminated string".into(),
                                    span,
                                });
                            }
                            match bytes[i] {
                                b'"' => s.push('"'),
                                b'\\' => s.push('\\'),
                                b'n' => s.push('\n'),
                                other => {
                                    return Err(ParseError {
                                        message: format!(
                                            "unknown escape `\\{}` in string",
                                            other as char
                                        ),
                                        span: Span { line, col },
                                    })
                                }
                            }
                            bump!();
                        }
                        b'\n' => {
                            return Err(ParseError {
                                message: "newline inside string literal".into(),
                                span,
                            })
                        }
                        _ => {
                            // Consume one full UTF-8 scalar.
                            let start = i;
                            let ch_len = utf8_len(bytes[i]);
                            for _ in 0..ch_len {
                                if i < bytes.len() {
                                    bump!();
                                }
                            }
                            s.push_str(std::str::from_utf8(&bytes[start..i]).map_err(|_| {
                                ParseError { message: "invalid UTF-8 in string".into(), span }
                            })?);
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), span });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                let digits = std::str::from_utf8(&bytes[start..i]).expect("ascii digits");
                // Unit suffix glued to the number → duration literal.
                let suffix_start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    bump!();
                }
                let suffix = std::str::from_utf8(&bytes[suffix_start..i]).expect("ascii alpha");
                if suffix.is_empty() {
                    let kind = if is_float {
                        TokenKind::Float(digits.parse().map_err(|_| ParseError {
                            message: format!("malformed float `{digits}`"),
                            span,
                        })?)
                    } else {
                        TokenKind::Int(digits.parse().map_err(|_| ParseError {
                            message: format!("integer `{digits}` out of range"),
                            span,
                        })?)
                    };
                    tokens.push(Token { kind, span });
                } else {
                    let unit = match suffix {
                        "ns" => DurUnit::Ns,
                        "us" => DurUnit::Us,
                        "ms" => DurUnit::Ms,
                        "s" => DurUnit::S,
                        other => {
                            return Err(ParseError {
                                message: format!(
                                    "unknown unit suffix `{other}` (expected ns, us, ms, or s)"
                                ),
                                span,
                            })
                        }
                    };
                    if is_float {
                        return Err(ParseError {
                            message: format!(
                                "fractional duration `{digits}{suffix}`; use a smaller unit"
                            ),
                            span,
                        });
                    }
                    let value: u64 = digits.parse().map_err(|_| ParseError {
                        message: format!("duration `{digits}{suffix}` out of range"),
                        span,
                    })?;
                    tokens.push(Token { kind: TokenKind::Dur(value, unit), span });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    bump!();
                }
                let ident = std::str::from_utf8(&bytes[start..i]).expect("ascii ident");
                tokens.push(Token { kind: TokenKind::Ident(ident.to_string()), span });
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{}`", other as char),
                    span,
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_and_literals() {
        assert_eq!(
            kinds("a >= 4.0 and b in (read, \"x y\") # comment\nc != 250ms"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Float(4.0),
                TokenKind::Ident("and".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("in".into()),
                TokenKind::LParen,
                TokenKind::Ident("read".into()),
                TokenKind::Comma,
                TokenKind::Str("x y".into()),
                TokenKind::RParen,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Dur(250, DurUnit::Ms),
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn rejects_bad_tokens_with_position() {
        assert!(lex("a = b").unwrap_err().message.contains("use `==`"));
        assert!(lex("1.5s").unwrap_err().message.contains("fractional duration"));
        assert!(lex("10m").unwrap_err().message.contains("unknown unit suffix"));
        assert!(lex("\"open").unwrap_err().message.contains("unterminated"));
        let err = lex("a\n  @").unwrap_err();
        assert_eq!(err.span, Span { line: 2, col: 3 });
    }

    #[test]
    fn string_escapes_unescape() {
        assert_eq!(kinds(r#""a\"b\\c\nd""#), vec![TokenKind::Str("a\"b\\c\nd".into())]);
    }
}
