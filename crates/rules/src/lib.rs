//! dio-rules: a declarative diagnosis rule DSL with a verifier-grade
//! static analysis pass.
//!
//! Rules are small text programs over the 42-syscall event-document
//! contract:
//!
//! ```text
//! rule data_loss
//!   when syscall in (read, pread64) and first_read and generation > 1
//!        and offset > 0 and ret_val == 0
//!   then alert(critical, data_loss, "stale-offset read returned 0 bytes")
//!
//! rule error_rate on window(1s) by class
//!   when count >= 20 and error_fraction >= 0.25
//!   then alert(warning, error_rate_anomaly, "class error rate over 25%")
//! ```
//!
//! Loading follows the same load-time philosophy as the eBPF verifier
//! (and `dio-verify`'s filter checking): a rule file is **statically
//! verified before it may touch the engine**. The pipeline is
//!
//! 1. [`parse_rules`] — lexer + recursive-descent parser with spanned
//!    errors; the pretty-printer ([`Rule`]'s `Display`) is canonical,
//!    `print → reparse` is a fixpoint;
//! 2. [`verify_rules`] — the typed semantic pass over the field catalog
//!    ([`catalog`]) derived from the syscall contract: unknown fields,
//!    enum-domain violations, type and unit errors, window-cost bounds,
//!    scope errors, duplicate/shadowed rules, and abstract-interpretation
//!    proofs of statically-empty and tautological predicates
//!    ([`RuleCheck`] lists all thirteen checks);
//! 3. [`compile()`] — only a file with no rejecting diagnostic becomes a
//!    [`RuleSet`], a `DynDetector` that installs into the
//!    `DiagnosisEngine` and emits the same typed `Alert` documents as the
//!    hand-coded detectors.
//!
//! At runtime predicates evaluate in Kleene's strong three-valued logic
//! (a missing field is *unknown*, and only a definitely-true predicate
//! fires), which makes the classical unsatisfiability proofs of the
//! static pass sound against the live stream: a rejected rule provably
//! never fires, so rejecting it loses nothing.

pub mod analysis;
pub mod ast;
pub mod catalog;
pub mod check;
pub mod compile;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod shipped;

pub use ast::{Action, BinOp, Expr, ExprKind, KeyDim, Rule, RuleFile, SeverityLit, Span, Trigger};
pub use check::{
    verify_rules, RuleCheck, RuleDiagnostic, RulesError, RulesReport, MAX_WINDOW_NS,
    MAX_WINDOW_OVERLAP,
};
pub use compile::{compile, compile_file, compile_unchecked, CompileError, RuleSet};
pub use lexer::ParseError;
pub use parser::{parse_expr, parse_rules};

/// Generated reference for the DSL: the field catalog and the static
/// diagnostic catalog, as markdown tables.
///
/// `dio-verify --write-docs` splices this between the
/// `dio-rules:reference` markers in the documentation, keeping the docs
/// in lock-step with the implementation.
pub fn reference_markdown() -> String {
    let mut out = String::new();
    out.push_str("**Predicate fields** (typed against the event-document contract):\n\n");
    out.push_str("| field | type | domain |\n|---|---|---|\n");
    for field in catalog::FIELDS {
        let domain = field.domain.map(|d| d.describe()).unwrap_or("—");
        out.push_str(&format!("| `{}` | {} | {} |\n", field.name, field.ty.describe(), domain));
    }
    out.push_str("\n**Stream atoms** (`on stream` rules only): ");
    let atoms: Vec<String> = catalog::STREAM_ATOMS.iter().map(|&(n, _)| format!("`{n}`")).collect();
    out.push_str(&atoms.join(", "));
    out.push_str(", `follows(<syscall>)`.\n");
    out.push_str("\n**Window aggregates** (`on window` rules only): ");
    let aggs: Vec<String> = catalog::AGGREGATES.iter().map(|&(n, _)| format!("`{n}`")).collect();
    out.push_str(&aggs.join(", "));
    out.push_str(".\n\n**Static checks** (reject = the file never reaches the engine):\n\n");
    out.push_str("| check | level | flags |\n|---|---|---|\n");
    for check in RuleCheck::ALL {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            check.name(),
            if check.rejects() { "reject" } else { "warn" },
            check.describe()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_markdown_covers_fields_and_checks() {
        let md = reference_markdown();
        assert!(md.contains("| `latency_ns` | nanoseconds |"), "{md}");
        assert!(md.contains("`unsatisfiable-predicate`"), "{md}");
        assert!(md.contains("| `unit-confusion` | warn |"), "{md}");
        assert_eq!(md.matches("| `").count(), catalog::FIELDS.len() + RuleCheck::ALL.len());
    }

    #[test]
    fn end_to_end_compile_pipeline() {
        let set = compile(shipped::FIG2_DATA_LOSS).unwrap();
        assert_eq!(set.names(), ["data_loss", "stale_offset_resume", "validated_restart"]);
    }
}
