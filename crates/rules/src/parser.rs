//! Recursive-descent parser: token stream → [`RuleFile`].
//!
//! Every error carries the span of the offending token. Comparisons are
//! non-associative (`a < b < c` is rejected with a dedicated message),
//! and `not` binds looser than comparisons, so `not a == b` reads as
//! `not (a == b)`.

use crate::ast::{
    Action, BinOp, DurLit, Expr, ExprKind, KeyDim, Rule, RuleFile, SeverityLit, Span, Trigger,
};
use crate::lexer::{lex, ParseError, Token, TokenKind};

/// Parses a rule file, or reports the first syntax error with its span.
pub fn parse_rules(src: &str) -> Result<RuleFile, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(RuleFile { rules })
}

/// Parses a single expression (used by tests and the analysis fixtures).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if !p.at_end() {
        return Err(p.error_here("trailing input after expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn span_here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .or_else(|| self.tokens.last().map(|t| t.span))
            .unwrap_or_default()
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let message = match self.peek() {
            Some(kind) => format!("{}, found {}", message.into(), kind.describe()),
            None => format!("{}, found end of input", message.into()),
        };
        ParseError { message, span: self.span_here() }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the given punctuation.
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Span, ParseError> {
        if self.peek() == Some(kind) {
            let span = self.span_here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.error_here(format!("expected {what}")))
        }
    }

    /// Consumes the next token if it is the given keyword ident.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, ParseError> {
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw) {
            let span = self.span_here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.error_here(format!("expected `{kw}`")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => {
                let span = self.span_here();
                let Some(Token { kind: TokenKind::Ident(s), .. }) = self.bump() else {
                    unreachable!("peeked an ident");
                };
                Ok((s, span))
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Str(_)) => {
                let Some(Token { kind: TokenKind::Str(s), .. }) = self.bump() else {
                    unreachable!("peeked a string");
                };
                Ok(s)
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    fn duration(&mut self, what: &str) -> Result<DurLit, ParseError> {
        match self.peek() {
            Some(TokenKind::Dur(_, _)) => {
                let span = self.span_here();
                let Some(Token { kind: TokenKind::Dur(value, unit), .. }) = self.bump() else {
                    unreachable!("peeked a duration");
                };
                Ok(DurLit { value, unit, span })
            }
            Some(TokenKind::Int(_)) => {
                Err(self.error_here(format!("expected {what} with a unit suffix (ns/us/ms/s)")))
            }
            _ => Err(self.error_here(format!("expected {what}"))),
        }
    }

    // ------------------------------------------------------------- rules

    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.expect_kw("rule")?;
        let (name, name_span) = self.ident("rule name")?;
        let trigger = if self.eat_kw("on") {
            if self.eat_kw("stream") {
                Trigger::Stream
            } else if self.eat_kw("window") {
                self.expect(&TokenKind::LParen, "`(` after `window`")?;
                let width = self.duration("window width")?;
                let slide = if self.eat(&TokenKind::Comma) {
                    Some(self.duration("window slide")?)
                } else {
                    None
                };
                self.expect(&TokenKind::RParen, "`)` after window spec")?;
                Trigger::Window { width, slide }
            } else {
                return Err(self.error_here("expected `stream` or `window` after `on`"));
            }
        } else {
            Trigger::Stream
        };
        let key = if self.eat_kw("by") {
            let (kw, span) = self.ident("key dimension after `by`")?;
            Some(match kw.as_str() {
                "pid" => KeyDim::Pid,
                "file" => KeyDim::File,
                "class" => KeyDim::Class,
                "proc" => KeyDim::Proc,
                other => {
                    return Err(ParseError {
                        message: format!(
                            "unknown key dimension `{other}` (expected pid, file, class, or proc)"
                        ),
                        span,
                    })
                }
            })
        } else {
            None
        };
        self.expect_kw("when")?;
        let when = self.expr()?;
        self.expect_kw("then")?;
        let action = self.action()?;
        let limit = if self.eat_kw("limit") {
            match self.peek() {
                Some(&TokenKind::Int(v)) if v >= 0 => {
                    self.pos += 1;
                    Some(v as u64)
                }
                _ => return Err(self.error_here("expected a non-negative integer after `limit`")),
            }
        } else {
            None
        };
        let attribution = if self.eat_kw("attribution") {
            let (mode, span) = self.ident("`on` or `off` after `attribution`")?;
            match mode.as_str() {
                "on" => true,
                "off" => false,
                other => {
                    return Err(ParseError {
                        message: format!("unknown attribution mode `{other}` (expected on or off)"),
                        span,
                    })
                }
            }
        } else {
            false
        };
        Ok(Rule { name, name_span, trigger, key, when, action, limit, attribution })
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        if self.eat_kw("alert") {
            self.expect(&TokenKind::LParen, "`(` after `alert`")?;
            let (sev, sev_span) = self.ident("severity (info/warning/critical)")?;
            let severity = match sev.as_str() {
                "info" => SeverityLit::Info,
                "warning" => SeverityLit::Warning,
                "critical" => SeverityLit::Critical,
                other => {
                    return Err(ParseError {
                        message: format!(
                            "unknown severity `{other}` (expected info, warning, or critical)"
                        ),
                        span: sev_span,
                    })
                }
            };
            self.expect(&TokenKind::Comma, "`,` after severity")?;
            let (kind, kind_span, message) = match self.peek() {
                Some(TokenKind::Ident(_)) => {
                    let (k, span) = self.ident("alert kind")?;
                    self.expect(&TokenKind::Comma, "`,` after alert kind")?;
                    (Some(k), span, self.string("alert message string")?)
                }
                _ => (None, Span::default(), self.string("alert message string")?),
            };
            self.expect(&TokenKind::RParen, "`)` after alert message")?;
            Ok(Action::Alert { severity, kind, kind_span, message })
        } else if self.eat_kw("record") {
            self.expect(&TokenKind::LParen, "`(` after `record`")?;
            let label = self.string("record label string")?;
            self.expect(&TokenKind::RParen, "`)` after record label")?;
            Ok(Action::Record { label })
        } else {
            Err(self.error_here("expected `alert` or `record` after `then`"))
        }
    }

    // ------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(TokenKind::Ident(s)) if s == "not") {
            let span = self.span_here();
            self.pos += 1;
            let inner = self.not_expr()?;
            return Ok(Expr { kind: ExprKind::Not(Box::new(inner)), span });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(TokenKind::EqEq) => Some(BinOp::Eq),
            Some(TokenKind::Ne) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            Some(TokenKind::Ident(s)) if s == "in" => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "`(` after `in`")?;
                let mut items = Vec::new();
                loop {
                    match self.bump() {
                        Some(Token { kind: TokenKind::Ident(s), .. }) => items.push(s),
                        Some(Token { kind: TokenKind::Str(s), .. }) => items.push(s),
                        Some(t) => {
                            return Err(ParseError {
                                message: format!(
                                    "expected identifier or string in `in` list, found {}",
                                    t.kind.describe()
                                ),
                                span: t.span,
                            })
                        }
                        None => return Err(self.error_here("unterminated `in` list")),
                    }
                    if self.eat(&TokenKind::Comma) {
                        continue;
                    }
                    self.expect(&TokenKind::RParen, "`)` closing the `in` list")?;
                    break;
                }
                let span = lhs.span;
                return Ok(Expr { kind: ExprKind::In { lhs: Box::new(lhs), items }, span });
            }
            Some(TokenKind::Ident(s)) if s == "starts_with" => {
                self.pos += 1;
                let prefix = self.string("prefix string after `starts_with`")?;
                let span = lhs.span;
                return Ok(Expr {
                    kind: ExprKind::StartsWith { lhs: Box::new(lhs), prefix },
                    span,
                });
            }
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.pos += 1;
        let rhs = self.add_expr()?;
        if matches!(
            self.peek(),
            Some(
                TokenKind::EqEq
                    | TokenKind::Ne
                    | TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
            )
        ) {
            return Err(
                self.error_here("comparisons do not chain; combine two comparisons with `and`")
            );
        }
        let span = lhs.span;
        Ok(Expr { kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            let span = lhs.span;
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&TokenKind::Minus) {
            let span = self.span_here();
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr { kind: ExprKind::Neg(Box::new(inner)), span });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span_here();
        match self.peek() {
            Some(TokenKind::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            Some(&TokenKind::Int(v)) => {
                self.pos += 1;
                Ok(Expr { kind: ExprKind::Int(v), span })
            }
            Some(&TokenKind::Float(v)) => {
                self.pos += 1;
                Ok(Expr { kind: ExprKind::Float(v), span })
            }
            Some(&TokenKind::Dur(value, unit)) => {
                self.pos += 1;
                Ok(Expr { kind: ExprKind::Dur(DurLit { value, unit, span }), span })
            }
            Some(TokenKind::Str(_)) => {
                let s = self.string("string")?;
                Ok(Expr { kind: ExprKind::Str(s), span })
            }
            Some(TokenKind::Ident(_)) => {
                let (name, span) = self.ident("identifier")?;
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(&TokenKind::RParen, "`)` closing the argument list")?;
                            break;
                        }
                    }
                    Ok(Expr { kind: ExprKind::Call { name, args }, span })
                } else {
                    Ok(Expr { kind: ExprKind::Ident(name), span })
                }
            }
            _ => Err(self.error_here("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse_rules(src).unwrap().to_string()
    }

    #[test]
    fn parses_a_full_rule_and_prints_canonically() {
        let src = "rule r on window(1s, 250ms) by class \
                   when count > baseline(count, 3) * 4.0 and count >= 100 \
                   then alert(warning, syscall_rate_anomaly, \"spike\") limit 5";
        let printed = roundtrip(src);
        assert_eq!(
            printed.trim(),
            "rule r on window(1s, 250ms) by class when count > baseline(count, 3) * 4.0 \
             and count >= 100 then alert(warning, syscall_rate_anomaly, \"spike\") limit 5"
        );
        // The canonical form is a parser fixpoint.
        assert_eq!(roundtrip(&printed), printed);
    }

    #[test]
    fn attribution_knob_parses_and_prints_only_when_on() {
        let on =
            parse_rules("rule r when offset > 0 then alert(info, \"x\") limit 2 attribution on")
                .unwrap();
        assert!(on.rules[0].attribution);
        assert_eq!(
            on.to_string().trim(),
            "rule r when offset > 0 then alert(info, \"x\") limit 2 attribution on"
        );
        // `attribution off` is the default, so the printer drops it.
        let off =
            parse_rules("rule r when offset > 0 then alert(info, \"x\") attribution off").unwrap();
        assert!(!off.rules[0].attribution);
        assert_eq!(off.to_string().trim(), "rule r when offset > 0 then alert(info, \"x\")");
        let bare = parse_rules("rule r when offset > 0 then alert(info, \"x\")").unwrap();
        assert_eq!(bare.to_string(), off.to_string());
        // Anything but on/off is a spanned error.
        let err = parse_rules("rule r when offset > 0 then alert(info, \"x\") attribution maybe")
            .unwrap_err();
        assert!(err.message.contains("unknown attribution mode `maybe`"), "{err}");
    }

    #[test]
    fn stream_trigger_is_the_default_and_prints_bare() {
        let a = parse_rules("rule r when first_read then record(\"x\")").unwrap();
        let b = parse_rules("rule r on stream when first_read then record(\"x\")").unwrap();
        // Same canonical form (spans differ, structure does not).
        assert_eq!(a.to_string(), b.to_string());
        assert!(matches!(b.rules[0].trigger, Trigger::Stream));
        assert_eq!(a.to_string().trim(), "rule r when first_read then record(\"x\")");
    }

    #[test]
    fn not_binds_looser_than_comparison() {
        let e = parse_expr("not offset > 0").unwrap();
        assert_eq!(e.to_string(), "not offset > 0");
        assert!(matches!(e.kind, ExprKind::Not(_)));
    }

    #[test]
    fn chained_comparison_is_rejected() {
        let err = parse_expr("1 < x < 3").unwrap_err();
        assert!(err.message.contains("do not chain"), "{err}");
    }

    #[test]
    fn window_width_requires_a_unit() {
        let err =
            parse_rules("rule r on window(1000) when count > 1 then record(\"x\")").unwrap_err();
        assert!(err.message.contains("unit suffix"), "{err}");
    }

    #[test]
    fn unknown_keywords_are_spanned_errors() {
        let err = parse_rules("rule r by tenant when a > 1 then record(\"x\")").unwrap_err();
        assert!(err.message.contains("unknown key dimension `tenant`"), "{err}");
        assert_eq!(err.span.line, 1);
        let err = parse_rules("rule r when a > 1 then alert(fatal, \"boom\")").unwrap_err();
        assert!(err.message.contains("unknown severity `fatal`"), "{err}");
    }

    #[test]
    fn parenthesized_groups_survive_the_printer() {
        let e = parse_expr("(a or b) and not (c and d)").unwrap();
        assert_eq!(e.to_string(), "(a or b) and not (c and d)");
        assert_eq!(parse_expr(&e.to_string()).unwrap().to_string(), e.to_string());
    }

    #[test]
    fn negative_literals_parse_via_unary_minus() {
        let e = parse_expr("ret_val == -2").unwrap();
        assert_eq!(e.to_string(), "ret_val == -2");
    }
}
