//! The rule files shipped with the tracer.
//!
//! These re-express the hand-coded detectors of `dio-diagnose` as DSL
//! rules (and are parity-tested against them over the Fig. 2 / Fig. 3
//! experiment streams). They are embedded from `rules/*.dio` at the
//! repository root, so the committed files and the compiled-in copies
//! cannot drift.

/// Fig. 2: inode-reuse data loss, stale-offset resume, validated restart.
pub const FIG2_DATA_LOSS: &str = include_str!("../../../rules/fig2_data_loss.dio");

/// Fig. 3: background-compaction contention skew.
pub const FIG3_CONTENTION: &str = include_str!("../../../rules/fig3_contention.dio");

/// Per-class rate spike/collapse versus a trailing baseline.
pub const RATE_ANOMALY: &str = include_str!("../../../rules/rate_anomaly.dio");

/// Per-class error-fraction threshold.
pub const ERROR_RATE: &str = include_str!("../../../rules/error_rate.dio");

/// Every shipped rule file: `(name, source)`, name matching
/// `rules/<name>.dio` in the repository.
pub const ALL: &[(&str, &str)] = &[
    ("fig2_data_loss", FIG2_DATA_LOSS),
    ("fig3_contention", FIG3_CONTENTION),
    ("rate_anomaly", RATE_ANOMALY),
    ("error_rate", ERROR_RATE),
];

/// The source of a shipped rule file, by name.
pub fn get(name: &str) -> Option<&'static str> {
    ALL.iter().find(|(n, _)| *n == name).map(|&(_, src)| src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn every_shipped_file_compiles_with_zero_diagnostics() {
        for (name, src) in ALL {
            let set = compile(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                set.verify_report().diagnostics().is_empty(),
                "{name} must be warning-free: {:?}",
                set.verify_report().diagnostics()
            );
            assert!(!set.is_empty(), "{name} defines at least one rule");
        }
    }

    #[test]
    fn shipped_names_resolve() {
        assert!(get("fig2_data_loss").is_some());
        assert!(get("nope").is_none());
    }

    #[test]
    fn shipped_rule_names_are_globally_unique() {
        let mut names = Vec::new();
        for (_, src) in ALL {
            names.extend(compile(src).unwrap().names().iter().map(|n| n.to_string()));
        }
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "rule names collide across shipped files");
    }
}
