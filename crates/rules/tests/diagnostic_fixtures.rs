//! One committed fixture per typed diagnostic.
//!
//! `tests/fixtures/rules/<check-name>.dio` at the repo root holds a
//! minimal rule file triggering exactly the check it is named after.
//! This suite walks [`RuleCheck::ALL`] so adding a fourteenth check
//! without a fixture fails loudly, and asserts each fixture's
//! accept/reject fate matches the check's level — the same files double
//! as the CI `check-rules` job's negative corpus, where exit codes are
//! pinned.

use std::path::{Path, PathBuf};

use dio_rules::{compile, parse_rules, verify_rules, CompileError, RuleCheck};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/rules")
}

fn fixture_source(check: RuleCheck) -> String {
    let path = fixture_dir().join(format!("{}.dio", check.name()));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("every check needs a fixture: {}: {e}", path.display()))
}

#[test]
fn every_check_has_a_fixture_that_triggers_it() {
    for &check in RuleCheck::ALL {
        let src = fixture_source(check);
        let file = parse_rules(&src).unwrap_or_else(|e| panic!("{} must parse: {e}", check));
        let report = verify_rules(&file);
        let fired: Vec<RuleCheck> = report.diagnostics().iter().map(|d| d.check).collect();
        assert!(
            fired.contains(&check),
            "{}.dio must trigger its namesake check, got {fired:?}",
            check.name()
        );
    }
}

#[test]
fn fixture_fate_matches_check_level() {
    for &check in RuleCheck::ALL {
        let src = fixture_source(check);
        match compile(&src) {
            Ok(_) => assert!(
                !check.rejects(),
                "{}.dio compiled but its check is reject-level",
                check.name()
            ),
            Err(CompileError::Verify(err)) => {
                assert!(
                    check.rejects(),
                    "{}.dio was rejected but its check is warn-level: {err}",
                    check.name()
                );
                assert!(
                    err.report().errors().any(|d| d.check == check),
                    "{}.dio must be rejected by its namesake check, not a bystander: {err}",
                    check.name()
                );
            }
            Err(other) => panic!("{}.dio failed before verification: {other}", check.name()),
        }
    }
}

/// Warn-level fixtures still make it to a live [`dio_rules::RuleSet`]:
/// a warning must never block a load.
#[test]
fn warn_level_fixtures_still_compile_to_rule_sets() {
    let warn_only: Vec<RuleCheck> =
        RuleCheck::ALL.iter().copied().filter(|c| !c.rejects()).collect();
    assert_eq!(
        warn_only,
        [RuleCheck::UnitConfusion, RuleCheck::ShadowedRule, RuleCheck::GappyWindow]
    );
    for check in warn_only {
        let set = compile(&fixture_source(check)).expect("warn-level fixture loads");
        assert!(!set.names().is_empty());
    }
}
