//! Property tests for the rule DSL.
//!
//! 1. The pretty-printer is canonical: printing a generated rule file
//!    and reparsing it reaches a fixpoint in one step.
//! 2. A rule the static pass proves empty never fires at runtime, for
//!    any event stream (the soundness contract that justifies rejecting
//!    it at load time).
//! 3. `compile_unchecked` + evaluation are total: arbitrary ill-typed
//!    rules over arbitrary documents never panic, and `limit` is always
//!    respected.

use dio_diagnose::DynDetector;
use dio_rules::{compile, compile_unchecked, parse_rules, verify_rules, CompileError, RuleCheck};
use proptest::prelude::*;
use serde_json::{Map, Value};

/// Splitmix64: a tiny deterministic PRNG so one `u64` seed drives the
/// whole structure of a generated case.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[self.below(items.len() as u64) as usize]
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

const IDENTS: &[&str] =
    &["offset", "ret_val", "latency_ns", "count", "syscall", "proc_name", "first_read", "zz_9"];
const STRINGS: &[&str] = &["db_bench", "rocksdb:low", "a b", "q\"x", "back\\slash", "nl\nend", ""];
const OPS: &[&str] = &["or", "and", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/"];

/// Prints a generated expression directly as source text. Generating
/// *text* from the grammar (rather than AST values) exercises the
/// parser and printer together; the fixpoint property below then pins
/// the canonical form.
fn gen_expr(g: &mut Gen, depth: u32) -> String {
    if depth == 0 || g.chance(3) {
        return match g.below(6) {
            0 => format!("{}", g.below(1_000_000)),
            1 => format!("{}.{}", g.below(1000), g.below(10)),
            2 => format!("{}{}", g.below(600), g.pick(&["ns", "us", "ms", "s"])),
            3 => quote(g.pick(STRINGS)),
            _ => g.pick(IDENTS).to_string(),
        };
    }
    match g.below(6) {
        0 => {
            let op = g.pick(OPS);
            format!("{} {} {}", gen_expr(g, depth - 1), op, gen_expr(g, depth - 1))
        }
        1 => format!("not {}", gen_expr(g, depth - 1)),
        2 => format!("-{}", gen_expr(g, depth - 1)),
        3 => {
            let n = 1 + g.below(2);
            let args: Vec<String> = (0..n).map(|_| gen_expr(g, depth - 1)).collect();
            format!("{}({})", g.pick(IDENTS), args.join(", "))
        }
        4 => {
            let n = 1 + g.below(3);
            let items: Vec<String> = (0..n)
                .map(|_| {
                    if g.chance(2) {
                        g.pick(&["read", "pread64", "write"]).to_string()
                    } else {
                        quote(g.pick(STRINGS))
                    }
                })
                .collect();
            format!("{} in ({})", gen_expr(g, depth - 1), items.join(", "))
        }
        _ => format!("{} starts_with {}", gen_expr(g, depth - 1), quote(g.pick(STRINGS))),
    }
}

fn quote(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn gen_rule(g: &mut Gen, idx: u64) -> String {
    let mut src = format!("rule r{idx}_{}", g.below(100));
    if g.chance(2) {
        src.push_str(&format!(" on window({}ms", 1 + g.below(600_000)));
        if g.chance(2) {
            src.push_str(&format!(", {}ms", 1 + g.below(600_000)));
        }
        src.push(')');
        if g.chance(2) {
            src.push_str(&format!(" by {}", g.pick(&["pid", "file", "class", "proc"])));
        }
    }
    src.push_str(&format!(" when {}", gen_expr(g, 3)));
    if g.chance(2) {
        src.push_str(&format!(
            " then alert({}, {})",
            g.pick(&["info", "warning", "critical"]),
            quote(g.pick(STRINGS))
        ));
    } else {
        src.push_str(&format!(" then record({})", quote(g.pick(STRINGS))));
    }
    if g.chance(3) {
        src.push_str(&format!(" limit {}", g.below(4)));
    }
    if g.chance(3) {
        src.push_str(&format!(" attribution {}", g.pick(&["on", "off"])));
    }
    src.push('\n');
    src
}

/// A random event document: random subset of contract fields, with
/// occasionally wrongly-typed values.
fn gen_doc(g: &mut Gen) -> Value {
    let mut map = Map::new();
    map.insert("time".to_string(), Value::from(g.below(5_000_000_000)));
    if g.chance(4) {
        // Occasionally a wrongly-typed timestamp.
        map.insert("time".to_string(), Value::String("later".to_string()));
    }
    for field in ["syscall", "class", "proc_name", "file_tag"] {
        if !g.chance(4) {
            let val = match g.below(4) {
                0 => Value::String(g.pick(&["read", "pread64", "write", "open", "nope"]).into()),
                1 => Value::String(format!("{}|{}|{}", g.below(8), g.below(4), g.below(100))),
                2 => Value::from(g.below(100)),
                _ => Value::Null,
            };
            map.insert(field.to_string(), val);
        }
    }
    for field in ["pid", "tid", "offset", "ret_val", "latency_ns", "cpu"] {
        if !g.chance(4) {
            let val = match g.below(3) {
                0 => Value::from(g.below(100_000)),
                1 => Value::String("oops".to_string()),
                _ => Value::Bool(g.chance(2)),
            };
            map.insert(field.to_string(), val);
        }
    }
    Value::Object(map)
}

/// A well-typed stream predicate (so the verifier reaches the
/// satisfiability analysis instead of bailing on type errors).
fn gen_typed_stream_pred(g: &mut Gen, depth: u32) -> String {
    if depth == 0 || g.chance(3) {
        return match g.below(5) {
            0 => format!(
                "{} {} {}",
                g.pick(&["offset", "pid", "tid", "ret_val"]),
                g.pick(&["==", "!=", "<", "<=", ">", ">="]),
                g.below(1000)
            ),
            1 => format!("syscall in ({})", g.pick(&["read", "pread64", "write, close"])),
            2 => format!("proc_name starts_with {}", quote(g.pick(&["db_bench", "rocksdb:low"]))),
            3 => "first_read".to_string(),
            _ => format!("generation > {}", g.below(5)),
        };
    }
    match g.below(3) {
        0 => format!(
            "{} and {}",
            gen_typed_stream_pred(g, depth - 1),
            gen_typed_stream_pred(g, depth - 1)
        ),
        1 => format!(
            "({} or {})",
            gen_typed_stream_pred(g, depth - 1),
            gen_typed_stream_pred(g, depth - 1)
        ),
        _ => format!("not ({})", gen_typed_stream_pred(g, depth - 1)),
    }
}

/// A well-typed windowed predicate over aggregates.
fn gen_typed_window_pred(g: &mut Gen, depth: u32) -> String {
    if depth == 0 || g.chance(2) {
        return match g.below(4) {
            0 => format!("count {} {}", g.pick(&["<", "<=", ">", ">="]), g.below(1000)),
            1 => format!("errors > {}", g.below(100)),
            2 => format!("error_fraction >= 0.{}", g.below(10)),
            _ => format!("rate > {}.0", g.below(500)),
        };
    }
    format!(
        "{} {} {}",
        gen_typed_window_pred(g, depth - 1),
        g.pick(&["and", "or"]),
        gen_typed_window_pred(g, depth - 1)
    )
}

/// Guards the fixpoint property against vacuity: the grammar-directed
/// generator must produce parseable files most of the time, or the
/// property below would quantify over (almost) nothing.
#[test]
fn generator_mostly_produces_parseable_files() {
    let accepted = (0..200u64)
        .filter(|&seed| {
            let mut g = Gen(seed);
            let n = 1 + g.below(4);
            let src: String = (0..n).map(|i| gen_rule(&mut g, i)).collect();
            parse_rules(&src).is_ok()
        })
        .count();
    assert!(accepted >= 100, "only {accepted}/200 generated files parse");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → reparse is a fixpoint: whatever the parser accepts, the
    /// canonical form reparses to the identical canonical form.
    #[test]
    fn printed_rule_files_reparse_to_the_same_text(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let n = 1 + g.below(4);
        let src: String = (0..n).map(|i| gen_rule(&mut g, i)).collect();
        let Ok(file) = parse_rules(&src) else {
            // Grammar-level rejects (e.g. `in` lhs restrictions) are fine;
            // the property quantifies over accepted inputs.
            return Ok(());
        };
        let printed = file.to_string();
        let reparsed = parse_rules(&printed).map_err(|e| {
            TestCaseError::fail(format!("canonical form must reparse: {e}\n{printed}"))
        })?;
        prop_assert_eq!(&reparsed.to_string(), &printed, "src: {}", src);
        // And a second round trip is exactly stable.
        prop_assert_eq!(&parse_rules(&reparsed.to_string()).unwrap().to_string(), &printed);
    }

    /// Soundness of the unsat proof against Kleene runtime semantics: a
    /// rule proven statically empty never fires on any event stream.
    #[test]
    fn statically_empty_rules_never_fire(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let src = format!(
            "rule dead when ({}) and offset < 0 then alert(critical, \"never\")\n\
             rule dead_w on window(1s) by class when ({}) and count < 0 \
             then alert(warning, \"never\")\n",
            gen_typed_stream_pred(&mut g, 3),
            gen_typed_window_pred(&mut g, 2),
        );
        let file = parse_rules(&src).unwrap();
        let report = verify_rules(&file);
        prop_assert!(report.statically_empty("dead"), "{src}\n{:?}", report.diagnostics());
        prop_assert!(report.statically_empty("dead_w"), "{src}\n{:?}", report.diagnostics());
        // The checked compiler refuses the file outright…
        match compile(&src) {
            Err(CompileError::Verify(err)) => {
                prop_assert!(err.violates(RuleCheck::UnsatisfiablePredicate))
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("expected verify reject, got {other}")))
            }
            Ok(_) => {
                return Err(TestCaseError::fail("expected static reject, file compiled"))
            }
        }
        // …and even bypassing the gate, the rules never fire.
        let mut set = compile_unchecked(&file);
        let mut out = Vec::new();
        for _ in 0..60 {
            let doc = gen_doc(&mut g);
            set.observe(&doc, &mut out);
            set.evaluate_ready(&mut out);
        }
        set.evaluate_all(&mut out);
        prop_assert!(out.is_empty(), "statically-empty rule fired: {:?}", out[0]);
    }

    /// Totality: arbitrary (often ill-typed) rules over arbitrary
    /// documents never panic, and `limit N` caps fired alerts per rule.
    #[test]
    fn unchecked_evaluation_is_total_and_limits_hold(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let n = 1 + g.below(3);
        let src: String = (0..n).map(|i| gen_rule(&mut g, i)).collect();
        let Ok(file) = parse_rules(&src) else { return Ok(()) };
        let mut set = compile_unchecked(&file);
        let mut out = Vec::new();
        for _ in 0..40 {
            let doc = gen_doc(&mut g);
            set.observe(&doc, &mut out);
            if g.chance(8) {
                set.evaluate_ready(&mut out);
            }
        }
        set.evaluate_all(&mut out);
        for report in set.reports() {
            let fired = report["fired"].as_u64().unwrap_or(0);
            if let Some(limit) = report["limit"].as_u64() {
                prop_assert!(
                    fired <= limit,
                    "rule {} fired {} times past limit {}",
                    report["rule"],
                    fired,
                    limit
                );
            }
        }
    }
}
