//! Hand-rolled HTTP/1.1 plumbing: request parsing and response writing
//! over std [`TcpStream`]s — no external dependencies, no async runtime.
//!
//! The surface is deliberately tiny: GET-only, `Connection: close`, a
//! bounded request head, and hard socket timeouts, because the server's
//! one job is to hand out snapshots without ever stalling the pipeline
//! it observes.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers) accepted
/// before the connection is rejected — nobody needs more to GET a
/// metrics page.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a client may take to deliver its request head.
pub const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// How long one response write may block on a slow client before the
/// connection is dropped.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request line: method, decoded path, and query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method (`GET`, `HEAD`, ...).
    pub method: String,
    /// The path component, without the query string.
    pub path: String,
    /// Query parameters in declaration order (last duplicate wins).
    pub query: BTreeMap<String, String>,
}

fn parse_query(raw: &str) -> BTreeMap<String, String> {
    let mut query = BTreeMap::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    query
}

/// Parses the request line out of `head` (everything up to the blank
/// line). Returns `None` for anything that is not a plausible HTTP/1.x
/// request.
pub fn parse_request(head: &str) -> Option<Request> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), BTreeMap::new()),
    };
    Some(Request { method, path, query })
}

/// Reads the request head (up to the `\r\n\r\n` terminator) from
/// `stream`, bounded by [`MAX_REQUEST_BYTES`] and the stream's read
/// timeout. Any body is ignored — every served endpoint is a GET.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    parse_request(&head).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP request")
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete `Connection: close` response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the response head of an unbounded stream (Server-Sent
/// Events): no `Content-Length`, the connection *is* the framing.
pub fn write_stream_head(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_and_query() {
        let r = parse_request("GET /api/top?window_ns=5000&rows=3 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/api/top");
        assert_eq!(r.query.get("window_ns").map(String::as_str), Some("5000"));
        assert_eq!(r.query.get("rows").map(String::as_str), Some("3"));
    }

    #[test]
    fn plain_path_has_empty_query() {
        let r = parse_request("GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.path, "/metrics");
        assert!(r.query.is_empty());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_request("").is_none());
        assert!(parse_request("NOT A REQUEST").is_none());
        assert!(parse_request("GET /x SPDY/3").is_none());
    }
}
