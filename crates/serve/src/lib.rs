//! `dio-serve`: an embeddable live-introspection HTTP server.
//!
//! A traced session can expose its telemetry registry, live top/health
//! views, alert stream, and flight recorder over plain HTTP — scrapeable
//! by Prometheus, `curl`, or a browser — without adding a single external
//! dependency. The server is a std [`std::net::TcpListener`] plus a small
//! fixed worker pool; every socket carries hard read/write timeouts and
//! every response is `Connection: close`, so a slow or hostile client can
//! never wedge a worker for long and the traced pipeline never blocks on
//! the server under any circumstance.
//!
//! ## Endpoints
//!
//! | path                 | payload                                            |
//! |----------------------|----------------------------------------------------|
//! | `/metrics`           | OpenMetrics text exposition (with exemplars)       |
//! | `/api/top`           | JSON `dio top` snapshot (`window_ns`, `rows` query)|
//! | `/api/health`        | JSON pipeline-health report                        |
//! | `/api/rules`         | JSON loaded-rule list with fire/suppress counters  |
//! | `/api/storage`       | JSON storage-engine report (404 when in-memory)    |
//! | `/api/dfg`           | JSON DFG snapshot; `?format=dot\|mermaid` exports  |
//! | `/dfg`               | text DFG panel (busiest directly-follows edges)    |
//! | `/top`               | ANSI `dio top` render, text/plain                  |
//! | `/dashboard`         | ANSI health dashboard, text/plain                  |
//! | `/api/alerts/stream` | Server-Sent Events: live diagnosis alerts          |
//! | `/flightrec`         | Chrome Trace Event JSON from the flight recorder   |
//! | `/healthz`           | liveness (200 once the listener thread runs)       |
//! | `/readyz`            | readiness (503 until the accept loop is up)        |

#![warn(missing_docs)]

pub mod http;
pub mod lint;

pub use lint::lint_openmetrics;

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dio_backend::DocStore;
use dio_diagnose::DiagnosisEngine;
use dio_profile::DfgMiner;
use dio_telemetry::{trace, MetricsRegistry};
use dio_viz::{
    render_health_dashboard, render_storage_panel, render_top, top_snapshot, HealthReport,
    TopOptions,
};
use serde_json::json;

/// Number of worker threads answering requests.
const WORKERS: usize = 4;
/// Pending connections held while all workers are busy; beyond this the
/// accept loop answers 503 directly instead of queueing.
const QUEUE_CAP: usize = 32;
/// Concurrent SSE clients; each holds a dedicated thread.
const MAX_SSE_CLIENTS: u64 = 8;
/// How long the SSE pump waits for a batch before emitting a heartbeat
/// comment (which doubles as a disconnect probe).
const SSE_POLL: Duration = Duration::from_millis(250);

/// Everything a request handler may read. All fields are snapshots or
/// internally synchronized handles, so handlers never take locks the
/// tracing pipeline contends on.
#[derive(Clone)]
pub struct ServeState {
    /// Session name, echoed in `/api/*` payloads.
    pub session: String,
    /// The session's metrics registry (source of `/metrics`).
    pub registry: Arc<MetricsRegistry>,
    /// Document store holding the trace and telemetry indices.
    pub backend: Arc<DocStore>,
    /// Index the session ships syscall documents into.
    pub index_name: String,
    /// Index health snapshots and alert documents land in.
    pub telemetry_index: String,
    /// Live diagnosis engine, when the session runs with diagnosis on.
    pub engine: Option<Arc<DiagnosisEngine>>,
    /// Streaming DFG miner, when the session runs with profiling on.
    pub profiler: Option<Arc<DfgMiner>>,
}

/// Server self-observation, registered into the session registry so the
/// server's own cost shows up on `/metrics`.
struct ServeTelemetry {
    requests: Arc<dio_telemetry::Counter>,
    errors: Arc<dio_telemetry::Counter>,
    busy: Arc<dio_telemetry::Counter>,
    sse_clients: Arc<dio_telemetry::Gauge>,
    sse_events: Arc<dio_telemetry::Counter>,
    sse_missed: Arc<dio_telemetry::Counter>,
}

impl ServeTelemetry {
    fn bind(registry: &MetricsRegistry) -> ServeTelemetry {
        ServeTelemetry {
            requests: registry.counter("serve.http.requests"),
            errors: registry.counter("serve.http.errors"),
            busy: registry.counter("serve.http.busy"),
            sse_clients: registry.gauge("serve.sse.clients"),
            sse_events: registry.counter("serve.sse.events"),
            sse_missed: registry.counter("serve.sse.missed_batches"),
        }
    }
}

/// Hand-rolled bounded MPMC queue of accepted connections. The crossbeam
/// shim's `send` blocks when full, which the accept loop must never do,
/// so this uses a plain `Mutex<VecDeque>` + `Condvar` with an explicit
/// non-blocking `offer`.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(VecDeque::with_capacity(QUEUE_CAP)),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Enqueues `stream` unless the queue is full; returns it back to the
    /// caller on overflow so the accept loop can answer 503 inline.
    fn offer(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() >= QUEUE_CAP {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a connection or shutdown; `None` means shut down.
    fn take(&self) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = q.pop_front() {
                return Some(stream);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) =
                self.ready.wait_timeout(q, Duration::from_millis(100)).unwrap_or_else(|e| {
                    let t = e.into_inner();
                    (t.0, t.1)
                });
            q = guard;
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// Handle to a running introspection server. Dropping it (or calling
/// [`ServeHandle::shutdown`]) stops the accept loop, drains the workers,
/// and joins every SSE pump thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    ready: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sse_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle")
            .field("addr", &self.addr)
            .field("ready", &self.ready.load(Ordering::Acquire))
            .finish()
    }
}

impl ServeHandle {
    /// The bound address — with port `0` requested, this carries the
    /// kernel-assigned port.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins all its threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.queue.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let pumps = {
            let mut guard = self.sse_threads.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for p in pumps {
            let _ = p.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the introspection server on `addr` (use port `0` for an
/// ephemeral port) serving snapshots of `state`. Returns once the
/// listener is bound and the accept loop is running.
pub fn serve(addr: impl ToSocketAddrs, state: ServeState) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new());
    let sse_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let sse_count = Arc::new(AtomicU64::new(0));
    let telemetry = Arc::new(ServeTelemetry::bind(&state.registry));
    let state = Arc::new(state);

    let mut workers = Vec::with_capacity(WORKERS);
    for i in 0..WORKERS {
        let queue = Arc::clone(&queue);
        let state = Arc::clone(&state);
        let telemetry = Arc::clone(&telemetry);
        let stop_flag = Arc::clone(&stop);
        let ready_flag = Arc::clone(&ready);
        let sse_threads = Arc::clone(&sse_threads);
        let sse_count = Arc::clone(&sse_count);
        workers.push(std::thread::Builder::new().name(format!("dio-serve-{i}")).spawn(
            move || {
                while let Some(stream) = queue.take() {
                    handle_connection(
                        stream,
                        &state,
                        &telemetry,
                        &ready_flag,
                        &stop_flag,
                        &sse_threads,
                        &sse_count,
                    );
                }
            },
        )?);
    }

    let accept_queue = Arc::clone(&queue);
    let accept_stop = Arc::clone(&stop);
    let accept_ready = Arc::clone(&ready);
    let accept_telemetry = Arc::clone(&telemetry);
    let accept_thread =
        std::thread::Builder::new().name("dio-serve-accept".to_string()).spawn(move || {
            accept_ready.store(true, Ordering::Release);
            loop {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if prepare_stream(&stream).is_err() {
                            continue;
                        }
                        if let Err(mut rejected) = accept_queue.offer(stream) {
                            accept_telemetry.busy.inc();
                            let _ = http::write_response(
                                &mut rejected,
                                503,
                                "application/json",
                                b"{\"error\":\"server busy\"}",
                            );
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            accept_queue.close();
        })?;

    Ok(ServeHandle {
        addr,
        stop,
        ready,
        queue,
        accept_thread: Some(accept_thread),
        workers,
        sse_threads,
    })
}

/// Accepted sockets inherit the listener's non-blocking flag; requests
/// are handled with plain blocking reads under hard timeouts instead.
fn prepare_stream(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(http::READ_TIMEOUT))?;
    stream.set_write_timeout(Some(http::WRITE_TIMEOUT))?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    state: &Arc<ServeState>,
    telemetry: &Arc<ServeTelemetry>,
    ready: &Arc<AtomicBool>,
    stop: &Arc<AtomicBool>,
    sse_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    sse_count: &Arc<AtomicU64>,
) {
    telemetry.requests.inc();
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => {
            telemetry.errors.inc();
            let _ = http::write_response(
                &mut stream,
                400,
                "application/json",
                b"{\"error\":\"malformed request\"}",
            );
            return;
        }
    };
    if request.method != "GET" {
        telemetry.errors.inc();
        let _ =
            http::write_response(&mut stream, 405, "application/json", b"{\"error\":\"GET only\"}");
        return;
    }

    if request.path == "/api/alerts/stream" {
        serve_sse(stream, state, telemetry, stop, sse_threads, sse_count);
        return;
    }

    let (status, content_type, body): (u16, &str, Vec<u8>) = match request.path.as_str() {
        "/metrics" => (
            200,
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            dio_telemetry::openmetrics::render(&state.registry).into_bytes(),
        ),
        "/api/top" => {
            let mut opts = TopOptions::default();
            if let Some(w) = request.query.get("window_ns").and_then(|v| v.parse().ok()) {
                opts.window_ns = w;
            }
            if let Some(r) = request.query.get("rows").and_then(|v| v.parse().ok()) {
                opts.rows = r;
            }
            let alerts = state.engine.as_ref().map(|e| e.active_alerts()).unwrap_or_default();
            let snap = top_snapshot(&state.backend.index(&state.index_name), &alerts, &opts);
            (200, "application/json", snap.to_json().to_string().into_bytes())
        }
        "/api/health" => {
            let report = HealthReport::from_index(&state.backend.index(&state.telemetry_index));
            (200, "application/json", report.to_json().to_string().into_bytes())
        }
        "/api/rules" => match &state.engine {
            Some(engine) => {
                let reports = engine.dynamic_reports();
                let body = json!({
                    "session": state.session,
                    "rules": reports,
                });
                (200, "application/json", body.to_string().into_bytes())
            }
            None => (
                404,
                "application/json",
                b"{\"error\":\"session has no diagnosis engine\"}".to_vec(),
            ),
        },
        "/api/dfg" => match &state.profiler {
            Some(miner) => {
                let snapshot = miner.snapshot();
                match request.query.get("format").map(String::as_str) {
                    Some("dot") => (
                        200,
                        "text/vnd.graphviz; charset=utf-8",
                        dio_profile::to_dot(&snapshot.global, &state.session).into_bytes(),
                    ),
                    Some("mermaid") => (
                        200,
                        "text/plain; charset=utf-8",
                        dio_profile::to_mermaid(&snapshot.global).into_bytes(),
                    ),
                    Some(other) => {
                        telemetry.errors.inc();
                        let body = json!({
                            "error": format!("unknown format `{other}`"),
                            "formats": ["dot", "mermaid"],
                        });
                        (400, "application/json", body.to_string().into_bytes())
                    }
                    None => {
                        let mut body = dio_profile::to_json(&snapshot);
                        body["session"] = json!(state.session);
                        (200, "application/json", body.to_string().into_bytes())
                    }
                }
            }
            None => (404, "application/json", b"{\"error\":\"session has no profiler\"}".to_vec()),
        },
        "/dfg" => match &state.profiler {
            Some(miner) => {
                let out = dio_viz::render_dfg_panel(&dio_profile::to_json(&miner.snapshot()));
                (200, "text/plain; charset=utf-8", out.into_bytes())
            }
            None => (404, "application/json", b"{\"error\":\"session has no profiler\"}".to_vec()),
        },
        "/api/storage" => match state.backend.storage_report() {
            Some(report) => {
                (200, "application/json", report.to_document().to_string().into_bytes())
            }
            None => (
                404,
                "application/json",
                b"{\"error\":\"session has no persistent storage\"}".to_vec(),
            ),
        },
        "/top" => {
            let alerts = state.engine.as_ref().map(|e| e.active_alerts()).unwrap_or_default();
            let mut out = render_top(
                &state.backend.index(&state.index_name),
                &alerts,
                &TopOptions::default(),
            );
            if let Some(engine) = &state.engine {
                let reports = engine.dynamic_reports();
                if !reports.is_empty() {
                    out.push('\n');
                    out.push_str(&dio_viz::render_rules_panel(&reports));
                }
            }
            if let Some(miner) = &state.profiler {
                out.push('\n');
                out.push_str(&dio_viz::render_dfg_panel(&dio_profile::to_json(&miner.snapshot())));
            }
            if let Some(report) = state.backend.storage_report() {
                out.push('\n');
                out.push_str(&render_storage_panel(&report, None));
            }
            (200, "text/plain; charset=utf-8", out.into_bytes())
        }
        "/dashboard" => {
            let out = render_health_dashboard(&state.backend.index(&state.telemetry_index));
            (200, "text/plain; charset=utf-8", out.into_bytes())
        }
        "/flightrec" => {
            (200, "application/json", trace::recorder().export_chrome_json().into_bytes())
        }
        "/healthz" => (200, "text/plain; charset=utf-8", b"ok\n".to_vec()),
        "/readyz" => {
            if ready.load(Ordering::Acquire) {
                (200, "text/plain; charset=utf-8", b"ready\n".to_vec())
            } else {
                (503, "text/plain; charset=utf-8", b"starting\n".to_vec())
            }
        }
        _ => {
            telemetry.errors.inc();
            let body = json!({
                "error": "not found",
                "endpoints": [
                    "/metrics", "/api/top", "/api/health", "/api/rules",
                    "/api/storage", "/api/dfg", "/api/alerts/stream", "/top",
                    "/dfg", "/dashboard", "/flightrec", "/healthz", "/readyz",
                ],
            });
            (404, "application/json", body.to_string().into_bytes())
        }
    };
    if http::write_response(&mut stream, status, content_type, &body).is_err() {
        telemetry.errors.inc();
    }
}

/// Upgrades the connection to a Server-Sent Events stream on a dedicated
/// thread. The pump reads from a bounded [`DocStore`] subscription: when
/// the client is slow, the *subscription* drops whole batches (counted in
/// `missed_batches`) and the shipper is never slowed down.
fn serve_sse(
    mut stream: TcpStream,
    state: &Arc<ServeState>,
    telemetry: &Arc<ServeTelemetry>,
    stop: &Arc<AtomicBool>,
    sse_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    sse_count: &Arc<AtomicU64>,
) {
    if sse_count.load(Ordering::Acquire) >= MAX_SSE_CLIENTS {
        telemetry.busy.inc();
        let _ = http::write_response(
            &mut stream,
            503,
            "application/json",
            b"{\"error\":\"too many stream clients\"}",
        );
        return;
    }
    sse_count.fetch_add(1, Ordering::AcqRel);
    telemetry.sse_clients.set(sse_count.load(Ordering::Acquire));

    let subscription = state.backend.subscribe_with_capacity(&state.telemetry_index, 64);
    let stop = Arc::clone(stop);
    let pump_telemetry = Arc::clone(telemetry);
    let sse_count_pump = Arc::clone(sse_count);
    let pump = std::thread::Builder::new().name("dio-serve-sse".to_string()).spawn(move || {
        let result = pump_sse(&mut stream, &subscription, &stop, &pump_telemetry);
        if result.is_err() {
            pump_telemetry.errors.inc();
        }
        sse_count_pump.fetch_sub(1, Ordering::AcqRel);
        pump_telemetry.sse_clients.set(sse_count_pump.load(Ordering::Acquire));
    });
    match pump {
        Ok(handle) => {
            let mut guard = sse_threads.lock().unwrap_or_else(|e| e.into_inner());
            // Opportunistically reap pumps that already exited so the
            // vector doesn't grow with every short-lived client.
            guard.retain(|h| !h.is_finished());
            guard.push(handle);
        }
        Err(_) => {
            sse_count.fetch_sub(1, Ordering::AcqRel);
            telemetry.sse_clients.set(sse_count.load(Ordering::Acquire));
        }
    }
}

fn pump_sse(
    stream: &mut TcpStream,
    subscription: &dio_backend::Subscription,
    stop: &AtomicBool,
    telemetry: &ServeTelemetry,
) -> std::io::Result<()> {
    use std::io::Write;

    http::write_stream_head(stream, "text/event-stream")?;
    stream.write_all(b": dio alert stream\n\n")?;
    stream.flush()?;
    // Batches the subscription dropped because this client was slow,
    // folded into `serve.sse.missed_batches` as deltas so the counter
    // aggregates across clients while each heartbeat reports its own.
    let mut reported_missed = 0u64;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let missed = subscription.missed_batches();
        if missed > reported_missed {
            telemetry.sse_missed.add(missed - reported_missed);
            reported_missed = missed;
        }
        match subscription.recv_timeout(SSE_POLL) {
            Some(batch) => {
                for doc in batch {
                    if doc.get("kind").and_then(|k| k.as_str()) != Some("alert") {
                        continue;
                    }
                    telemetry.sse_events.inc();
                    let frame = format!("event: alert\ndata: {doc}\n\n");
                    stream.write_all(frame.as_bytes())?;
                }
                stream.flush()?;
            }
            None => {
                if subscription.is_closed() {
                    return Ok(());
                }
                // Heartbeat comment: keeps intermediaries from timing the
                // stream out and detects dead clients; carries the drop
                // accounting so slow consumers can see what they lost.
                let beat = format!(": heartbeat missed={}\n\n", subscription.missed_batches());
                stream.write_all(beat.as_bytes())?;
                stream.flush()?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_state(session: &str) -> ServeState {
        let backend = Arc::new(DocStore::new());
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("test.requests").add(3);
        ServeState {
            session: session.to_string(),
            registry,
            backend,
            index_name: format!("dio-{session}"),
            telemetry_index: format!("dio-telemetry-{session}"),
            engine: None,
            profiler: None,
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status =
            response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let mut handle = serve("127.0.0.1:0", test_state("unit")).expect("serve");
        let addr = handle.addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("test_requests_total 3"), "{body}");
        assert!(body.ends_with("# EOF\n"), "{body}");
        assert!(lint_openmetrics(&body).is_empty(), "{:?}", lint_openmetrics(&body));

        let (status, body) = get(addr, "/api/health");
        assert_eq!(status, 200);
        assert!(body.contains("\"snapshots\""), "{body}");

        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let (status, _) = get(addr, "/readyz");
        assert_eq!(status, 200);

        let (status, body) = get(addr, "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("/metrics"), "{body}");

        let (status, _) = get(addr, "/api/storage");
        assert_eq!(status, 404, "in-memory store has no storage report");

        handle.shutdown();
    }

    #[test]
    fn api_rules_lists_loaded_rules_with_counters() {
        // Without an engine the endpoint is a clean 404.
        let mut handle = serve("127.0.0.1:0", test_state("norules")).expect("serve");
        let (status, body) = get(handle.addr(), "/api/rules");
        assert_eq!(status, 404);
        assert!(body.contains("no diagnosis engine"), "{body}");
        handle.shutdown();

        // With rules installed, the endpoint lists one report per rule.
        let engine = DiagnosisEngine::new(dio_diagnose::DiagnoseConfig::default());
        let set = dio_rules::compile(dio_rules::shipped::FIG2_DATA_LOSS).unwrap();
        engine.install_detector(Box::new(set));
        let mut state = test_state("ruled");
        state.engine = Some(engine);
        let mut handle = serve("127.0.0.1:0", state).expect("serve");
        let (status, body) = get(handle.addr(), "/api/rules");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["session"], json!("ruled"));
        let rules = doc["rules"].as_array().unwrap();
        assert_eq!(rules.len(), 3, "{body}");
        assert_eq!(rules[0]["rule"], json!("data_loss"));
        assert_eq!(rules[0]["fired"], json!(0));
        assert_eq!(rules[0]["suppressed"], json!(0));
        // The ANSI /top view carries the same panel.
        let (status, top) = get(handle.addr(), "/top");
        assert_eq!(status, 200);
        assert!(top.contains("### Rules (3 loaded)"), "{top}");
        handle.shutdown();
    }

    #[test]
    fn api_dfg_serves_snapshot_and_exports() {
        // Without a profiler the endpoints are clean 404s.
        let mut handle = serve("127.0.0.1:0", test_state("nodfg")).expect("serve");
        let (status, body) = get(handle.addr(), "/api/dfg");
        assert_eq!(status, 404);
        assert!(body.contains("no profiler"), "{body}");
        let (status, _) = get(handle.addr(), "/dfg");
        assert_eq!(status, 404);
        handle.shutdown();

        // With a miner attached, the snapshot and exports come through.
        let miner = DfgMiner::new(dio_profile::ProfileConfig::default());
        let ev = |t: u64, syscall: &str| {
            json!({
                "time": t, "syscall": syscall, "pid": 1, "tid": 1,
                "proc_name": "writer", "latency_ns": 1_000, "ret_val": 8,
                "file_path": "/data.bin",
            })
        };
        miner.observe_batch(&[ev(10, "openat"), ev(20, "write"), ev(30, "fsync")]);
        let mut state = test_state("dfg");
        state.profiler = Some(Arc::clone(&miner));
        let mut handle = serve("127.0.0.1:0", state).expect("serve");

        let (status, body) = get(handle.addr(), "/api/dfg");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc["session"], json!("dfg"));
        assert_eq!(doc["transitions"], json!(2), "{body}");

        let (status, dot) = get(handle.addr(), "/api/dfg?format=dot");
        assert_eq!(status, 200);
        assert!(dot.contains("digraph"), "{dot}");
        assert!(dot.contains("write") && dot.contains("fsync"), "{dot}");

        let (status, mmd) = get(handle.addr(), "/api/dfg?format=mermaid");
        assert_eq!(status, 200);
        assert!(mmd.contains("graph LR"), "{mmd}");

        let (status, body) = get(handle.addr(), "/api/dfg?format=svg");
        assert_eq!(status, 400);
        assert!(body.contains("unknown format"), "{body}");

        let (status, panel) = get(handle.addr(), "/dfg");
        assert_eq!(status, 200);
        assert!(panel.contains("### DFG (2 transitions"), "{panel}");

        // The ANSI /top view carries the same panel.
        let (status, top) = get(handle.addr(), "/top");
        assert_eq!(status, 200);
        assert!(top.contains("### DFG"), "{top}");
        handle.shutdown();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let mut handle = serve("127.0.0.1:0", test_state("unit2")).expect("serve");
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        handle.shutdown();
    }

    #[test]
    fn sse_stream_delivers_alert_documents() {
        let state = test_state("unit3");
        let backend = Arc::clone(&state.backend);
        let telemetry_index = state.telemetry_index.clone();
        let mut handle = serve("127.0.0.1:0", state).expect("serve");
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /api/alerts/stream HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        // Wait for the head, then publish one alert and one non-alert doc.
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf).expect("sse head");
        let head = String::from_utf8_lossy(&buf[..n]).to_string();
        assert!(head.contains("text/event-stream"), "{head}");

        backend.bulk(
            &telemetry_index,
            vec![
                json!({"kind": "health", "seq": 0}),
                json!({"kind": "alert", "detector": "unit-test", "severity": "warn"}),
            ],
        );

        let mut collected = head;
        while !collected.contains("event: alert") {
            let n = stream.read(&mut buf).expect("sse frame");
            assert!(n > 0, "stream closed before alert arrived");
            collected.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(collected.contains("\"detector\":\"unit-test\""), "{collected}");
        assert!(!collected.contains("\"kind\":\"health\""), "non-alert docs filtered");

        drop(stream);
        handle.shutdown();
    }
}
