//! A self-contained OpenMetrics lint for the `/metrics` exposition.
//!
//! CI and the server tests run this against live output, so a
//! regression in the encoder (bad name charset, non-monotone buckets,
//! `_count` drift, malformed exemplars) fails loudly instead of
//! silently corrupting scrapes. The checks cover the subset of the
//! OpenMetrics spec the encoder emits:
//!
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * only `# TYPE`/`# HELP`/`# UNIT`/`# EOF` metadata lines, one
//!   `# TYPE` per family, terminal `# EOF`;
//! * every sample belongs to a declared family, counters expose
//!   `_total`, histograms expose `_bucket`/`_sum`/`_count`;
//! * histogram `le` bounds strictly increase, cumulative counts never
//!   decrease, `le="+Inf"` is present and equals `_count`;
//! * exemplars parse as `# {label="value",...} <number>`.

use std::collections::BTreeMap;

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[derive(Default)]
struct HistogramFamily {
    buckets: Vec<(f64, u64)>,
    inf: Option<u64>,
    sum_seen: bool,
    count: Option<u64>,
}

/// One parsed sample line.
struct Sample<'a> {
    name: &'a str,
    labels: BTreeMap<&'a str, &'a str>,
    value: &'a str,
    exemplar: Option<&'a str>,
}

fn parse_labels(raw: &str) -> Option<BTreeMap<&str, &str>> {
    let mut labels = BTreeMap::new();
    let raw = raw.trim();
    if raw.is_empty() {
        return Some(labels);
    }
    for pair in raw.split(',') {
        let (k, v) = pair.split_once('=')?;
        let v = v.strip_prefix('"')?.strip_suffix('"')?;
        labels.insert(k.trim(), v);
    }
    Some(labels)
}

fn parse_sample(line: &str) -> Option<Sample<'_>> {
    let (metric, rest) = match line.find('{') {
        Some(brace) => {
            let close = line[brace..].find('}')? + brace;
            let name = &line[..brace];
            let labels = &line[brace + 1..close];
            let rest = line[close + 1..].trim_start();
            (Some((name, labels)), rest)
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next()?;
            (Some((name, "")), parts.next()?.trim_start())
        }
    };
    let (name, labels_raw) = metric?;
    let (value, exemplar) = match rest.split_once(" # ") {
        Some((v, ex)) => (v.trim(), Some(ex.trim())),
        None => (rest.trim(), None),
    };
    Some(Sample { name, labels: parse_labels(labels_raw)?, value, exemplar })
}

fn check_exemplar(raw: &str, line: &str, errors: &mut Vec<String>) {
    // Grammar: `{label="value",...} <number>`.
    let Some(rest) = raw.strip_prefix('{') else {
        errors.push(format!("exemplar must start with '{{': {line}"));
        return;
    };
    let Some((labels, value)) = rest.split_once('}') else {
        errors.push(format!("exemplar labels not closed: {line}"));
        return;
    };
    if parse_labels(labels).is_none_or(|l| l.is_empty()) {
        errors.push(format!("exemplar labels malformed: {line}"));
    }
    if value.trim().parse::<f64>().is_err() {
        errors.push(format!("exemplar value is not a number: {line}"));
    }
}

/// Lints `text` as an OpenMetrics exposition; returns every violation
/// found (empty = clean).
pub fn lint_openmetrics(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: BTreeMap<String, HistogramFamily> = BTreeMap::new();
    let mut counters_with_total: BTreeMap<String, bool> = BTreeMap::new();
    let mut saw_eof = false;

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            errors.push(format!("content after # EOF: {line}"));
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim_start();
            if meta == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = meta.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    errors.push(format!("malformed TYPE line: {line}"));
                    continue;
                };
                if !valid_name(name) {
                    errors.push(format!("invalid metric name `{name}`: {line}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "info") {
                    errors.push(format!("unknown metric type `{kind}`: {line}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    errors.push(format!("duplicate TYPE for `{name}`"));
                }
                if kind == "counter" {
                    counters_with_total.insert(name.to_string(), false);
                }
            } else if !meta.starts_with("HELP ") && !meta.starts_with("UNIT ") {
                errors.push(format!("unexpected comment line: {line}"));
            }
            continue;
        }

        let Some(sample) = parse_sample(line) else {
            errors.push(format!("unparsable sample line: {line}"));
            continue;
        };
        if !valid_name(sample.name) {
            errors.push(format!("invalid sample name `{}`: {line}", sample.name));
        }
        if sample.value.parse::<f64>().is_err() {
            errors.push(format!("sample value is not a number: {line}"));
        }
        if let Some(ex) = sample.exemplar {
            check_exemplar(ex, line, &mut errors);
        }

        // Resolve the owning family: longest declared name that is the
        // sample name itself or a `_total`/`_bucket`/`_sum`/`_count`
        // expansion of it.
        let family = types.keys().filter(|f| {
            sample.name == f.as_str()
                || ["_total", "_bucket", "_sum", "_count"]
                    .iter()
                    .any(|s| sample.name == format!("{f}{s}"))
        });
        let Some(family) = family.max_by_key(|f| f.len()).cloned() else {
            errors.push(format!("sample without a TYPE declaration: {line}"));
            continue;
        };
        let kind = types[&family].clone();
        let suffix = &sample.name[family.len()..];
        match kind.as_str() {
            "counter" => {
                if suffix == "_total" {
                    counters_with_total.insert(family.clone(), true);
                } else {
                    errors.push(format!("counter sample must be `{family}_total`: {line}"));
                }
            }
            "gauge" if !suffix.is_empty() => {
                errors.push(format!("gauge sample must be bare `{family}`: {line}"));
            }
            "histogram" => {
                let entry = histograms.entry(family.clone()).or_default();
                match suffix {
                    "_bucket" => {
                        let Some(le) = sample.labels.get("le") else {
                            errors.push(format!("bucket without `le` label: {line}"));
                            continue;
                        };
                        let count: u64 = sample.value.parse().unwrap_or(0);
                        if *le == "+Inf" {
                            entry.inf = Some(count);
                        } else {
                            match le.parse::<f64>() {
                                Ok(bound) => entry.buckets.push((bound, count)),
                                Err(_) => {
                                    errors.push(format!("unparsable le=\"{le}\": {line}"));
                                }
                            }
                        }
                    }
                    "_sum" => entry.sum_seen = true,
                    "_count" => entry.count = sample.value.parse().ok(),
                    _ => errors.push(format!(
                        "histogram sample must be `_bucket`/`_sum`/`_count`: {line}"
                    )),
                }
            }
            _ => {}
        }
    }

    if !saw_eof {
        errors.push("missing terminal # EOF".to_string());
    }
    for (name, seen) in counters_with_total {
        if !seen {
            errors.push(format!("counter `{name}` has no `_total` sample"));
        }
    }
    for (name, family) in histograms {
        for pair in family.buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!("histogram `{name}` le bounds not increasing"));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!("histogram `{name}` cumulative counts decrease"));
            }
        }
        match (family.inf, family.count) {
            (None, _) => errors.push(format!("histogram `{name}` missing le=\"+Inf\" bucket")),
            (_, None) => errors.push(format!("histogram `{name}` missing `_count`")),
            (Some(inf), Some(count)) if inf != count => {
                errors.push(format!("histogram `{name}`: +Inf bucket {inf} != _count {count}"));
            }
            _ => {}
        }
        if let (Some(&(_, last)), Some(inf)) = (family.buckets.last(), family.inf) {
            if last > inf {
                errors.push(format!("histogram `{name}`: finite bucket exceeds +Inf"));
            }
        }
        if !family.sum_seen {
            errors.push(format!("histogram `{name}` missing `_sum`"));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_exposition_passes() {
        let text = "# TYPE a counter\na_total 5\n\
                    # TYPE g gauge\ng 7\n\
                    # TYPE h histogram\n\
                    h_bucket{le=\"10\"} 2 # {trace_id=\"00ff\"} 9\n\
                    h_bucket{le=\"100\"} 3\n\
                    h_bucket{le=\"+Inf\"} 3\nh_sum 120\nh_count 3\n\
                    # EOF\n";
        assert_eq!(lint_openmetrics(text), Vec::<String>::new());
    }

    #[test]
    fn missing_eof_and_bad_names_flagged() {
        let errs = lint_openmetrics("# TYPE bad-name counter\nbad-name_total 1\n");
        assert!(errs.iter().any(|e| e.contains("invalid metric name")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("missing terminal # EOF")), "{errs:?}");
    }

    #[test]
    fn non_monotone_buckets_flagged() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\nh_bucket{le=\"100\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n# EOF\n";
        let errs = lint_openmetrics(text);
        assert!(errs.iter().any(|e| e.contains("cumulative counts decrease")), "{errs:?}");
    }

    #[test]
    fn inf_count_mismatch_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n# EOF\n";
        let errs = lint_openmetrics(text);
        assert!(errs.iter().any(|e| e.contains("+Inf bucket 4 != _count 5")), "{errs:?}");
    }

    #[test]
    fn undeclared_sample_and_bad_exemplar_flagged() {
        let text = "orphan 1\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 1 # not-braces 5\n\
                    h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n# EOF\n";
        let errs = lint_openmetrics(text);
        assert!(errs.iter().any(|e| e.contains("without a TYPE declaration")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("exemplar must start with '{'")), "{errs:?}");
    }

    #[test]
    fn counter_without_total_flagged() {
        let errs = lint_openmetrics("# TYPE c counter\nc 1\n# EOF\n");
        assert!(errs.iter().any(|e| e.contains("must be `c_total`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("no `_total` sample")), "{errs:?}");
    }
}
