//! Typed syscall argument values as observed at a tracepoint.

use serde::{Deserialize, Serialize};

use crate::SyscallKind;

/// The argument names a tracepoint records for `kind`, in signature order.
///
/// This is the decoding contract between the kernel probes (which build the
/// `Arg` vectors) and every consumer of trace documents: dashboards query
/// `args.count`, `args.offset`, etc. by these names. `dio-verify
/// --check-catalog` cross-checks this table against the probe dispatch in
/// `dio-kernel`, so drift between the two layers is a CI failure rather
/// than a silently mis-decoded trace.
///
/// # Examples
///
/// ```
/// use dio_syscall::{expected_args, SyscallKind};
/// assert_eq!(expected_args(SyscallKind::Pread64), ["fd", "count", "offset"]);
/// ```
pub fn expected_args(kind: SyscallKind) -> &'static [&'static str] {
    #[allow(unreachable_patterns)]
    // the `_` arm keeps arm removal compiling; the catalog lint catches it
    match kind {
        SyscallKind::Read => &["fd", "count"],
        SyscallKind::Pread64 => &["fd", "count", "offset"],
        SyscallKind::Readv => &["fd", "iovcnt", "count"],
        SyscallKind::Write => &["fd", "count"],
        SyscallKind::Pwrite64 => &["fd", "count", "offset"],
        SyscallKind::Writev => &["fd", "iovcnt", "count"],
        SyscallKind::Lseek => &["fd", "offset", "whence"],
        SyscallKind::Readahead => &["fd", "offset", "count"],
        SyscallKind::Creat => &["path", "mode"],
        SyscallKind::Open => &["path", "flags", "mode"],
        SyscallKind::Openat => &["dfd", "path", "flags", "mode"],
        SyscallKind::Close => &["fd"],
        SyscallKind::Truncate => &["path", "length"],
        SyscallKind::Ftruncate => &["fd", "length"],
        SyscallKind::Rename => &["oldpath", "newpath"],
        SyscallKind::Renameat => &["olddfd", "oldpath", "newdfd", "newpath"],
        SyscallKind::Renameat2 => &["olddfd", "oldpath", "newdfd", "newpath", "flags"],
        SyscallKind::Unlink => &["path"],
        SyscallKind::Unlinkat => &["dfd", "path", "flags"],
        SyscallKind::Fsync => &["fd"],
        SyscallKind::Fdatasync => &["fd"],
        SyscallKind::Stat => &["path"],
        SyscallKind::Lstat => &["path"],
        SyscallKind::Fstat => &["fd"],
        SyscallKind::Fstatfs => &["fd"],
        SyscallKind::Getxattr => &["path", "name"],
        SyscallKind::Lgetxattr => &["path", "name"],
        SyscallKind::Fgetxattr => &["fd", "name"],
        SyscallKind::Setxattr => &["path", "name", "size"],
        SyscallKind::Lsetxattr => &["path", "name", "size"],
        SyscallKind::Fsetxattr => &["fd", "name", "size"],
        SyscallKind::Listxattr => &["path"],
        SyscallKind::Llistxattr => &["path"],
        SyscallKind::Flistxattr => &["fd"],
        SyscallKind::Removexattr => &["path", "name"],
        SyscallKind::Lremovexattr => &["path", "name"],
        SyscallKind::Fremovexattr => &["fd", "name"],
        SyscallKind::Mknod => &["path", "mode"],
        SyscallKind::Mknodat => &["dfd", "path", "mode"],
        SyscallKind::Mkdir => &["path", "mode"],
        SyscallKind::Mkdirat => &["dfd", "path", "mode"],
        SyscallKind::Rmdir => &["path"],
        _ => &[],
    }
}

/// A single syscall argument value.
///
/// Mirrors what an eBPF program can read at a `sys_enter` tracepoint: raw
/// integers plus the user-space strings (paths, xattr names) the kernel
/// copies in.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ArgValue {
    /// A signed integer argument (fds, whence values, modes...).
    Int(i64),
    /// An unsigned integer argument (sizes, offsets, flags...).
    UInt(u64),
    /// A string argument (paths, xattr names...).
    Str(String),
}

impl ArgValue {
    /// Returns the value as `i64` when it is numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            ArgValue::UInt(v) => i64::try_from(*v).ok(),
            ArgValue::Str(_) => None,
        }
    }

    /// Returns the value as `u64` when it is numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::Int(v) => u64::try_from(*v).ok(),
            ArgValue::UInt(v) => Some(*v),
            ArgValue::Str(_) => None,
        }
    }

    /// Returns the value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for ArgValue {
    /// Numeric variants compare by value (`Int(26) == UInt(26)`), so that an
    /// event survives a JSON round trip unchanged even though untagged serde
    /// picks one canonical integer representation.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ArgValue::Str(a), ArgValue::Str(b)) => a == b,
            (ArgValue::Str(_), _) | (_, ArgValue::Str(_)) => false,
            (ArgValue::Int(a), ArgValue::Int(b)) => a == b,
            (ArgValue::UInt(a), ArgValue::UInt(b)) => a == b,
            (ArgValue::Int(a), ArgValue::UInt(b)) | (ArgValue::UInt(b), ArgValue::Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::UInt(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A named syscall argument, e.g. `count=4096` for `read`.
///
/// # Examples
///
/// ```
/// use dio_syscall::Arg;
///
/// let a = Arg::new("count", 4096u64);
/// assert_eq!(a.name, "count");
/// assert_eq!(a.value.as_u64(), Some(4096));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arg {
    /// Argument name as it appears in the syscall signature.
    pub name: std::borrow::Cow<'static, str>,
    /// The observed value.
    pub value: ArgValue,
}

impl Arg {
    /// Creates a named argument from any supported value type.
    pub fn new(name: &'static str, value: impl Into<ArgValue>) -> Self {
        Arg { name: std::borrow::Cow::Borrowed(name), value: value.into() }
    }
}

impl std::fmt::Display for Arg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ArgValue::from(-1i64).as_i64(), Some(-1));
        assert_eq!(ArgValue::from(7u32).as_u64(), Some(7));
        assert_eq!(ArgValue::from("x").as_str(), Some("x"));
        assert_eq!(ArgValue::from("x").as_i64(), None);
        assert_eq!(ArgValue::Int(-1).as_u64(), None);
        assert_eq!(ArgValue::UInt(u64::MAX).as_i64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Arg::new("fd", 3i64).to_string(), "fd=3");
        assert_eq!(Arg::new("path", "/tmp/a").to_string(), "path=\"/tmp/a\"");
    }

    #[test]
    fn serializes_untagged() {
        let v = serde_json::to_value(Arg::new("count", 26u64)).unwrap();
        assert_eq!(v["value"], serde_json::json!(26));
    }

    #[test]
    fn every_kind_has_expected_args() {
        for &k in SyscallKind::ALL {
            let names = expected_args(k);
            assert!(!names.is_empty(), "{k} has no expected args — decoding arm missing");
            let mut seen = std::collections::HashSet::new();
            for n in names {
                assert!(seen.insert(n), "{k} lists duplicate arg {n}");
            }
            // fd-bearing calls record `fd`; path-bearing calls record a path arg.
            if k.takes_fd() {
                assert!(names.contains(&"fd"), "{k} takes an fd but records no fd arg");
            }
            if k.takes_path() {
                assert!(
                    names.iter().any(|n| n.ends_with("path")),
                    "{k} takes a path but records no path arg"
                );
            }
        }
    }
}
