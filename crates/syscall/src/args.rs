//! Typed syscall argument values as observed at a tracepoint.

use serde::{Deserialize, Serialize};

/// A single syscall argument value.
///
/// Mirrors what an eBPF program can read at a `sys_enter` tracepoint: raw
/// integers plus the user-space strings (paths, xattr names) the kernel
/// copies in.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ArgValue {
    /// A signed integer argument (fds, whence values, modes...).
    Int(i64),
    /// An unsigned integer argument (sizes, offsets, flags...).
    UInt(u64),
    /// A string argument (paths, xattr names...).
    Str(String),
}

impl ArgValue {
    /// Returns the value as `i64` when it is numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            ArgValue::UInt(v) => i64::try_from(*v).ok(),
            ArgValue::Str(_) => None,
        }
    }

    /// Returns the value as `u64` when it is numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::Int(v) => u64::try_from(*v).ok(),
            ArgValue::UInt(v) => Some(*v),
            ArgValue::Str(_) => None,
        }
    }

    /// Returns the value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for ArgValue {
    /// Numeric variants compare by value (`Int(26) == UInt(26)`), so that an
    /// event survives a JSON round trip unchanged even though untagged serde
    /// picks one canonical integer representation.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ArgValue::Str(a), ArgValue::Str(b)) => a == b,
            (ArgValue::Str(_), _) | (_, ArgValue::Str(_)) => false,
            (ArgValue::Int(a), ArgValue::Int(b)) => a == b,
            (ArgValue::UInt(a), ArgValue::UInt(b)) => a == b,
            (ArgValue::Int(a), ArgValue::UInt(b)) | (ArgValue::UInt(b), ArgValue::Int(a)) => {
                u64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
        }
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v as i64)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v}"),
            ArgValue::UInt(v) => write!(f, "{v}"),
            ArgValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// A named syscall argument, e.g. `count=4096` for `read`.
///
/// # Examples
///
/// ```
/// use dio_syscall::Arg;
///
/// let a = Arg::new("count", 4096u64);
/// assert_eq!(a.name, "count");
/// assert_eq!(a.value.as_u64(), Some(4096));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arg {
    /// Argument name as it appears in the syscall signature.
    pub name: std::borrow::Cow<'static, str>,
    /// The observed value.
    pub value: ArgValue,
}

impl Arg {
    /// Creates a named argument from any supported value type.
    pub fn new(name: &'static str, value: impl Into<ArgValue>) -> Self {
        Arg { name: std::borrow::Cow::Borrowed(name), value: value.into() }
    }
}

impl std::fmt::Display for Arg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ArgValue::from(-1i64).as_i64(), Some(-1));
        assert_eq!(ArgValue::from(7u32).as_u64(), Some(7));
        assert_eq!(ArgValue::from("x").as_str(), Some("x"));
        assert_eq!(ArgValue::from("x").as_i64(), None);
        assert_eq!(ArgValue::Int(-1).as_u64(), None);
        assert_eq!(ArgValue::UInt(u64::MAX).as_i64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Arg::new("fd", 3i64).to_string(), "fd=3");
        assert_eq!(Arg::new("path", "/tmp/a").to_string(), "path=\"/tmp/a\"");
    }

    #[test]
    fn serializes_untagged() {
        let v = serde_json::to_value(Arg::new("count", 26u64)).unwrap();
        assert_eq!(v["value"], serde_json::json!(26));
    }
}
