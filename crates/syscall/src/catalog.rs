//! The catalog of the 42 storage-related syscalls supported by DIO (Table I).

use serde::{Deserialize, Serialize};

/// The functional class of a storage syscall, per Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SyscallClass {
    /// Data-path requests that move bytes or position a file cursor
    /// (e.g. `read`, `pwrite64`, `lseek`).
    Data,
    /// Metadata requests (e.g. `open`, `stat`, `rename`, `fsync`).
    Metadata,
    /// Extended-attribute requests (e.g. `getxattr`, `fsetxattr`).
    ExtendedAttributes,
    /// Directory-management requests (e.g. `mkdir`, `mknod`, `rmdir`).
    DirectoryManagement,
}

impl std::fmt::Display for SyscallClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SyscallClass::Data => "data",
            SyscallClass::Metadata => "metadata",
            SyscallClass::ExtendedAttributes => "extended attributes",
            SyscallClass::DirectoryManagement => "directory management",
        };
        f.write_str(s)
    }
}

macro_rules! syscall_kinds {
    ($(($variant:ident, $name:literal, $class:ident, $fd:literal, $path:literal)),+ $(,)?) => {
        /// One of the 42 storage-related syscalls DIO intercepts (Table I).
        ///
        /// # Examples
        ///
        /// ```
        /// use dio_syscall::SyscallKind;
        /// assert_eq!(SyscallKind::Openat.name(), "openat");
        /// assert_eq!("openat".parse::<SyscallKind>().unwrap(), SyscallKind::Openat);
        /// ```
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum SyscallKind {
            $(
                #[doc = concat!("The `", $name, "` system call.")]
                $variant,
            )+
        }

        impl SyscallKind {
            /// Every supported syscall, in Table I order.
            pub const ALL: &'static [SyscallKind] = &[$(SyscallKind::$variant),+];

            /// The Linux name of the syscall (e.g. `"pread64"`).
            pub fn name(self) -> &'static str {
                match self {
                    $(SyscallKind::$variant => $name,)+
                }
            }

            /// The functional class of the syscall (Table I column).
            pub fn class(self) -> SyscallClass {
                match self {
                    $(SyscallKind::$variant => SyscallClass::$class,)+
                }
            }

            /// Whether the syscall operates on an already-open file descriptor.
            pub fn takes_fd(self) -> bool {
                match self {
                    $(SyscallKind::$variant => $fd,)+
                }
            }

            /// Whether the syscall names a file-system path in its arguments.
            pub fn takes_path(self) -> bool {
                match self {
                    $(SyscallKind::$variant => $path,)+
                }
            }
        }

        impl std::str::FromStr for SyscallKind {
            type Err = UnknownSyscallError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($name => Ok(SyscallKind::$variant),)+
                    _ => Err(UnknownSyscallError(s.to_string())),
                }
            }
        }
    };
}

// (variant, linux name, class, takes_fd, takes_path)
syscall_kinds! {
    // -- data --
    (Read,          "read",          Data,                true,  false),
    (Pread64,       "pread64",       Data,                true,  false),
    (Readv,         "readv",         Data,                true,  false),
    (Write,         "write",         Data,                true,  false),
    (Pwrite64,      "pwrite64",      Data,                true,  false),
    (Writev,        "writev",        Data,                true,  false),
    (Lseek,         "lseek",         Data,                true,  false),
    (Readahead,     "readahead",     Data,                true,  false),
    // -- metadata --
    (Creat,         "creat",         Metadata,            false, true),
    (Open,          "open",          Metadata,            false, true),
    (Openat,        "openat",        Metadata,            false, true),
    (Close,         "close",         Metadata,            true,  false),
    (Truncate,      "truncate",      Metadata,            false, true),
    (Ftruncate,     "ftruncate",     Metadata,            true,  false),
    (Rename,        "rename",        Metadata,            false, true),
    (Renameat,      "renameat",      Metadata,            false, true),
    (Renameat2,     "renameat2",     Metadata,            false, true),
    (Unlink,        "unlink",        Metadata,            false, true),
    (Unlinkat,      "unlinkat",      Metadata,            false, true),
    (Fsync,         "fsync",         Metadata,            true,  false),
    (Fdatasync,     "fdatasync",     Metadata,            true,  false),
    (Stat,          "stat",          Metadata,            false, true),
    (Lstat,         "lstat",         Metadata,            false, true),
    (Fstat,         "fstat",         Metadata,            true,  false),
    (Fstatfs,       "fstatfs",       Metadata,            true,  false),
    // -- extended attributes --
    (Getxattr,      "getxattr",      ExtendedAttributes,  false, true),
    (Lgetxattr,     "lgetxattr",     ExtendedAttributes,  false, true),
    (Fgetxattr,     "fgetxattr",     ExtendedAttributes,  true,  false),
    (Setxattr,      "setxattr",      ExtendedAttributes,  false, true),
    (Lsetxattr,     "lsetxattr",     ExtendedAttributes,  false, true),
    (Fsetxattr,     "fsetxattr",     ExtendedAttributes,  true,  false),
    (Listxattr,     "listxattr",     ExtendedAttributes,  false, true),
    (Llistxattr,    "llistxattr",    ExtendedAttributes,  false, true),
    (Flistxattr,    "flistxattr",    ExtendedAttributes,  true,  false),
    (Removexattr,   "removexattr",   ExtendedAttributes,  false, true),
    (Lremovexattr,  "lremovexattr",  ExtendedAttributes,  false, true),
    (Fremovexattr,  "fremovexattr",  ExtendedAttributes,  true,  false),
    // -- directory management --
    (Mknod,         "mknod",         DirectoryManagement, false, true),
    (Mknodat,       "mknodat",       DirectoryManagement, false, true),
    (Mkdir,         "mkdir",         DirectoryManagement, false, true),
    (Mkdirat,       "mkdirat",       DirectoryManagement, false, true),
    (Rmdir,         "rmdir",         DirectoryManagement, false, true),
}

impl std::fmt::Display for SyscallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown syscall name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSyscallError(String);

impl std::fmt::Display for UnknownSyscallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown syscall name `{}`", self.0)
    }
}

impl std::error::Error for UnknownSyscallError {}

/// A compact membership set over [`SyscallKind`], used by in-kernel filters.
///
/// Backed by a single `u64` bitmap, so membership tests in the syscall hot
/// path are a mask-and-test.
///
/// # Examples
///
/// ```
/// use dio_syscall::{SyscallKind, SyscallSet};
///
/// let set: SyscallSet = [SyscallKind::Read, SyscallKind::Write].into_iter().collect();
/// assert!(set.contains(SyscallKind::Read));
/// assert!(!set.contains(SyscallKind::Close));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyscallSet(u64);

impl SyscallSet {
    /// The empty set.
    pub const EMPTY: SyscallSet = SyscallSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// The set containing all 42 supported syscalls.
    pub fn all() -> Self {
        let mut s = Self::EMPTY;
        for &k in SyscallKind::ALL {
            s.insert(k);
        }
        s
    }

    /// Inserts a syscall into the set; returns `true` if it was not present.
    pub fn insert(&mut self, kind: SyscallKind) -> bool {
        let bit = 1u64 << kind as u32;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a syscall from the set; returns `true` if it was present.
    pub fn remove(&mut self, kind: SyscallKind) -> bool {
        let bit = 1u64 << kind as u32;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the set contains `kind`.
    #[inline]
    pub fn contains(self, kind: SyscallKind) -> bool {
        self.0 & (1u64 << kind as u32) != 0
    }

    /// Number of syscalls in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in Table I order.
    pub fn iter(self) -> impl Iterator<Item = SyscallKind> {
        SyscallKind::ALL.iter().copied().filter(move |&k| self.contains(k))
    }

    /// The union of two sets.
    pub fn union(self, other: SyscallSet) -> SyscallSet {
        SyscallSet(self.0 | other.0)
    }

    /// The intersection of two sets.
    pub fn intersection(self, other: SyscallSet) -> SyscallSet {
        SyscallSet(self.0 & other.0)
    }
}

impl Default for SyscallSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<SyscallKind> for SyscallSet {
    fn from_iter<I: IntoIterator<Item = SyscallKind>>(iter: I) -> Self {
        let mut s = SyscallSet::new();
        for k in iter {
            s.insert(k);
        }
        s
    }
}

impl Extend<SyscallKind> for SyscallSet {
    fn extend<I: IntoIterator<Item = SyscallKind>>(&mut self, iter: I) {
        for k in iter {
            self.insert(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_42_syscalls() {
        assert_eq!(SyscallKind::ALL.len(), 42, "Table I lists 42 syscalls");
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for &k in SyscallKind::ALL {
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
            assert_eq!(k.name().parse::<SyscallKind>().unwrap(), k);
        }
    }

    #[test]
    fn unknown_name_fails_to_parse() {
        let err = "notasyscall".parse::<SyscallKind>().unwrap_err();
        assert!(err.to_string().contains("notasyscall"));
    }

    #[test]
    fn class_census_matches_table_one() {
        let count = |c: SyscallClass| SyscallKind::ALL.iter().filter(|k| k.class() == c).count();
        assert_eq!(count(SyscallClass::Data), 8);
        assert_eq!(count(SyscallClass::Metadata), 17);
        assert_eq!(count(SyscallClass::ExtendedAttributes), 12);
        assert_eq!(count(SyscallClass::DirectoryManagement), 5);
    }

    #[test]
    fn fd_and_path_flags_are_consistent() {
        // Every data syscall works on an fd; every *at and path syscall names a path.
        assert!(SyscallKind::Read.takes_fd());
        assert!(!SyscallKind::Read.takes_path());
        assert!(SyscallKind::Openat.takes_path());
        assert!(SyscallKind::Unlink.takes_path());
        assert!(SyscallKind::Close.takes_fd());
        assert!(SyscallKind::Fgetxattr.takes_fd());
    }

    #[test]
    fn set_all_has_42_members() {
        assert_eq!(SyscallSet::all().len(), 42);
        assert!(!SyscallSet::all().is_empty());
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = SyscallSet::new();
        assert!(s.insert(SyscallKind::Read));
        assert!(!s.insert(SyscallKind::Read));
        assert!(s.contains(SyscallKind::Read));
        assert!(s.remove(SyscallKind::Read));
        assert!(!s.remove(SyscallKind::Read));
        assert!(s.is_empty());
    }

    #[test]
    fn set_union_intersection() {
        let a: SyscallSet = [SyscallKind::Read, SyscallKind::Write].into_iter().collect();
        let b: SyscallSet = [SyscallKind::Write, SyscallKind::Close].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b).len(), 1);
        assert!(a.intersection(b).contains(SyscallKind::Write));
    }

    #[test]
    fn set_iterates_in_catalog_order() {
        let s: SyscallSet = [SyscallKind::Close, SyscallKind::Read].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![SyscallKind::Read, SyscallKind::Close]);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SyscallKind::Pwrite64.to_string(), "pwrite64");
        assert_eq!(SyscallClass::Data.to_string(), "data");
    }
}
