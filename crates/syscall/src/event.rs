//! The enriched syscall event produced by the tracer.

use serde::{Deserialize, Serialize};

use crate::{Arg, FileTag, FileType, Pid, SyscallClass, SyscallKind, Tid};

/// A fully-formed trace event: entry + exit of one syscall, enriched with
/// kernel context (§II-B "Collected information").
///
/// This is the unit DIO stores at the backend. One event aggregates the
/// `sys_enter` and `sys_exit` tracepoints of a single syscall invocation
/// (the kernel-side join the paper highlights as a DIO/CaT/Tracee-only
/// feature), carrying:
///
/// * request — [`kind`](Self::kind), [`args`](Self::args), [`ret`](Self::ret)
/// * process — [`pid`](Self::pid), [`tid`](Self::tid), [`comm`](Self::comm)
/// * time — [`time_enter_ns`](Self::time_enter_ns), [`time_exit_ns`](Self::time_exit_ns)
/// * enrichment — [`file_type`](Self::file_type), [`offset`](Self::offset),
///   [`file_tag`](Self::file_tag)
/// * correlation output — [`file_path`](Self::file_path), filled either at
///   open-time or later by the backend path-correlation algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyscallEvent {
    /// Tracing session this event belongs to.
    pub session: String,
    /// The syscall that was invoked.
    pub kind: SyscallKind,
    /// Functional class of the syscall (denormalized for querying).
    pub class: SyscallClass,
    /// Process ID of the caller.
    pub pid: Pid,
    /// Thread ID of the caller.
    pub tid: Tid,
    /// Process/thread name (`comm`) of the caller.
    pub comm: String,
    /// CPU on which the syscall entered.
    pub cpu: u32,
    /// Entry timestamp, nanoseconds.
    pub time_enter_ns: u64,
    /// Exit timestamp, nanoseconds.
    pub time_exit_ns: u64,
    /// Return value (negative values carry `-errno`, as in Linux).
    pub ret: i64,
    /// Observed arguments.
    pub args: Vec<Arg>,
    /// Type of the file the syscall targeted, when it resolved to an inode.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub file_type: Option<FileType>,
    /// File offset *before* the syscall applied, for offset-bearing calls.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub offset: Option<u64>,
    /// Unique identity of the accessed file.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub file_tag: Option<FileTag>,
    /// Resolved path; present on path-bearing syscalls and on fd-bearing
    /// events after path correlation ran.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub file_path: Option<String>,
}

impl SyscallEvent {
    /// Latency of the call in nanoseconds (`exit - enter`).
    ///
    /// # Examples
    ///
    /// ```
    /// # let mut e = dio_syscall::SyscallEvent::synthetic(dio_syscall::SyscallKind::Read);
    /// e.time_enter_ns = 100;
    /// e.time_exit_ns = 350;
    /// assert_eq!(e.latency_ns(), 250);
    /// ```
    pub fn latency_ns(&self) -> u64 {
        self.time_exit_ns.saturating_sub(self.time_enter_ns)
    }

    /// Whether the syscall failed (`ret < 0`, Linux convention).
    pub fn is_error(&self) -> bool {
        self.ret < 0
    }

    /// Looks up an argument by name.
    pub fn arg(&self, name: &str) -> Option<&crate::ArgValue> {
        self.args.iter().find(|a| a.name == name).map(|a| &a.value)
    }

    /// Serializes the event into a backend document (JSON object).
    ///
    /// The document uses flat field names matching the paper's dashboards:
    /// `syscall`, `proc_name`, `ret_val`, `file_tag`, `offset`, `file_path`, ...
    pub fn to_document(&self) -> serde_json::Value {
        let mut doc = serde_json::json!({
            "session": self.session,
            "syscall": self.kind.name(),
            "class": self.class.to_string(),
            "pid": self.pid.0,
            "tid": self.tid.0,
            "proc_name": self.comm,
            "cpu": self.cpu,
            "time": self.time_enter_ns,
            "time_exit": self.time_exit_ns,
            "latency_ns": self.latency_ns(),
            "ret_val": self.ret,
        });
        let obj = doc.as_object_mut().expect("literal object");
        let mut args = serde_json::Map::new();
        for a in &self.args {
            args.insert(a.name.to_string(), serde_json::to_value(&a.value).expect("arg value"));
        }
        obj.insert("args".into(), serde_json::Value::Object(args));
        if let Some(ft) = self.file_type {
            obj.insert("file_type".into(), serde_json::Value::String(ft.to_string()));
        }
        if let Some(off) = self.offset {
            obj.insert("offset".into(), serde_json::json!(off));
        }
        if let Some(tag) = self.file_tag {
            obj.insert("file_tag".into(), serde_json::Value::String(tag.to_string()));
        }
        if let Some(p) = &self.file_path {
            obj.insert("file_path".into(), serde_json::Value::String(p.clone()));
        }
        doc
    }

    /// Builds a minimal synthetic event for tests and examples.
    ///
    /// All identity fields are zeroed; callers overwrite what they need.
    pub fn synthetic(kind: SyscallKind) -> SyscallEvent {
        SyscallEvent {
            session: "test".to_string(),
            kind,
            class: kind.class(),
            pid: Pid(0),
            tid: Tid(0),
            comm: String::new(),
            cpu: 0,
            time_enter_ns: 0,
            time_exit_ns: 0,
            ret: 0,
            args: Vec::new(),
            file_type: None,
            offset: None,
            file_tag: None,
            file_path: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SyscallEvent {
        let mut e = SyscallEvent::synthetic(SyscallKind::Write);
        e.session = "s1".into();
        e.pid = Pid(100);
        e.tid = Tid(101);
        e.comm = "app".into();
        e.time_enter_ns = 1_000;
        e.time_exit_ns = 3_000;
        e.ret = 26;
        e.args = vec![Arg::new("fd", 3i64), Arg::new("count", 26u64)];
        e.file_type = Some(FileType::Regular);
        e.offset = Some(0);
        e.file_tag = Some(FileTag::new(7340032, 12, 42));
        e
    }

    #[test]
    fn latency_and_error() {
        let e = sample();
        assert_eq!(e.latency_ns(), 2_000);
        assert!(!e.is_error());
        let mut bad = sample();
        bad.ret = -2;
        assert!(bad.is_error());
    }

    #[test]
    fn latency_saturates() {
        let mut e = sample();
        e.time_exit_ns = 0;
        assert_eq!(e.latency_ns(), 0);
    }

    #[test]
    fn arg_lookup() {
        let e = sample();
        assert_eq!(e.arg("count").and_then(|v| v.as_u64()), Some(26));
        assert!(e.arg("missing").is_none());
    }

    #[test]
    fn document_shape_matches_dashboards() {
        let d = sample().to_document();
        assert_eq!(d["syscall"], "write");
        assert_eq!(d["proc_name"], "app");
        assert_eq!(d["ret_val"], 26);
        assert_eq!(d["offset"], 0);
        assert_eq!(d["file_tag"], "7340032|12|42");
        assert_eq!(d["args"]["count"], 26);
        assert_eq!(d["class"], "data");
        assert!(d.get("file_path").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let e = sample();
        let s = serde_json::to_string(&e).unwrap();
        let back: SyscallEvent = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }
}
