//! The kernel file types DIO's enrichment distinguishes.

use serde::{Deserialize, Serialize};

/// The type of the file targeted by a syscall, as recovered from the inode.
///
/// DIO's enrichment step attaches this to every event that resolves to an
/// inode, "enabling differentiating accesses to regular files, directories,
/// sockets, block/char devices, pipes, symbolic links, and other files" (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
    /// A socket.
    Socket,
    /// A block device.
    BlockDevice,
    /// A character device.
    CharDevice,
    /// A FIFO / pipe.
    Pipe,
    /// A symbolic link.
    Symlink,
    /// Anything the kernel could not classify.
    Unknown,
}

impl FileType {
    /// Short, `ls -l`-style single character for tabular output.
    pub fn symbol(self) -> char {
        match self {
            FileType::Regular => '-',
            FileType::Directory => 'd',
            FileType::Socket => 's',
            FileType::BlockDevice => 'b',
            FileType::CharDevice => 'c',
            FileType::Pipe => 'p',
            FileType::Symlink => 'l',
            FileType::Unknown => '?',
        }
    }
}

impl std::fmt::Display for FileType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FileType::Regular => "regular",
            FileType::Directory => "directory",
            FileType::Socket => "socket",
            FileType::BlockDevice => "block_device",
            FileType::CharDevice => "char_device",
            FileType::Pipe => "pipe",
            FileType::Symlink => "symlink",
            FileType::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_unique() {
        let all = [
            FileType::Regular,
            FileType::Directory,
            FileType::Socket,
            FileType::BlockDevice,
            FileType::CharDevice,
            FileType::Pipe,
            FileType::Symlink,
            FileType::Unknown,
        ];
        let mut seen = std::collections::HashSet::new();
        for t in all {
            assert!(seen.insert(t.symbol()));
        }
    }

    #[test]
    fn serde_snake_case() {
        assert_eq!(serde_json::to_string(&FileType::BlockDevice).unwrap(), "\"block_device\"");
    }
}
