#![warn(missing_docs)]

//! Syscall vocabulary shared by every DIO component.
//!
//! This crate models the 42 storage-related system calls supported by DIO
//! (Table I of the paper), their classification into *data*, *metadata*,
//! *extended attributes* and *directory management* classes, the value types
//! that flow through tracepoints (arguments, return values, errnos), and the
//! enriched [`SyscallEvent`] that the tracer ships to the analysis backend.
//!
//! # Examples
//!
//! ```
//! use dio_syscall::{SyscallKind, SyscallClass};
//!
//! assert_eq!(SyscallKind::Pwrite64.class(), SyscallClass::Data);
//! assert_eq!(SyscallKind::ALL.len(), 42);
//! ```

mod args;
mod catalog;
mod event;
mod file_type;
mod tag;

pub use args::{expected_args, Arg, ArgValue};
pub use catalog::{SyscallClass, SyscallKind, SyscallSet};
pub use event::SyscallEvent;
pub use file_type::FileType;
pub use tag::FileTag;

/// Process identifier inside the simulated kernel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Pid(pub u32);

/// Thread identifier inside the simulated kernel.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Tid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
