//! The file tag used to uniquely identify the file behind a descriptor.

use serde::{Deserialize, Serialize};

/// A unique identity for the file accessed by a syscall.
///
/// DIO labels syscalls that handle file descriptors with "a tag containing
/// the device number, inode number, and first file access timestamp that
/// uniquely identify the file being accessed" (§II-B). The timestamp
/// distinguishes *reuse generations* of the same inode number: in Fig. 2 the
/// two `app.log` files share `dev|ino = 7340032|12` but carry different
/// first-access timestamps.
///
/// # Examples
///
/// ```
/// use dio_syscall::FileTag;
///
/// let tag = FileTag::new(7_340_032, 12, 2_156_997_363_734_041);
/// assert_eq!(tag.to_string(), "7340032|12|2156997363734041");
/// assert_eq!("7340032|12|2156997363734041".parse::<FileTag>().unwrap(), tag);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileTag {
    /// Device number hosting the inode.
    pub dev: u64,
    /// Inode number.
    pub ino: u64,
    /// Timestamp (ns) of the first access to this inode generation.
    pub first_access_ns: u64,
}

impl FileTag {
    /// Creates a tag from its three components.
    pub fn new(dev: u64, ino: u64, first_access_ns: u64) -> Self {
        FileTag { dev, ino, first_access_ns }
    }
}

impl std::fmt::Display for FileTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}|{}|{}", self.dev, self.ino, self.first_access_ns)
    }
}

/// Error returned when parsing a malformed file tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFileTagError(String);

impl std::fmt::Display for ParseFileTagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid file tag `{}` (expected dev|ino|timestamp)", self.0)
    }
}

impl std::error::Error for ParseFileTagError {}

impl std::str::FromStr for FileTag {
    type Err = ParseFileTagError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('|');
        let err = || ParseFileTagError(s.to_string());
        let dev = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let ino = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let ts = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(FileTag { dev, ino, first_access_ns: ts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = FileTag::new(1, 2, 3);
        assert_eq!(t.to_string().parse::<FileTag>().unwrap(), t);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("1|2".parse::<FileTag>().is_err());
        assert!("1|2|3|4".parse::<FileTag>().is_err());
        assert!("a|2|3".parse::<FileTag>().is_err());
        assert!("".parse::<FileTag>().is_err());
    }

    #[test]
    fn generations_differ_by_timestamp() {
        let g1 = FileTag::new(7340032, 12, 100);
        let g2 = FileTag::new(7340032, 12, 200);
        assert_ne!(g1, g2);
        assert_eq!(g1.dev, g2.dev);
        assert_eq!(g1.ino, g2.ino);
    }
}
