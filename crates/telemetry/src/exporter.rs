//! Background exporter: periodically snapshots a registry and ships
//! health documents to a sink.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde_json::Value;

use crate::registry::{MetricsRegistry, TelemetrySnapshot};

fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A running exporter thread (see [`Exporter::spawn`]).
pub struct ExporterHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
}

impl ExporterHandle {
    /// Stops the thread after one final collect+export pass and returns
    /// the number of export rounds performed (including the final one).
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for ExporterHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Builder for the background telemetry exporter.
pub struct Exporter {
    session: String,
    interval: Duration,
}

impl Exporter {
    /// Configures an exporter for `session`, exporting every `interval`.
    pub fn new(session: impl Into<String>, interval: Duration) -> Self {
        Exporter { session: session.into(), interval }
    }

    /// Spawns the export thread.
    ///
    /// Every `interval` the thread runs `collect` (a hook for polling
    /// values that are not pushed, e.g. ring occupancy), snapshots the
    /// registry and passes the rendered health documents to `sink`. A
    /// final pass runs at [`ExporterHandle::stop`], so the last export
    /// always reflects the registry's end state.
    pub fn spawn(
        self,
        registry: Arc<MetricsRegistry>,
        collect: impl Fn(&MetricsRegistry) + Send + 'static,
        mut sink: impl FnMut(Vec<Value>) + Send + 'static,
    ) -> ExporterHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("dio-telemetry-exporter".to_string())
            .spawn(move || {
                let mut seq = 0u64;
                let mut export = |registry: &MetricsRegistry, seq: u64| {
                    collect(registry);
                    let snapshot: TelemetrySnapshot = registry.snapshot();
                    let docs = snapshot.health_documents(&self.session, seq, unix_now_ns());
                    if !docs.is_empty() {
                        sink(docs);
                    }
                };
                while !stop_flag.load(Ordering::SeqCst) {
                    // Sleep in small slices so stop() returns promptly even
                    // for long export intervals.
                    let mut remaining = self.interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::SeqCst) {
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    seq += 1;
                    export(&registry, seq);
                }
                // Final flush with the end-state of every metric.
                seq += 1;
                export(&registry, seq);
                seq
            })
            .expect("spawn telemetry exporter");
        ExporterHandle { stop, thread: Some(thread) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn exports_periodically_and_on_stop() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("c").add(5);
        let seen: Arc<Mutex<Vec<Vec<Value>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let handle = Exporter::new("s", Duration::from_millis(10)).spawn(
            registry.clone(),
            |_| {},
            move |docs| sink_seen.lock().unwrap().push(docs),
        );
        std::thread::sleep(Duration::from_millis(40));
        registry.counter("c").add(1);
        let rounds = handle.stop();
        let batches = seen.lock().unwrap();
        assert!(rounds >= 2, "at least one periodic and one final export");
        assert_eq!(batches.len() as u64, rounds);
        let last = batches.last().unwrap();
        assert_eq!(last[0]["value"], 6, "final export sees the end state");
    }

    #[test]
    fn collect_hook_runs_before_each_export() {
        let registry = Arc::new(MetricsRegistry::new());
        let handle = Exporter::new("s", Duration::from_secs(60)).spawn(
            registry.clone(),
            |r| r.gauge("polled").set(123),
            |_| {},
        );
        let rounds = handle.stop();
        assert_eq!(rounds, 1, "only the final flush ran");
        assert_eq!(registry.snapshot().gauge("polled"), 123);
    }
}
