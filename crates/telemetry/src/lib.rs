#![warn(missing_docs)]

//! Self-telemetry for the DIO pipeline (DIO observing DIO).
//!
//! The paper's argument (DSN 2023) is that you cannot diagnose what you
//! cannot observe; the same holds for the tracing pipeline itself. This
//! crate provides the substrate every stage reports into:
//!
//! * [`MetricsRegistry`] — named, lock-free [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (p50/p90/p99/p999 snapshots, same
//!   bucketing design as `dio-dbbench`'s latency histogram but with
//!   atomic buckets so producers never take a lock);
//! * [`Histogram::start_timer`] — cheap scoped stage timers;
//! * [`TelemetrySnapshot`] — a point-in-time copy of every metric, able
//!   to render itself as flat backend health documents;
//! * [`Exporter`] — a background thread that periodically snapshots the
//!   registry and hands the documents to a sink (the tracer wires the
//!   sink to `DocStore::bulk` on a `dio-telemetry-<session>` index);
//! * [`span`] — end-to-end event span tracing: per-event [`StageStamps`]
//!   stamped at every pipeline hand-off, aggregated by [`SpanCollector`]
//!   into per-stage/e2e latency histograms, a pipeline lag watermark, and
//!   drop attribution;
//! * [`trace`] — causal span tracing into the always-on, bounded
//!   [`trace::FlightRecorder`] (per-thread lock-free rings,
//!   oldest-evicted), with Chrome-trace export, a critical-path
//!   summary, and post-hoc dump triggers.
//!
//! Metric names are dotted paths (`ebpf.ring.dropped`,
//! `tracer.shipper.batch_ns`); the full catalog is documented in
//! DESIGN.md §"Self-telemetry".
//!
//! # Examples
//!
//! ```
//! use dio_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let dropped = registry.counter("ebpf.ring.dropped");
//! dropped.add(3);
//! let parse = registry.histogram("tracer.consumer.parse_ns");
//! {
//!     let _timer = parse.start_timer();
//!     // ... stage work ...
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("ebpf.ring.dropped"), 3);
//! assert_eq!(snap.histogram("tracer.consumer.parse_ns").unwrap().count, 1);
//! ```

mod exporter;
mod metrics;
pub mod openmetrics;
mod registry;
pub mod span;
pub mod trace;

pub use exporter::{Exporter, ExporterHandle};
pub use metrics::{
    quantile_sorted, Counter, Gauge, Histogram, HistogramBucket, HistogramSnapshot, StageTimer,
};
pub use registry::{MetricRef, MetricsRegistry, TelemetrySnapshot};
pub use span::{monotonic_ns, SpanCollector, SpanSummary, Stage, StageStamps, StampCarrier};
pub use trace::{FlightRecorder, SpanCtx, TraceSpan};
