//! The individual metric instruments: counters, gauges, histograms, timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sub-buckets per power of two (resolution ≈ 1/32 ≈ 3%), matching the
/// `dio-dbbench` latency histogram so percentiles are comparable.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = 64 * SUB;

fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize * SUB + sub).min(BUCKETS - 1)
}

fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    let msb = (bucket / SUB) as u32 + SUB_BITS - 1;
    let sub = (bucket % SUB) as u64;
    (1u64 << msb) | (sub << (msb - SUB_BITS))
}

/// Inclusive upper bound of `bucket`: one below the next bucket's lower
/// bound, or `u64::MAX` for buckets at or past the top of the `u64`
/// range (the lower bound of bucket `bucket + 1` would overflow 64
/// bits — those buckets absorb everything up to `u64::MAX`).
fn bucket_upper_bound(bucket: usize) -> u64 {
    let next = bucket + 1;
    if next >= BUCKETS || (next / SUB) as u32 + SUB_BITS - 1 > 63 {
        return u64::MAX;
    }
    bucket_lower_bound(next) - 1
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value instrument (queue depth, occupancy, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last traced sample to land in one bucket: `(trace_id, value)` slots
/// written racily on record and read racily by the exposition encoder —
/// exemplars are best-effort pointers, not accounting.
struct ExemplarSlot {
    trace_id: AtomicU64,
    value: AtomicU64,
}

/// One non-empty histogram bucket as seen by exposition encoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive integer upper bound of the bucket (`u64::MAX` for the
    /// final open-ended bucket). Integer samples `<= upper` land in this
    /// bucket or an earlier one, so cumulative counts rendered against
    /// these bounds are exact.
    pub upper: u64,
    /// Samples recorded into this bucket.
    pub count: u64,
    /// Last `(trace_id, value)` recorded here, when exemplar capture is
    /// enabled and a traced sample has landed in the bucket.
    pub exemplar: Option<(u64, u64)>,
}

/// A lock-free log-bucketed histogram over `u64` samples (latencies in ns,
/// batch sizes, ...). Constant memory, ~3% value resolution, O(1) record.
///
/// `Debug` prints the summary snapshot, not the raw buckets.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    exemplars: OnceLock<Box<[ExemplarSlot]>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.snapshot()).finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplars: OnceLock::new(),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Allocates per-bucket exemplar slots so subsequent
    /// [`record_with_exemplar`](Histogram::record_with_exemplar) /
    /// [`record_traced`](Histogram::record_traced) calls remember which
    /// flight-recorder trace last landed in each bucket. Idempotent;
    /// costs `BUCKETS * 16` bytes once enabled, nothing before.
    pub fn enable_exemplars(&self) {
        self.exemplars.get_or_init(|| {
            (0..BUCKETS)
                .map(|_| ExemplarSlot { trace_id: AtomicU64::new(0), value: AtomicU64::new(0) })
                .collect()
        });
    }

    /// Whether exemplar capture has been enabled.
    pub fn exemplars_enabled(&self) -> bool {
        self.exemplars.get().is_some()
    }

    /// Records one sample and, when exemplar capture is enabled and
    /// `trace_id` is non-zero, remembers `(trace_id, value)` as the
    /// bucket's exemplar (last writer wins).
    pub fn record_with_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id != 0 {
            if let Some(slots) = self.exemplars.get() {
                let slot = &slots[bucket_of(value)];
                slot.trace_id.store(trace_id, Ordering::Relaxed);
                slot.value.store(value, Ordering::Relaxed);
            }
        }
    }

    /// Records one sample, tagging the bucket exemplar with the calling
    /// thread's ambient flight-recorder trace id (the innermost open
    /// span), when there is one and exemplar capture is enabled.
    pub fn record_traced(&self, value: u64) {
        match crate::trace::current_trace_id() {
            Some(id) => self.record_with_exemplar(value, id),
            None => self.record(value),
        }
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The non-empty buckets in ascending value order, with inclusive
    /// integer upper bounds — the raw material for cumulative
    /// (`le`-style) exposition.
    pub fn nonzero_buckets(&self) -> Vec<HistogramBucket> {
        let slots = self.exemplars.get();
        let mut out = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            let count = c.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let upper = bucket_upper_bound(i);
            let exemplar = slots.and_then(|s| {
                let id = s[i].trace_id.load(Ordering::Relaxed);
                (id != 0).then(|| (id, s[i].value.load(Ordering::Relaxed)))
            });
            out.push(HistogramBucket { upper, count, exemplar });
        }
        out
    }

    /// Starts a scoped timer that records elapsed nanoseconds on drop.
    pub fn start_timer(&self) -> StageTimer<'_> {
        StageTimer { histogram: self, start: Instant::now() }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with percentiles resolved.
    ///
    /// Concurrent recording may skew a snapshot by the in-flight samples;
    /// quiescent snapshots (after threads join) are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let percentile = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_lower_bound(i).min(max).max(min.min(max));
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            min: if total == 0 { 0 } else { min },
            max,
            mean: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50: percentile(50.0),
            p90: percentile(90.0),
            p99: percentile(99.0),
            p999: percentile(99.9),
        }
    }
}

/// Resolved histogram statistics at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Estimates an arbitrary quantile (`q` in `[0, 1]`) by linear
    /// interpolation between the snapshot's known knots
    /// `(0, min) … (0.5, p50) … (0.9, p90) … (0.99, p99) …
    /// (0.999, p999) … (1, max)`. Exact at the knots, a straight-line
    /// estimate between them; 0 when the snapshot is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let knots = [
            (0.0, self.min as f64),
            (0.50, self.p50 as f64),
            (0.90, self.p90 as f64),
            (0.99, self.p99 as f64),
            (0.999, self.p999 as f64),
            (1.0, self.max as f64),
        ];
        for pair in knots.windows(2) {
            let (q0, v0) = pair[0];
            let (q1, v1) = pair[1];
            if q <= q1 {
                let frac = if q1 > q0 { (q - q0) / (q1 - q0) } else { 0.0 };
                return (v0 + (v1 - v0) * frac).round() as u64;
            }
        }
        self.max
    }
}

/// Nearest-rank quantile over an already-sorted sample slice (`q` in
/// `[0, 1]`): the sample at index `round((len - 1) * q)`. 0 when empty.
/// This is the exact-sample counterpart of
/// [`HistogramSnapshot::quantile`], shared by the viz panels that hold
/// raw latency vectors.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Scoped timer from [`Histogram::start_timer`]; records the elapsed
/// wall-clock nanoseconds into the histogram when dropped.
pub struct StageTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl StageTimer<'_> {
    /// Stops early, recording now instead of at scope end.
    pub fn observe(self) {}
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.set_max(7);
        assert_eq!(g.get(), 10, "set_max never lowers");
        g.set_max(15);
        assert_eq!(g.get(), 15);
    }

    #[test]
    fn histogram_percentiles_bound_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((450..=550).contains(&s.p50), "p50={}", s.p50);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= 1000);
        assert!((s.mean - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p999), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn concurrent_recording_counts_every_sample() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "recorded at least 1ms, got {}ns", s.max);
    }

    #[test]
    fn nonzero_buckets_are_cumulative_exact_for_integer_samples() {
        let h = Histogram::new();
        for v in [1u64, 1, 5, 100, 100_000, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 6);
        // Upper bounds ascend and every recorded value fits under the
        // bound of the bucket it was counted in.
        for pair in buckets.windows(2) {
            assert!(pair[0].upper < pair[1].upper);
        }
        assert_eq!(buckets.last().unwrap().upper, u64::MAX);
        let below = |v: u64| buckets.iter().filter(|b| b.upper >= v).map(|b| b.count).sum::<u64>();
        assert_eq!(below(0), 6, "all counts sit at or above each value's bucket");
    }

    #[test]
    fn exemplars_capture_last_trace_per_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(10, 0xaaaa); // dropped: capture not enabled yet
        h.enable_exemplars();
        assert!(h.exemplars_enabled());
        h.record_with_exemplar(10, 0xbbbb);
        h.record_with_exemplar(10, 0xcccc); // same bucket: last writer wins
        h.record_with_exemplar(1_000_000, 0); // trace id 0 = no exemplar
        let buckets = h.nonzero_buckets();
        let small = buckets.iter().find(|b| b.upper >= 10 && b.count == 3).expect("bucket of 10");
        assert_eq!(small.exemplar, Some((0xcccc, 10)));
        let big = buckets.iter().find(|b| b.upper >= 1_000_000).expect("bucket of 1e6");
        assert_eq!(big.exemplar, None);
    }

    #[test]
    fn snapshot_quantile_interpolates_between_knots() {
        let snap = HistogramSnapshot {
            count: 100,
            min: 0,
            max: 1000,
            mean: 100.0,
            p50: 100,
            p90: 500,
            p99: 900,
            p999: 990,
        };
        // Exact at the knots.
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 100);
        assert_eq!(snap.quantile(0.9), 500);
        assert_eq!(snap.quantile(0.99), 900);
        assert_eq!(snap.quantile(0.999), 990);
        assert_eq!(snap.quantile(1.0), 1000);
        // Linear between them: q=0.25 is halfway up the (0,min)-(0.5,p50)
        // segment; q=0.95 halfway up (0.9,p90)-(0.99,p99)... pinned.
        assert_eq!(snap.quantile(0.25), 50);
        assert_eq!(snap.quantile(0.95), 722);
        // Out-of-range input clamps.
        assert_eq!(snap.quantile(-1.0), 0);
        assert_eq!(snap.quantile(2.0), 1000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_quantile_edge_cases() {
        // Empty histogram: every quantile is 0, including the extremes
        // and NaN (which clamps to 0.0 before the count check matters).
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.count, 0);
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0);
        }

        // Single sample: one populated bucket, so every knot collapses
        // onto the same value and interpolation must stay flat.
        let single = {
            let h = Histogram::new();
            h.record(42);
            h.snapshot()
        };
        assert_eq!(single.count, 1);
        assert_eq!(single.quantile(0.0), single.min);
        assert_eq!(single.quantile(1.0), single.max);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(single.quantile(q), single.quantile(0.5), "flat at q={q}");
        }

        // All samples in one bucket (identical values): same flatness
        // even with a large count.
        let uniform = {
            let h = Histogram::new();
            for _ in 0..1000 {
                h.record(7_000);
            }
            h.snapshot()
        };
        assert_eq!(uniform.count, 1000);
        assert_eq!(uniform.quantile(0.0), uniform.quantile(1.0));

        // q=0.0 and q=1.0 pin exactly to min and max on a spread
        // histogram — no interpolation bleed at the boundary knots.
        let spread = {
            let h = Histogram::new();
            for v in [1u64, 10, 100, 1_000, 10_000] {
                h.record(v);
            }
            h.snapshot()
        };
        assert_eq!(spread.quantile(0.0), spread.min);
        assert_eq!(spread.quantile(1.0), spread.max);
        assert!(spread.quantile(0.5) >= spread.min && spread.quantile(0.5) <= spread.max);
    }

    #[test]
    fn quantile_sorted_is_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&v, 0.0), 1);
        assert_eq!(quantile_sorted(&v, 0.5), 51, "round((99)*0.5)=50 -> v[50]");
        assert_eq!(quantile_sorted(&v, 0.99), 99);
        assert_eq!(quantile_sorted(&v, 1.0), 100);
    }

    #[test]
    fn snapshot_serializes_with_percentile_fields() {
        let h = Histogram::new();
        h.record(100);
        let v = serde_json::to_value(h.snapshot()).unwrap();
        assert_eq!(v["count"], 1);
        assert!(v.get("p99").is_some());
    }
}
