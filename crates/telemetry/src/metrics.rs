//! The individual metric instruments: counters, gauges, histograms, timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-buckets per power of two (resolution ≈ 1/32 ≈ 3%), matching the
/// `dio-dbbench` latency histogram so percentiles are comparable.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = 64 * SUB;

fn bucket_of(value: u64) -> usize {
    let v = value.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BITS {
        return v as usize;
    }
    let sub = ((v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize * SUB + sub).min(BUCKETS - 1)
}

fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    let msb = (bucket / SUB) as u32 + SUB_BITS - 1;
    let sub = (bucket % SUB) as u64;
    (1u64 << msb) | (sub << (msb - SUB_BITS))
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value instrument (queue depth, occupancy, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log-bucketed histogram over `u64` samples (latencies in ns,
/// batch sizes, ...). Constant memory, ~3% value resolution, O(1) record.
///
/// `Debug` prints the summary snapshot, not the raw buckets.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Histogram").field(&self.snapshot()).finish()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a scoped timer that records elapsed nanoseconds on drop.
    pub fn start_timer(&self) -> StageTimer<'_> {
        StageTimer { histogram: self, start: Instant::now() }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with percentiles resolved.
    ///
    /// Concurrent recording may skew a snapshot by the in-flight samples;
    /// quiescent snapshots (after threads join) are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let percentile = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_lower_bound(i).min(max).max(min.min(max));
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            min: if total == 0 { 0 } else { min },
            max,
            mean: if total == 0 { 0.0 } else { sum as f64 / total as f64 },
            p50: percentile(50.0),
            p90: percentile(90.0),
            p99: percentile(99.0),
            p999: percentile(99.9),
        }
    }
}

/// Resolved histogram statistics at one point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// Scoped timer from [`Histogram::start_timer`]; records the elapsed
/// wall-clock nanoseconds into the histogram when dropped.
pub struct StageTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl StageTimer<'_> {
    /// Stops early, recording now instead of at scope end.
    pub fn observe(self) {}
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.set_max(7);
        assert_eq!(g.get(), 10, "set_max never lowers");
        g.set_max(15);
        assert_eq!(g.get(), 15);
    }

    #[test]
    fn histogram_percentiles_bound_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((450..=550).contains(&s.p50), "p50={}", s.p50);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= 1000);
        assert!((s.mean - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p999), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn concurrent_recording_counts_every_sample() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 80_000);
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "recorded at least 1ms, got {}ns", s.max);
    }

    #[test]
    fn snapshot_serializes_with_percentile_fields() {
        let h = Histogram::new();
        h.record(100);
        let v = serde_json::to_value(h.snapshot()).unwrap();
        assert_eq!(v["count"], 1);
        assert!(v.get("p99").is_some());
    }
}
