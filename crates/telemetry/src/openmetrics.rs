//! OpenMetrics / Prometheus text exposition of a [`MetricsRegistry`].
//!
//! Mapping rules (documented in DESIGN.md §13):
//!
//! * Dotted metric names sanitize to the exposition charset
//!   `[a-zA-Z_:][a-zA-Z0-9_:]*` — every other character becomes `_`
//!   (`ebpf.ring.dropped` → `ebpf_ring_dropped`), a leading digit gains
//!   a `_` prefix. The mapping is deterministic, so scrape series stay
//!   stable across runs.
//! * Counters render as `# TYPE x counter` with one `x_total` sample.
//! * Gauges render as `# TYPE x gauge` with one `x` sample.
//! * Histograms render as cumulative `x_bucket{le="..."}` families over
//!   the non-empty log-scale buckets, closed by `le="+Inf"`, `x_sum`
//!   and `x_count`. `le` bounds are the buckets' *inclusive integer*
//!   upper bounds ([`Histogram::nonzero_buckets`]), so cumulative
//!   counts are exact for the integer samples we record. `+Inf` and
//!   `x_count` are both computed from the same bucket reads, so they
//!   always agree even under concurrent recording.
//! * Buckets with a captured exemplar append
//!   `# {trace_id="<16-hex>"} <value>` — the last flight-recorder trace
//!   id to land in the bucket, resolvable against `/flightrec`.
//! * The body terminates with `# EOF`.

use crate::metrics::Histogram;
use crate::registry::{MetricRef, MetricsRegistry};

/// Sanitizes a dotted metric name into the exposition charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
///
/// # Examples
///
/// ```
/// use dio_telemetry::openmetrics::sanitize_metric_name;
/// assert_eq!(sanitize_metric_name("ebpf.ring.dropped"), "ebpf_ring_dropped");
/// assert_eq!(sanitize_metric_name("9lives"), "_9lives");
/// ```
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let valid = ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || ch.is_ascii_digit();
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let buckets = h.nonzero_buckets();
    let total: u64 = buckets.iter().map(|b| b.count).sum();
    let mut cumulative = 0u64;
    for b in &buckets {
        cumulative += b.count;
        out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}", b.upper));
        if let Some((trace_id, value)) = b.exemplar {
            out.push_str(&format!(" # {{trace_id=\"{trace_id:016x}\"}} {value}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {total}\n"));
}

/// Renders the whole registry as an OpenMetrics text exposition,
/// terminated by `# EOF`. Served by `dio-serve` under `/metrics`; pure
/// function of the registry, usable standalone for files or tests.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    registry.for_each(|raw_name, metric| {
        let name = sanitize_metric_name(raw_name);
        match metric {
            MetricRef::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name}_total {}\n", c.get()));
            }
            MetricRef::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
            }
            MetricRef::Histogram(h) => render_histogram(&mut out, &name, h),
        }
    });
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_metric_name("tracer.shipper.batch_ns"), "tracer_shipper_batch_ns");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
        assert_eq!(sanitize_metric_name("1.2"), "_1_2");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("héllo"), "h_llo");
    }

    #[test]
    fn render_covers_all_kinds_and_terminates() {
        let registry = MetricsRegistry::new();
        registry.counter("ebpf.ring.dropped").add(3);
        registry.gauge("tracer.channel.depth").set(7);
        let h = registry.histogram("tracer.shipper.batch_ns");
        h.record(10);
        h.record(10);
        h.record(5_000);
        let text = render(&registry);
        assert!(text.contains("# TYPE ebpf_ring_dropped counter\nebpf_ring_dropped_total 3\n"));
        assert!(text.contains("# TYPE tracer_channel_depth gauge\ntracer_channel_depth 7\n"));
        assert!(text.contains("# TYPE tracer_shipper_batch_ns histogram\n"));
        assert!(text.contains("tracer_shipper_batch_ns_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("tracer_shipper_batch_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("tracer_shipper_batch_ns_sum 5020\n"));
        assert!(text.contains("tracer_shipper_batch_ns_count 3\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat");
        for v in [1u64, 2, 4, 8, 16, 1 << 20, 1 << 30] {
            h.record(v);
        }
        let text = render(&registry);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "cumulative counts never decrease: {line}");
            last = count;
            bucket_lines += 1;
        }
        assert!(bucket_lines >= 8, "7 value buckets plus +Inf");
        assert_eq!(last, 7, "+Inf bucket equals total count");
    }

    #[test]
    fn exemplars_render_inline_on_bucket_lines() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("io.fsync_ns");
        h.enable_exemplars();
        h.record_with_exemplar(4096, 0xdead_beef);
        let text = render(&registry);
        let line = text
            .lines()
            .find(|l| l.starts_with("io_fsync_ns_bucket") && l.contains("trace_id"))
            .expect("exemplar bucket line");
        assert!(line.contains("# {trace_id=\"00000000deadbeef\"} 4096"), "{line}");
    }

    #[test]
    fn empty_histogram_still_closes_the_family() {
        let registry = MetricsRegistry::new();
        registry.histogram("empty");
        let text = render(&registry);
        assert!(text.contains("empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_sum 0\n"));
        assert!(text.contains("empty_count 0\n"));
    }
}
