//! The named-metric registry and its snapshots.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use serde_json::{json, Value};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A borrowed view of one registered metric, as visited by
/// [`MetricsRegistry::for_each`]. Lets encoders (e.g. the OpenMetrics
/// exposition) reach the live instruments — including histogram buckets
/// and exemplars a [`TelemetrySnapshot`] does not carry — without
/// cloning the registry.
#[derive(Clone, Copy)]
pub enum MetricRef<'a> {
    /// A counter.
    Counter(&'a Counter),
    /// A gauge.
    Gauge(&'a Gauge),
    /// A histogram.
    Histogram(&'a Histogram),
}

/// Registry of named metrics for one pipeline instance.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a write lock once;
/// components hold the returned `Arc` and update it lock-free afterwards.
/// Names are dotted paths, e.g. `ebpf.ring.dropped`.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Returns the gauge `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Returns the histogram `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Visits every registered metric in name order, borrowing the live
    /// instrument. The registry's read lock is held for the duration of
    /// the walk, so keep `f` cheap (recording stays lock-free — only
    /// registration takes the write lock).
    pub fn for_each(&self, mut f: impl FnMut(&str, MetricRef<'_>)) {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => f(name, MetricRef::Counter(c)),
                Metric::Gauge(g) => f(name, MetricRef::Gauge(g)),
                Metric::Histogram(h) => f(name, MetricRef::Histogram(h)),
            }
        }
    }

    /// Copies every metric's current value into a [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut snap = TelemetrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry").field("metrics", &metrics.len()).finish()
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Counter total, or 0 when the counter never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 when the gauge never registered.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram statistics, when recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as flat health documents for bulk-indexing —
    /// one document per metric, all sharing `session`, export sequence
    /// number `seq`, and timestamp `time` (ns).
    ///
    /// Schema: `{session, seq, time, metric, kind, value}` for counters
    /// and gauges; histogram documents replace `value` with
    /// `{count, min, max, mean, p50, p90, p99, p999}`.
    pub fn health_documents(&self, session: &str, seq: u64, time_ns: u64) -> Vec<Value> {
        let mut docs =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.histograms.len());
        for (name, value) in &self.counters {
            docs.push(json!({
                "session": session,
                "seq": seq,
                "time": time_ns,
                "metric": name,
                "kind": "counter",
                "value": *value,
            }));
        }
        for (name, value) in &self.gauges {
            docs.push(json!({
                "session": session,
                "seq": seq,
                "time": time_ns,
                "metric": name,
                "kind": "gauge",
                "value": *value,
            }));
        }
        for (name, h) in &self.histograms {
            docs.push(json!({
                "session": session,
                "seq": seq,
                "time": time_ns,
                "metric": name,
                "kind": "histogram",
                "count": h.count,
                "min": h.min,
                "max": h.max,
                "mean": h.mean,
                "p50": h.p50,
                "p90": h.p90,
                "p99": h.p99,
                "p999": h.p999,
            }));
        }
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x.count");
        let b = registry.counter("x.count");
        a.add(2);
        b.add(3);
        assert_eq!(registry.snapshot().counter("x.count"), 5);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(7);
        registry.gauge("g").set(42);
        registry.histogram("h").record(1000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauge("g"), 42);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), 0);
        assert!(!snap.is_empty());
    }

    #[test]
    fn health_documents_carry_schema() {
        let registry = MetricsRegistry::new();
        registry.counter("ebpf.ring.dropped").add(9);
        registry.histogram("tracer.shipper.batch_ns").record(500);
        let docs = registry.snapshot().health_documents("s1", 3, 1_000_000);
        assert_eq!(docs.len(), 2);
        let counter_doc = docs.iter().find(|d| d["kind"] == "counter").expect("counter doc");
        assert_eq!(counter_doc["session"], "s1");
        assert_eq!(counter_doc["seq"], 3);
        assert_eq!(counter_doc["metric"], "ebpf.ring.dropped");
        assert_eq!(counter_doc["value"], 9);
        let hist_doc = docs.iter().find(|d| d["kind"] == "histogram").expect("histogram doc");
        assert_eq!(hist_doc["count"], 1);
        assert!(hist_doc.get("p999").is_some());
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(1);
        registry.histogram("b").record(10);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
