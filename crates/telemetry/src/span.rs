//! End-to-end event span tracing for the DIO pipeline.
//!
//! Every traced event carries a compact [`StageStamps`] record — a fixed
//! array of monotonic nanosecond timestamps, one per pipeline hand-off
//! ([`Stage`]): kernel dispatch, ring push, ring drain, parse, batch
//! enqueue, bulk index. Stages stamp at their hand-off point; the
//! [`SpanCollector`] turns completed records into per-transition and
//! end-to-end latency histograms, attributes dropped events to the stage
//! that starved (partial stamp records), and maintains the pipeline **lag
//! watermark** — an upper bound on the age of the oldest event that has
//! entered the pipeline but not yet been bulk-indexed.
//!
//! All stamps come from one process-wide monotonic clock
//! ([`monotonic_ns`]), so latencies derived between stages are always
//! non-negative regardless of which thread stamped which stage.
//!
//! # Examples
//!
//! ```
//! use dio_telemetry::span::{monotonic_ns, SpanCollector, Stage, StageStamps};
//! use dio_telemetry::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let spans = SpanCollector::new(&registry, 1);
//!
//! let mut stamps = StageStamps::new();
//! for stage in Stage::ALL {
//!     stamps.stamp(stage, monotonic_ns());
//! }
//! spans.note_emitted(stamps.get(Stage::KernelDispatch).unwrap());
//! spans.record_shipped(&stamps);
//!
//! let summary = spans.summary();
//! assert_eq!(summary.completed, 1);
//! assert_eq!(summary.e2e.count, 1);
//! assert_eq!(summary.lag_watermark_ns, 0, "pipeline fully drained");
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use serde_json::{json, Value};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::registry::MetricsRegistry;

/// Process-wide monotonic clock base, initialized on first use.
static MONO_BASE: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (always >= 1, so 0
/// can serve as the "never stamped" sentinel in [`StageStamps`]).
#[inline]
pub fn monotonic_ns() -> u64 {
    let base = MONO_BASE.get_or_init(Instant::now);
    u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX).max(1)
}

/// The pipeline hand-off points an event passes through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// The kernel fired `sys_exit` and the joined event left kernel space.
    KernelDispatch = 0,
    /// The kernel-side program handed the event to the per-CPU ring.
    RingPush = 1,
    /// The user-space consumer drained the event out of the ring.
    RingDrain = 2,
    /// The consumer finished parsing the raw record into a document.
    Parse = 3,
    /// The document entered the consumer→shipper batch channel.
    BatchEnqueue = 4,
    /// The backend acknowledged the bulk request holding the document.
    BulkIndex = 5,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::KernelDispatch,
        Stage::RingPush,
        Stage::RingDrain,
        Stage::Parse,
        Stage::BatchEnqueue,
        Stage::BulkIndex,
    ];

    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Stable snake_case name (metric suffixes, document keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::KernelDispatch => "kernel_dispatch",
            Stage::RingPush => "ring_push",
            Stage::RingDrain => "ring_drain",
            Stage::Parse => "parse",
            Stage::BatchEnqueue => "batch_enqueue",
            Stage::BulkIndex => "bulk_index",
        }
    }
}

/// The 5 stage-to-stage transitions, as `(from, to, metric_suffix)`.
const TRANSITIONS: [(Stage, Stage, &str); 5] = [
    (Stage::KernelDispatch, Stage::RingPush, "dispatch_to_push"),
    (Stage::RingPush, Stage::RingDrain, "push_to_drain"),
    (Stage::RingDrain, Stage::Parse, "drain_to_parse"),
    (Stage::Parse, Stage::BatchEnqueue, "parse_to_enqueue"),
    (Stage::BatchEnqueue, Stage::BulkIndex, "enqueue_to_index"),
];

/// A compact per-event record of monotonic stamp times, one slot per
/// [`Stage`] (0 = never stamped). 48 bytes, `Copy`, no allocation — cheap
/// enough to ride inside every raw event through the ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct StageStamps {
    stamps: [u64; Stage::COUNT],
}

impl StageStamps {
    /// A record with no stage stamped.
    pub fn new() -> Self {
        StageStamps::default()
    }

    /// Records `ns` for `stage` (first stamp wins; later stamps of the
    /// same stage are ignored so a retry cannot rewrite history).
    pub fn stamp(&mut self, stage: Stage, ns: u64) {
        let slot = &mut self.stamps[stage as usize];
        if *slot == 0 {
            *slot = ns.max(1);
        }
    }

    /// Stamps `stage` with [`monotonic_ns`] now.
    pub fn stamp_now(&mut self, stage: Stage) {
        self.stamp(stage, monotonic_ns());
    }

    /// The stamp of `stage`, if recorded.
    pub fn get(&self, stage: Stage) -> Option<u64> {
        match self.stamps[stage as usize] {
            0 => None,
            ns => Some(ns),
        }
    }

    /// Nanoseconds between two stamped stages (`None` unless both are
    /// stamped). Saturating: never negative even under stamp reordering.
    pub fn latency_between(&self, from: Stage, to: Stage) -> Option<u64> {
        Some(self.get(to)?.saturating_sub(self.get(from)?))
    }

    /// End-to-end latency: kernel dispatch → bulk index.
    pub fn e2e_ns(&self) -> Option<u64> {
        self.latency_between(Stage::KernelDispatch, Stage::BulkIndex)
    }

    /// Whether every stage is stamped.
    pub fn is_complete(&self) -> bool {
        self.stamps.iter().all(|&s| s != 0)
    }

    /// The last stage stamped before the record stops — `None` for a
    /// blank record.
    pub fn last_stamped(&self) -> Option<Stage> {
        Stage::ALL.into_iter().rev().find(|&s| self.get(s).is_some())
    }

    /// The first stage missing a stamp — for a record discarded mid-flight
    /// this is the hand-off the event failed to clear (the stage that
    /// starved). `None` when complete.
    pub fn first_missing(&self) -> Option<Stage> {
        Stage::ALL.into_iter().find(|&s| self.get(s).is_none())
    }

    /// Renders the record as a flat backend document fragment:
    /// `{"stamps": {stage: ns, ...}, "stage_ns": {transition: ns, ...},
    /// "e2e_ns": ...}` with absent values omitted.
    pub fn to_document(&self) -> Value {
        let mut stamps = serde_json::Map::new();
        for stage in Stage::ALL {
            if let Some(ns) = self.get(stage) {
                stamps.insert(stage.name().to_string(), json!(ns));
            }
        }
        let mut stage_ns = serde_json::Map::new();
        for (from, to, name) in TRANSITIONS {
            if let Some(ns) = self.latency_between(from, to) {
                stage_ns.insert(name.to_string(), json!(ns));
            }
        }
        let mut doc = json!({
            "stamps": Value::Object(stamps),
            "stage_ns": Value::Object(stage_ns),
        });
        if let Some(e2e) = self.e2e_ns() {
            doc["e2e_ns"] = json!(e2e);
        }
        doc
    }
}

/// Implemented by event records that carry a [`StageStamps`]; lets
/// transport layers (the ring buffer) stamp hand-offs generically.
pub trait StampCarrier {
    /// Read access to the record's stamps.
    fn stamps(&self) -> &StageStamps;
    /// Write access to the record's stamps.
    fn stamps_mut(&mut self) -> &mut StageStamps;
}

impl StampCarrier for StageStamps {
    fn stamps(&self) -> &StageStamps {
        self
    }
    fn stamps_mut(&mut self) -> &mut StageStamps {
        self
    }
}

/// Aggregates [`StageStamps`] records into registry metrics: per-transition
/// latency histograms (`span.stage.<transition>_ns`), the end-to-end
/// histogram (`span.e2e_ns`), drop-attribution counters
/// (`span.drop.at_<stage>`), and the lag watermark gauges
/// (`span.lag.watermark_ns`, `span.lag.peak_ns`).
///
/// One collector per tracing session, shared by the kernel-side program
/// (emit accounting), the ring (drop attribution), the shipper (completed
/// spans) and the exporter (lag refresh).
pub struct SpanCollector {
    stage_ns: [Arc<Histogram>; TRANSITIONS.len()],
    e2e_ns: Arc<Histogram>,
    completed: Arc<Counter>,
    dropped: Arc<Counter>,
    drop_at: [Arc<Counter>; Stage::COUNT],
    lag_watermark: Arc<Gauge>,
    lag_peak: Arc<Gauge>,
    /// 1-in-N sampling period for full-span documents (0 disables).
    sample_every: u64,
    sample_tick: AtomicU64,
    /// Events that entered the pipeline (kernel dispatch).
    emitted: AtomicU64,
    /// Events that left it (bulk-indexed or dropped).
    retired: AtomicU64,
    /// Kernel-dispatch stamp of the first event ever emitted (0 = none).
    first_dispatch_ns: AtomicU64,
    /// Highest kernel-dispatch stamp among bulk-indexed events.
    shipped_frontier_ns: AtomicU64,
}

impl std::fmt::Debug for SpanCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanCollector")
            .field("completed", &self.completed.get())
            .field("dropped", &self.dropped.get())
            .finish_non_exhaustive()
    }
}

impl SpanCollector {
    /// Creates a collector registering its metrics with `registry`.
    /// `sample_every` selects 1-in-N completed spans for full-span
    /// document export (0 disables sampling, 1 samples every span).
    pub fn new(registry: &MetricsRegistry, sample_every: u64) -> Arc<Self> {
        let stage_ns =
            TRANSITIONS.map(|(_, _, name)| registry.histogram(&format!("span.stage.{name}_ns")));
        let drop_at = Stage::ALL.map(|s| registry.counter(&format!("span.drop.at_{}", s.name())));
        // The lag gauges are session-scoped state: when registries are
        // shared or pooled across back-to-back sessions, a stale peak from
        // a previous collector must not leak into this session's
        // waterline, so both are zeroed at construction.
        let lag_watermark = registry.gauge("span.lag.watermark_ns");
        let lag_peak = registry.gauge("span.lag.peak_ns");
        lag_watermark.set(0);
        lag_peak.set(0);
        Arc::new(SpanCollector {
            stage_ns,
            e2e_ns: registry.histogram("span.e2e_ns"),
            completed: registry.counter("span.completed"),
            dropped: registry.counter("span.dropped"),
            drop_at,
            lag_watermark,
            lag_peak,
            sample_every,
            sample_tick: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            first_dispatch_ns: AtomicU64::new(0),
            shipped_frontier_ns: AtomicU64::new(0),
        })
    }

    /// Accounts an event entering the pipeline (stamped
    /// [`Stage::KernelDispatch`] at `dispatch_ns`).
    pub fn note_emitted(&self, dispatch_ns: u64) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let _ = self.first_dispatch_ns.compare_exchange(
            0,
            dispatch_ns.max(1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Records a fully shipped span: every stamped transition latency plus
    /// end-to-end, advances the shipped frontier, and returns whether this
    /// span is selected by 1-in-N sampling for full-span document export.
    pub fn record_shipped(&self, stamps: &StageStamps) -> bool {
        self.record_transitions(stamps);
        if let Some(e2e) = stamps.e2e_ns() {
            self.e2e_ns.record(e2e);
        }
        self.completed.inc();
        self.retired.fetch_add(1, Ordering::Relaxed);
        if let Some(dispatch) = stamps.get(Stage::KernelDispatch) {
            self.shipped_frontier_ns.fetch_max(dispatch, Ordering::Relaxed);
        }
        if self.sample_every == 0 {
            return false;
        }
        self.sample_tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.sample_every)
    }

    /// Records a partial span for an event discarded mid-pipeline: stamped
    /// transitions still feed the per-stage histograms (they are real
    /// measurements), the drop is attributed to the first un-stamped stage
    /// (the hand-off that starved), and the end-to-end histogram is **not**
    /// touched — partial spans never count toward e2e.
    pub fn record_drop(&self, stamps: &StageStamps) {
        self.record_transitions(stamps);
        self.dropped.inc();
        self.retired.fetch_add(1, Ordering::Relaxed);
        let at = stamps.first_missing().unwrap_or(Stage::BulkIndex);
        self.drop_at[at as usize].inc();
    }

    fn record_transitions(&self, stamps: &StageStamps) {
        for (i, (from, to, _)) in TRANSITIONS.into_iter().enumerate() {
            if let Some(ns) = stamps.latency_between(from, to) {
                self.stage_ns[i].record(ns);
            }
        }
    }

    /// The lag watermark at monotonic time `now_ns`: an upper bound on the
    /// age of the oldest event still in flight (emitted but neither
    /// bulk-indexed nor dropped). 0 when the pipeline is drained.
    ///
    /// Exact bound: every in-flight event was dispatched after the newest
    /// bulk-indexed one (shipping is in-order per session), so its age is
    /// at most `now - shipped_frontier`; before anything ships, the first
    /// dispatch stamp anchors the bound.
    pub fn lag_watermark_ns(&self, now_ns: u64) -> u64 {
        if self.emitted.load(Ordering::Relaxed) == self.retired.load(Ordering::Relaxed) {
            return 0;
        }
        let frontier = self
            .shipped_frontier_ns
            .load(Ordering::Relaxed)
            .max(self.first_dispatch_ns.load(Ordering::Relaxed));
        if frontier == 0 {
            return 0;
        }
        now_ns.saturating_sub(frontier)
    }

    /// Recomputes the lag watermark now and publishes it to the
    /// `span.lag.watermark_ns` gauge (and the `span.lag.peak_ns`
    /// high-water mark). Called by the exporter before every round.
    pub fn refresh_lag(&self) -> u64 {
        let lag = self.lag_watermark_ns(monotonic_ns());
        self.lag_watermark.set(lag);
        self.lag_peak.set_max(lag);
        lag
    }

    /// Point-in-time summary of everything the collector derived.
    pub fn summary(&self) -> SpanSummary {
        let mut stages = BTreeMap::new();
        for (i, (_, _, name)) in TRANSITIONS.into_iter().enumerate() {
            stages.insert(name.to_string(), self.stage_ns[i].snapshot());
        }
        let mut drops_by_stage = BTreeMap::new();
        for stage in Stage::ALL {
            let n = self.drop_at[stage as usize].get();
            if n > 0 {
                drops_by_stage.insert(stage.name().to_string(), n);
            }
        }
        SpanSummary {
            completed: self.completed.get(),
            dropped: self.dropped.get(),
            stages,
            e2e: self.e2e_ns.snapshot(),
            lag_watermark_ns: self.refresh_lag(),
            peak_lag_ns: self.lag_peak.get(),
            drops_by_stage,
        }
    }
}

/// Span-derived statistics of a finished (or running) session: per-stage
/// and end-to-end latency percentiles, the lag watermark, and drop
/// attribution. Embedded in the tracer's `TraceSummary`.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanSummary {
    /// Spans that reached the backend (complete stamp records).
    pub completed: u64,
    /// Spans discarded mid-pipeline (partial stamp records).
    pub dropped: u64,
    /// Latency snapshot per stage transition, keyed by transition name
    /// (`dispatch_to_push`, `push_to_drain`, `drain_to_parse`,
    /// `parse_to_enqueue`, `enqueue_to_index`).
    pub stages: BTreeMap<String, HistogramSnapshot>,
    /// End-to-end latency (kernel dispatch → bulk index); counts only
    /// completed spans, never drop-attributed partials.
    pub e2e: HistogramSnapshot,
    /// Lag watermark at summary time (0 once the pipeline drained).
    pub lag_watermark_ns: u64,
    /// Highest lag watermark observed at any refresh point.
    pub peak_lag_ns: u64,
    /// Dropped events attributed to the stage that starved, keyed by
    /// stage name; empty when nothing dropped.
    pub drops_by_stage: BTreeMap<String, u64>,
}

impl SpanSummary {
    /// The latency snapshot of one transition (by transition name).
    pub fn stage(&self, transition: &str) -> Option<&HistogramSnapshot> {
        self.stages.get(transition)
    }

    /// Names of the stage transitions in pipeline order.
    pub fn transition_names() -> [&'static str; TRANSITIONS.len()] {
        TRANSITIONS.map(|(_, _, name)| name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(upto: usize) -> StageStamps {
        let mut s = StageStamps::new();
        for (i, stage) in Stage::ALL.into_iter().enumerate().take(upto) {
            s.stamp(stage, (i as u64 + 1) * 100);
        }
        s
    }

    #[test]
    fn monotonic_clock_is_monotone_and_nonzero() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }

    #[test]
    fn stamps_first_write_wins() {
        let mut s = StageStamps::new();
        assert_eq!(s.get(Stage::Parse), None);
        s.stamp(Stage::Parse, 500);
        s.stamp(Stage::Parse, 900);
        assert_eq!(s.get(Stage::Parse), Some(500));
        // A zero stamp is clamped to the sentinel-safe minimum.
        s.stamp(Stage::RingPush, 0);
        assert_eq!(s.get(Stage::RingPush), Some(1));
    }

    #[test]
    fn latencies_and_completion() {
        let full = stamped(Stage::COUNT);
        assert!(full.is_complete());
        assert_eq!(full.e2e_ns(), Some(500));
        assert_eq!(full.latency_between(Stage::RingPush, Stage::RingDrain), Some(100));
        assert_eq!(full.first_missing(), None);
        assert_eq!(full.last_stamped(), Some(Stage::BulkIndex));

        let partial = stamped(2); // dispatch + ring push only
        assert!(!partial.is_complete());
        assert_eq!(partial.e2e_ns(), None);
        assert_eq!(partial.first_missing(), Some(Stage::RingDrain));
        assert_eq!(partial.last_stamped(), Some(Stage::RingPush));
    }

    #[test]
    fn reordered_stamps_saturate_to_zero() {
        let mut s = StageStamps::new();
        s.stamp(Stage::KernelDispatch, 1_000);
        s.stamp(Stage::RingPush, 400); // clock misuse: earlier than dispatch
        assert_eq!(s.latency_between(Stage::KernelDispatch, Stage::RingPush), Some(0));
    }

    #[test]
    fn document_renders_stamps_transitions_and_e2e() {
        let doc = stamped(Stage::COUNT).to_document();
        assert_eq!(doc["e2e_ns"], 500);
        assert_eq!(doc["stamps"]["kernel_dispatch"], 100);
        assert_eq!(doc["stage_ns"]["push_to_drain"], 100);
        let partial_doc = stamped(2).to_document();
        assert!(partial_doc.get("e2e_ns").is_none());
        assert_eq!(partial_doc["stage_ns"]["dispatch_to_push"], 100);
        assert!(partial_doc["stage_ns"].get("push_to_drain").is_none());
    }

    #[test]
    fn collector_records_complete_and_partial_spans() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 1);
        let full = stamped(Stage::COUNT);
        spans.note_emitted(full.get(Stage::KernelDispatch).unwrap());
        assert!(spans.record_shipped(&full), "1-in-1 sampling selects every span");

        let partial = stamped(2);
        spans.note_emitted(partial.get(Stage::KernelDispatch).unwrap());
        spans.record_drop(&partial);

        let summary = spans.summary();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.dropped, 1);
        assert_eq!(summary.e2e.count, 1, "partial spans never reach e2e");
        // dispatch→push saw both records; push→drain only the complete one.
        assert_eq!(summary.stage("dispatch_to_push").unwrap().count, 2);
        assert_eq!(summary.stage("push_to_drain").unwrap().count, 1);
        assert_eq!(summary.drops_by_stage.get("ring_drain"), Some(&1));
        assert_eq!(summary.lag_watermark_ns, 0, "both events retired");
    }

    #[test]
    fn sampling_selects_one_in_n() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 4);
        let full = stamped(Stage::COUNT);
        let picks: Vec<bool> = (0..8).map(|_| spans.record_shipped(&full)).collect();
        assert_eq!(picks.iter().filter(|&&p| p).count(), 2);
        assert!(picks[0], "the first span is always sampled");
        let off = SpanCollector::new(&MetricsRegistry::new(), 0);
        assert!(!off.record_shipped(&full), "0 disables sampling");
    }

    #[test]
    fn lag_watermark_tracks_in_flight_events() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        assert_eq!(spans.lag_watermark_ns(1_000_000), 0, "empty pipeline has no lag");

        spans.note_emitted(1_000);
        assert_eq!(spans.lag_watermark_ns(5_000), 4_000, "anchored at first dispatch");

        let mut full = StageStamps::new();
        full.stamp(Stage::KernelDispatch, 1_000);
        full.stamp(Stage::BulkIndex, 2_000);
        spans.record_shipped(&full);
        assert_eq!(spans.lag_watermark_ns(5_000), 0, "drained again");

        // Two in flight, one ships: bound anchored at the shipped frontier.
        spans.note_emitted(3_000);
        spans.note_emitted(4_000);
        let mut second = StageStamps::new();
        second.stamp(Stage::KernelDispatch, 3_000);
        second.stamp(Stage::BulkIndex, 4_500);
        spans.record_shipped(&second);
        assert_eq!(spans.lag_watermark_ns(10_000), 7_000);
        let lag = spans.refresh_lag();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("span.lag.watermark_ns"), lag);
        assert!(snap.gauge("span.lag.peak_ns") >= lag);
    }

    /// Back-to-back sessions sharing one registry (or a pooled registry)
    /// must each start with a clean lag waterline: constructing a new
    /// collector resets both lag gauges.
    #[test]
    fn new_collector_resets_lag_gauges_from_previous_session() {
        let registry = MetricsRegistry::new();
        let first = SpanCollector::new(&registry, 0);
        first.note_emitted(1_000); // in flight forever: lag grows
        let lag = first.refresh_lag();
        assert!(lag > 0);
        let snap = registry.snapshot();
        assert!(snap.gauge("span.lag.peak_ns") >= lag);

        let _second = SpanCollector::new(&registry, 0);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("span.lag.watermark_ns"), 0, "fresh session, fresh waterline");
        assert_eq!(snap.gauge("span.lag.peak_ns"), 0, "previous session's peak not inherited");
    }

    #[test]
    fn summary_serializes() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        spans.record_shipped(&stamped(Stage::COUNT));
        let summary = spans.summary();
        let v = serde_json::to_value(&summary).unwrap();
        assert_eq!(v["completed"], 1);
        assert!(v["stages"]["dispatch_to_push"].get("p99").is_some());
        let back: SpanSummary = serde_json::from_value(&v).unwrap();
        assert_eq!(back, summary);
    }
}
