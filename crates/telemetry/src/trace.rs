//! Causal span tracing and the flight recorder (DESIGN.md §12).
//!
//! Aggregate counters say *that* a histogram moved; they cannot say
//! *why* a particular batch stalled. This module slices the pipeline's
//! work into **causally linked spans** — `(trace_id, span_id,
//! parent_id, category, start/end mono ns, key=value attrs)` — so one
//! ingest can be followed ship → bulk → append → fsync as a tree, the
//! ReLayTracer idea applied to DIO's own layers.
//!
//! Spans land in the [`FlightRecorder`]: one fixed-capacity lock-free
//! ring **per thread**, oldest-evicted, always on. The hot path after
//! first use on a thread is a thread-local lookup plus one atomic ring
//! push of a `Copy` value — no allocation, no shared lock — so the
//! recorder can stay enabled in production and be *dumped* after the
//! fact (on a `dio-diagnose` alert, a crash-injection abort, or an
//! explicit [`crate::trace::dump_on_trigger`] call), the Recorder-style
//! "always-on trace, analyze post-hoc" workflow.
//!
//! Exports: [`FlightRecorder::export_chrome_json`] produces a Chrome
//! Trace Event Format artifact loadable in Perfetto / chrome://tracing,
//! and [`critical_path_summary`] renders the slowest span chain per
//! trace as compact text.
//!
//! # Example
//!
//! ```
//! use dio_telemetry::trace;
//!
//! let root = {
//!     let mut g = trace::span("demo", "demo.parent");
//!     g.attr("items", 3u64);
//!     let _child = trace::span("demo", "demo.child"); // nests under parent
//!     g.ctx()
//! };
//! let spans = trace::recorder().snapshot();
//! assert!(spans.iter().any(|s| s.span_id == root.span_id));
//! assert!(spans
//!     .iter()
//!     .any(|s| s.name == "demo.child" && s.parent_id == root.span_id));
//! ```

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crossbeam::queue::ArrayQueue;

use crate::span::monotonic_ns;

/// Maximum key=value attributes one span can carry. Spans are `Copy`
/// and fixed-size — attributes past the cap are silently dropped (the
/// instrumentation sites all stay well under it).
pub const MAX_ATTRS: usize = 8;

/// Default per-thread ring capacity of the global recorder
/// (overridable with `DIO_FLIGHTREC_CAPACITY`).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One typed attribute value. Strings are `&'static str` so spans stay
/// `Copy` and the hot path never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string.
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Fixed-capacity attribute set (part of the `Copy` span).
#[derive(Debug, Clone, Copy)]
pub struct Attrs {
    len: u8,
    kv: [(&'static str, AttrValue); MAX_ATTRS],
}

impl Default for Attrs {
    fn default() -> Self {
        Attrs { len: 0, kv: [("", AttrValue::U64(0)); MAX_ATTRS] }
    }
}

impl Attrs {
    /// Adds `key=value`; silently dropped past [`MAX_ATTRS`].
    pub fn push(&mut self, key: &'static str, value: AttrValue) {
        if (self.len as usize) < MAX_ATTRS {
            self.kv[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// The attributes, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, AttrValue)> + '_ {
        self.kv[..self.len as usize].iter().copied()
    }

    /// Looks up `key`, returning the first match.
    pub fn get(&self, key: &str) -> Option<AttrValue> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// The causal coordinates of a span: enough to parent further work to
/// it, including across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Identifies the whole causal tree (e.g. one traced session).
    pub trace_id: u64,
    /// Identifies this span within the tree.
    pub span_id: u64,
}

/// One recorded span. `Copy` and fixed-size by design: recording is a
/// single ring push, eviction a single pop.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpan {
    /// Causal tree this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_id: u64,
    /// Coarse layer label (`ship`, `backend`, `storage`, ...).
    pub category: &'static str,
    /// Operation name (`ship.batch`, `storage.fsync`, ...).
    pub name: &'static str,
    /// Start, [`monotonic_ns`] clock.
    pub start_ns: u64,
    /// End, [`monotonic_ns`] clock.
    pub end_ns: u64,
    /// Recording thread (registration order within the recorder).
    pub thread: u32,
    /// Per-thread emission sequence number (drop/eviction ordering).
    pub emit_seq: u64,
    /// Key=value attributes.
    pub attrs: Attrs,
}

impl TraceSpan {
    /// Span duration in nanoseconds (0 when the clock went backwards,
    /// which the monotonic clock rules out).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The span's causal coordinates.
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx { trace_id: self.trace_id, span_id: self.span_id }
    }
}

/// One thread's ring. Registered with the recorder on first record from
/// that thread; lives as long as the recorder (spans of dead threads
/// stay visible in dumps).
struct ThreadRing {
    queue: ArrayQueue<TraceSpan>,
    thread: u32,
    emit_seq: AtomicU64,
}

thread_local! {
    /// Per-thread cache of (recorder id → ring) so the hot path skips
    /// the recorder's registration lock.
    static TLS_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
    /// The ambient span stack of guard-based spans on this thread.
    static STACK: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
}

static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

/// splitmix64: the id allocator. Seeded, so tests get stable ids.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a string — a stable way to tag spans with dynamic
/// identity (store paths, session names) without allocating.
pub fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The bounded, lock-free span sink (see module docs). One global
/// instance serves the whole process ([`recorder`]); tests build their
/// own with known capacity and seed.
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    enabled: AtomicBool,
    next_seed: AtomicU64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
    dump_seq: Mutex<std::collections::BTreeMap<String, u64>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("enabled", &self.enabled())
            .field("recorded", &self.recorded())
            .field("evicted", &self.evicted())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `capacity` spans per thread ring and a seeded id
    /// allocator (same seed + same allocation order = same ids).
    pub fn new(capacity: usize, seed: u64) -> Self {
        FlightRecorder {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            next_seed: AtomicU64::new(seed),
            rings: Mutex::new(Vec::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            dump_seq: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Allocates a fresh nonzero trace/span id.
    pub fn alloc_id(&self) -> u64 {
        loop {
            let id = splitmix64(self.next_seed.fetch_add(1, Ordering::Relaxed));
            if id != 0 {
                return id;
            }
        }
    }

    /// Whether recording is on. Disabled recorders drop spans at the
    /// guard, before any clock read or ring traffic.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (the overhead benchmark's lever).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Spans recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted (overwritten before ever being read).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Per-thread ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn ring_for_this_thread(&self) -> Option<Arc<ThreadRing>> {
        TLS_RINGS
            .try_with(|cell| {
                let mut rings = cell.borrow_mut();
                if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                    return Arc::clone(ring);
                }
                let ring = {
                    let mut all = self.rings.lock().expect("flight recorder ring registry");
                    let ring = Arc::new(ThreadRing {
                        queue: ArrayQueue::new(self.capacity),
                        thread: all.len() as u32,
                        emit_seq: AtomicU64::new(0),
                    });
                    all.push(Arc::clone(&ring));
                    ring
                };
                rings.push((self.id, Arc::clone(&ring)));
                ring
            })
            .ok()
    }

    /// Records one finished span into the calling thread's ring,
    /// evicting the oldest span when full. `thread` and `emit_seq` are
    /// assigned here. No-op while disabled.
    pub fn record(&self, mut span: TraceSpan) {
        if !self.enabled() {
            return;
        }
        // During thread teardown the TLS slot may already be gone; the
        // span is dropped rather than panicking in a destructor.
        let Some(ring) = self.ring_for_this_thread() else { return };
        span.thread = ring.thread;
        span.emit_seq = ring.emit_seq.fetch_add(1, Ordering::Relaxed);
        let mut pending = span;
        loop {
            match ring.queue.push(pending) {
                Ok(()) => break,
                Err(back) => {
                    pending = back;
                    if ring.queue.pop().is_some() {
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every surviving span, across all thread
    /// rings, sorted by start time. Spans are drained and re-pushed, so
    /// a concurrent writer can interleave — the copy is a snapshot, not
    /// a barrier.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        let rings: Vec<Arc<ThreadRing>> =
            self.rings.lock().expect("flight recorder ring registry").clone();
        let mut out = Vec::new();
        for ring in rings {
            let mut drained = Vec::with_capacity(ring.queue.len());
            while let Some(span) = ring.queue.pop() {
                drained.push(span);
            }
            for span in &drained {
                // Best effort: a concurrent push may have refilled the
                // ring; then the re-push drops the oldest drained spans,
                // which eviction would have claimed anyway.
                let _ = ring.queue.push(*span);
            }
            out.extend(drained);
        }
        out.sort_by_key(|s| (s.start_ns, s.thread, s.emit_seq));
        out
    }

    /// The surviving spans as a Chrome Trace Event Format JSON string
    /// (Perfetto / chrome://tracing loadable). See [`chrome_trace_json`].
    pub fn export_chrome_json(&self) -> String {
        chrome_trace_json(&self.snapshot())
    }

    /// Writes the current window to
    /// `$DIO_RESULTS_DIR|results/flightrec-<reason>-<NN>.json` (Chrome
    /// trace format plus an `otherData` block with the trigger reason
    /// and the critical-path summary). Returns the path, or `None` when
    /// no results directory exists — dump triggers fire from library
    /// code, so they only write where an artifact directory is already
    /// established (experiments, CI) or explicitly requested via env.
    ///
    /// Naming is deterministic and capped: `NN` is a per-reason
    /// sequence (`01`, `02`, …) held by this recorder, never the pid —
    /// re-runs overwrite the same artifact names instead of littering
    /// the results directory. Past [`dump_cap`] dumps for one reason
    /// the last slot is overwritten in place, so a dump storm leaves at
    /// most `cap` files per reason with the storm's earliest dumps and
    /// its latest.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = dump_dir()?;
        std::fs::create_dir_all(&dir).ok()?;
        let tag: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' })
            .collect();
        let seq = {
            let mut seqs = self.dump_seq.lock().unwrap_or_else(|e| e.into_inner());
            let n = seqs.entry(tag.clone()).or_insert(0);
            *n = (*n + 1).min(dump_cap());
            *n
        };
        let path = dir.join(format!("flightrec-{tag}-{seq:02}.json"));
        let spans = self.snapshot();
        let mut doc = String::from("{\"otherData\":{");
        doc.push_str(&format!(
            "\"reason\":\"{tag}\",\"recorded\":{},\"evicted\":{},\"spans\":{},",
            self.recorded(),
            self.evicted(),
            spans.len()
        ));
        doc.push_str("\"criticalPath\":");
        json_escape_into(&critical_path_summary(&spans), &mut doc);
        doc.push_str("},\"traceEvents\":");
        chrome_trace_events_into(&spans, &mut doc);
        doc.push('}');
        std::fs::write(&path, doc).ok()?;
        Some(path)
    }
}

/// Per-reason cap on dump artifacts: `DIO_FLIGHTREC_DUMP_CAP`
/// (default 8, floor 1). Dumps past the cap reuse the cap's slot.
pub fn dump_cap() -> u64 {
    std::env::var("DIO_FLIGHTREC_DUMP_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(8).max(1)
}

fn dump_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("DIO_RESULTS_DIR") {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    let default = PathBuf::from("results");
    default.is_dir().then_some(default)
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder. Capacity comes from
/// `DIO_FLIGHTREC_CAPACITY` (default [`DEFAULT_CAPACITY`]);
/// `DIO_FLIGHTREC=off|0|false` starts it disabled.
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("DIO_FLIGHTREC_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        let rec = FlightRecorder::new(capacity, 0x0d10_0000_0000_0001);
        if matches!(std::env::var("DIO_FLIGHTREC").as_deref(), Ok("off") | Ok("0") | Ok("false")) {
            rec.set_enabled(false);
        }
        rec
    })
}

/// Dumps the global recorder, tagged `reason` (alert fired, crash
/// harness abort, explicit request). See [`FlightRecorder::dump`].
pub fn dump_on_trigger(reason: &str) -> Option<PathBuf> {
    recorder().dump(reason)
}

/// The ambient span context of the calling thread (the innermost open
/// guard span), if any.
pub fn current_ctx() -> Option<SpanCtx> {
    STACK.try_with(|s| s.borrow().last().copied()).ok().flatten()
}

/// The trace id of the calling thread's innermost open span, if any —
/// the hook metric exemplars use
/// ([`Histogram::record_traced`](crate::Histogram::record_traced)) to
/// link a histogram bucket back to a flight-recorder trace.
pub fn current_trace_id() -> Option<u64> {
    current_ctx().map(|c| c.trace_id)
}

/// An open span tied to the calling thread: records itself into the
/// global recorder on drop and parents any span opened below it on
/// this thread. Obtained from [`span`] / [`span_child_of`].
pub struct SpanGuard {
    span: TraceSpan,
    live: bool,
}

impl SpanGuard {
    /// Adds a `key=value` attribute (dropped past [`MAX_ATTRS`]).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.live {
            self.span.attrs.push(key, value.into());
        }
    }

    /// The span's causal coordinates, for parenting work on other
    /// threads. Zero ids when the recorder is disabled.
    pub fn ctx(&self) -> SpanCtx {
        self.span.ctx()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let _ = STACK.try_with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c.span_id == self.span.span_id) {
                stack.truncate(pos);
            }
        });
        self.span.end_ns = monotonic_ns();
        recorder().record(self.span);
    }
}

fn noop_guard() -> SpanGuard {
    SpanGuard {
        span: TraceSpan {
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            category: "",
            name: "",
            start_ns: 0,
            end_ns: 0,
            thread: 0,
            emit_seq: 0,
            attrs: Attrs::default(),
        },
        live: false,
    }
}

fn start_guard(category: &'static str, name: &'static str, parent: Option<SpanCtx>) -> SpanGuard {
    let rec = recorder();
    if !rec.enabled() {
        return noop_guard();
    }
    let (trace_id, parent_id) = match parent {
        Some(ctx) => (ctx.trace_id, ctx.span_id),
        None => (rec.alloc_id(), 0),
    };
    let ctx = SpanCtx { trace_id, span_id: rec.alloc_id() };
    let _ = STACK.try_with(|s| s.borrow_mut().push(ctx));
    SpanGuard {
        span: TraceSpan {
            trace_id,
            span_id: ctx.span_id,
            parent_id,
            category,
            name,
            start_ns: monotonic_ns(),
            end_ns: 0,
            thread: 0,
            emit_seq: 0,
            attrs: Attrs::default(),
        },
        live: true,
    }
}

/// Opens a span parented to the calling thread's innermost open span
/// (a new root when there is none).
pub fn span(category: &'static str, name: &'static str) -> SpanGuard {
    span_child_of(current_ctx(), category, name)
}

/// Opens a span with an explicit parent — the cross-thread hand-off
/// primitive (e.g. shipper batches parented to the session span).
pub fn span_child_of(
    parent: Option<SpanCtx>,
    category: &'static str,
    name: &'static str,
) -> SpanGuard {
    start_guard(category, name, parent)
}

/// A long-lived span detached from any thread's stack: started on one
/// thread, finished on another (or much later). Children parent to it
/// through [`ManualSpan::ctx`] + [`span_child_of`].
pub struct ManualSpan {
    span: TraceSpan,
    finished: bool,
}

impl ManualSpan {
    /// The span's causal coordinates.
    pub fn ctx(&self) -> SpanCtx {
        self.span.ctx()
    }

    /// Adds a `key=value` attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        self.span.attrs.push(key, value.into());
    }

    /// Ends the span and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if !self.finished {
            self.finished = true;
            self.span.end_ns = monotonic_ns();
            recorder().record(self.span);
        }
    }
}

impl Drop for ManualSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Starts a [`ManualSpan`] on the global recorder. The span is real
/// even while the recorder is disabled (ids still allocate) so causal
/// plumbing does not depend on the enable switch; it is simply not
/// recorded at finish if recording is off then.
pub fn begin_manual(
    category: &'static str,
    name: &'static str,
    parent: Option<SpanCtx>,
) -> ManualSpan {
    let rec = recorder();
    let (trace_id, parent_id) = match parent {
        Some(ctx) => (ctx.trace_id, ctx.span_id),
        None => (rec.alloc_id(), 0),
    };
    ManualSpan {
        span: TraceSpan {
            trace_id,
            span_id: rec.alloc_id(),
            parent_id,
            category,
            name,
            start_ns: monotonic_ns(),
            end_ns: 0,
            thread: 0,
            emit_seq: 0,
            attrs: Attrs::default(),
        },
        finished: false,
    }
}

// ---------------------------------------------------------------- export

fn json_escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn attr_json_into(value: AttrValue, out: &mut String) {
    match value {
        AttrValue::U64(v) => out.push_str(&v.to_string()),
        AttrValue::I64(v) => out.push_str(&v.to_string()),
        AttrValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Bool(v) => out.push_str(&v.to_string()),
        AttrValue::Str(v) => json_escape_into(v, out),
    }
}

fn chrome_trace_events_into(spans: &[TraceSpan], out: &mut String) {
    out.push('[');
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_escape_into(span.name, out);
        out.push_str(",\"cat\":");
        json_escape_into(span.category, out);
        // Complete ("X") events; timestamps and durations are
        // microseconds with ns precision kept in the fraction.
        out.push_str(&format!(
            ",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
            span.start_ns as f64 / 1000.0,
            span.duration_ns() as f64 / 1000.0,
            span.thread
        ));
        out.push_str(&format!(
            "\"trace\":\"{:#018x}\",\"span\":\"{:#018x}\",\"parent\":\"{:#018x}\"",
            span.trace_id, span.span_id, span.parent_id
        ));
        for (key, value) in span.attrs.iter() {
            out.push(',');
            json_escape_into(key, out);
            out.push(':');
            attr_json_into(value, out);
        }
        out.push_str("}}");
    }
    out.push(']');
}

/// Renders `spans` in Chrome Trace Event Format: a JSON object with a
/// `traceEvents` array of complete (`"ph":"X"`) events, `ts`/`dur` in
/// microseconds, `tid` = recorder thread index, and the causal ids in
/// `args` (`trace`/`span`/`parent`, hex). Load the file directly in
/// Perfetto (ui.perfetto.dev) or chrome://tracing.
pub fn chrome_trace_json(spans: &[TraceSpan]) -> String {
    let mut out = String::from("{\"traceEvents\":");
    chrome_trace_events_into(spans, &mut out);
    out.push('}');
    out
}

/// The slowest causal chain per trace, as compact text: for each trace
/// (slowest root first, capped at `MAX_TRACES`), walks from the root
/// through the largest-duration child at every level.
pub fn critical_path_summary(spans: &[TraceSpan]) -> String {
    const MAX_TRACES: usize = 5;
    if spans.is_empty() {
        return String::from("(no spans recorded)\n");
    }
    let by_id: std::collections::HashMap<u64, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.span_id, i)).collect();
    let mut children: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        if span.parent_id != 0 && by_id.contains_key(&span.parent_id) {
            children.entry(span.parent_id).or_default().push(i);
        } else {
            // True roots, and orphans whose parent was evicted: both
            // head their own chain.
            roots.push(i);
        }
    }
    roots.sort_by_key(|&i| std::cmp::Reverse(spans[i].duration_ns()));
    let mut out = String::new();
    for &root in roots.iter().take(MAX_TRACES) {
        let span = &spans[root];
        out.push_str(&format!(
            "trace {:#018x}: {} spans\n",
            span.trace_id,
            spans.iter().filter(|s| s.trace_id == span.trace_id).count()
        ));
        let mut depth = 0usize;
        let mut cursor = root;
        loop {
            let s = &spans[cursor];
            out.push_str(&format!(
                "{:indent$}{}/{} {:.3}us\n",
                "",
                s.category,
                s.name,
                s.duration_ns() as f64 / 1000.0,
                indent = 2 + depth * 2
            ));
            let Some(next) = children
                .get(&s.span_id)
                .and_then(|kids| kids.iter().max_by_key(|&&i| spans[i].duration_ns()))
            else {
                break;
            };
            cursor = *next;
            depth += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_nesting_links_parent_child() {
        let root_ctx;
        {
            let mut parent = span("test", "trace.parent");
            parent.attr("batch", 7u64);
            root_ctx = parent.ctx();
            {
                let child = span("test", "trace.child");
                assert_eq!(child.ctx().trace_id, root_ctx.trace_id);
            }
        }
        let spans = recorder().snapshot();
        let child = spans
            .iter()
            .find(|s| s.name == "trace.child" && s.trace_id == root_ctx.trace_id)
            .expect("child recorded");
        assert_eq!(child.parent_id, root_ctx.span_id);
        let parent = spans.iter().find(|s| s.span_id == root_ctx.span_id).expect("parent recorded");
        assert_eq!(parent.parent_id, 0);
        assert_eq!(parent.attrs.get("batch"), Some(AttrValue::U64(7)));
        assert!(parent.start_ns <= child.start_ns);
        assert!(parent.end_ns >= child.end_ns);
    }

    #[test]
    fn manual_span_parents_across_threads() {
        let session = begin_manual("test", "manual.session", None);
        let ctx = session.ctx();
        std::thread::spawn(move || {
            let _child = span_child_of(Some(ctx), "test", "manual.remote");
        })
        .join()
        .unwrap();
        session.finish();
        let spans = recorder().snapshot();
        let child = spans
            .iter()
            .find(|s| s.name == "manual.remote" && s.trace_id == ctx.trace_id)
            .expect("remote child recorded");
        assert_eq!(child.parent_id, ctx.span_id);
        assert!(spans.iter().any(|s| s.span_id == ctx.span_id));
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let rec = FlightRecorder::new(4, 99);
        for i in 0..10u64 {
            let mut span = blank_span(i);
            span.attrs.push("i", AttrValue::U64(i));
            rec.record(span);
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.evicted(), 6);
        let seqs: Vec<u64> = spans.iter().map(|s| s.emit_seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "survivors are the newest suffix");
    }

    #[test]
    fn seeded_ids_are_stable() {
        let a = FlightRecorder::new(8, 42);
        let b = FlightRecorder::new(8, 42);
        let ids_a: Vec<u64> = (0..5).map(|_| a.alloc_id()).collect();
        let ids_b: Vec<u64> = (0..5).map(|_| b.alloc_id()).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(ids_a.iter().collect::<std::collections::HashSet<_>>().len(), 5);
    }

    #[test]
    fn disabled_recorder_drops_spans() {
        let rec = FlightRecorder::new(8, 7);
        rec.set_enabled(false);
        rec.record(blank_span(1));
        assert_eq!(rec.snapshot().len(), 0);
        rec.set_enabled(true);
        rec.record(blank_span(2));
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let rec = FlightRecorder::new(8, 5);
        let mut span = blank_span(1);
        span.attrs.push("path", AttrValue::Str("a\"b"));
        span.attrs.push("ratio", AttrValue::F64(0.5));
        rec.record(span);
        let json = rec.export_chrome_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed["traceEvents"][0]["ph"], serde_json::json!("X"));
        assert_eq!(parsed["traceEvents"][0]["args"]["path"], serde_json::json!("a\"b"));
    }

    #[test]
    fn critical_path_follows_slowest_child() {
        let mut spans = Vec::new();
        let root = mk(1, 0, "root", 0, 100_000);
        spans.push(root);
        spans.push(mk(2, 1, "fast", 10_000, 20_000));
        spans.push(mk(3, 1, "slow", 20_000, 90_000));
        spans.push(mk(4, 3, "leaf", 30_000, 80_000));
        let text = critical_path_summary(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("root"));
        assert!(lines[2].contains("slow"));
        assert!(lines[3].contains("leaf"));
        assert!(!text.contains("fast\n"));
    }

    fn blank_span(seed: u64) -> TraceSpan {
        TraceSpan {
            trace_id: seed,
            span_id: seed,
            parent_id: 0,
            category: "test",
            name: "test.span",
            start_ns: seed * 1000 + 1,
            end_ns: seed * 1000 + 500,
            thread: 0,
            emit_seq: 0,
            attrs: Attrs::default(),
        }
    }

    fn mk(span_id: u64, parent_id: u64, name: &'static str, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            trace_id: 0xabc,
            span_id,
            parent_id,
            category: "t",
            name,
            start_ns: start,
            end_ns: end,
            thread: 0,
            emit_seq: span_id,
            attrs: Attrs::default(),
        }
    }
}
