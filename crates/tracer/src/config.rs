//! Tracer configuration (the paper's §II-F configuration file).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dio_diagnose::DiagnoseConfig;
use dio_ebpf::{FilterSpec, RingConfig};
use dio_profile::ProfileConfig;
use dio_syscall::{Pid, SyscallKind, Tid};

static SESSION_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Generates a unique session name (`dio-session-N`).
///
/// The paper labels "each tracing execution with a unique session name" so
/// that multiple executions can share one backend (§II-F).
pub fn generate_session_name() -> String {
    format!("dio-session-{}", SESSION_COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// Default exporter flush interval: 100 ms, overridable at process level
/// through `DIO_EXPORT_INTERVAL_MS` (clamped to >= 1 ms). The builder's
/// [`TracerConfig::telemetry_interval`] still wins over the environment.
fn default_telemetry_interval() -> Duration {
    std::env::var("DIO_EXPORT_INTERVAL_MS")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map(|ms| Duration::from_millis(ms.max(1)))
        .unwrap_or(Duration::from_millis(100))
}

/// Full configuration of a tracing session.
///
/// # Examples
///
/// ```
/// use dio_tracer::TracerConfig;
/// use dio_syscall::SyscallKind;
///
/// let config = TracerConfig::new("rocksdb-run")
///     .syscalls([SyscallKind::Open, SyscallKind::Read, SyscallKind::Write, SyscallKind::Close])
///     .batch_size(500);
/// assert_eq!(config.session(), "rocksdb-run");
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TracerConfig {
    session: String,
    filter: FilterSpec,
    ring: RingConfig,
    batch_size: usize,
    flush_interval: Duration,
    drain_batch: usize,
    poll_interval: Duration,
    enrich: bool,
    enter_cost_ns: u64,
    exit_cost_ns: u64,
    telemetry: bool,
    telemetry_interval: Duration,
    span_sample_every: u64,
    diagnose: Option<DiagnoseConfig>,
    rules: Vec<String>,
    profile: Option<ProfileConfig>,
}

impl TracerConfig {
    /// Configuration with the given session name, tracing all 42 syscalls
    /// system-wide with paper-default buffers (256 MiB/CPU, 1000-event
    /// batches).
    pub fn new(session: impl Into<String>) -> Self {
        TracerConfig {
            session: session.into(),
            filter: FilterSpec::new(),
            ring: RingConfig::paper_default(),
            batch_size: 1_000,
            flush_interval: Duration::from_millis(100),
            drain_batch: 4_096,
            poll_interval: Duration::from_micros(200),
            enrich: true,
            enter_cost_ns: 0,
            exit_cost_ns: 0,
            telemetry: true,
            telemetry_interval: default_telemetry_interval(),
            span_sample_every: 64,
            diagnose: None,
            rules: Vec::new(),
            profile: None,
        }
    }

    /// Configuration with a generated unique session name.
    pub fn with_generated_session() -> Self {
        Self::new(generate_session_name())
    }

    /// Serializes the configuration as pretty JSON — the paper's §II-F
    /// configuration file ("all these configurations ... can be set
    /// through a configuration file").
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Loads a configuration from a JSON file on the host file system.
    ///
    /// # Errors
    ///
    /// I/O errors and parse errors, boxed.
    pub fn from_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let raw = std::fs::read_to_string(path)?;
        Ok(Self::from_json(&raw)?)
    }

    /// The session name.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// The backend index this session writes to (`dio-<session>`).
    pub fn index_name(&self) -> String {
        format!("dio-{}", self.session)
    }

    /// The backend index receiving this session's health documents
    /// (`dio-telemetry-<session>`).
    pub fn telemetry_index_name(&self) -> String {
        format!("dio-telemetry-{}", self.session)
    }

    /// Restricts tracing to the given syscalls.
    pub fn syscalls(mut self, kinds: impl IntoIterator<Item = SyscallKind>) -> Self {
        self.filter = self.filter.syscalls(kinds);
        self
    }

    /// Restricts tracing to the given processes.
    pub fn pids(mut self, pids: impl IntoIterator<Item = Pid>) -> Self {
        self.filter = self.filter.pids(pids);
        self
    }

    /// Restricts tracing to the given threads.
    pub fn tids(mut self, tids: impl IntoIterator<Item = Tid>) -> Self {
        self.filter = self.filter.tids(tids);
        self
    }

    /// Restricts tracing to paths under `prefix` (repeatable).
    pub fn path_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.filter = self.filter.path_prefix(prefix);
        self
    }

    /// Replaces the whole filter.
    pub fn filter(mut self, filter: FilterSpec) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the per-CPU ring-buffer size.
    pub fn ring(mut self, ring: RingConfig) -> Self {
        self.ring = ring;
        self
    }

    /// Events per bulk-index request.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }

    /// Maximum time a partial batch may wait before being flushed.
    pub fn flush_interval(mut self, d: Duration) -> Self {
        self.flush_interval = d;
        self
    }

    /// Limits how many events the consumer drains per poll (throttling
    /// knob for the §III-D discard experiments).
    pub fn drain_batch(mut self, n: usize) -> Self {
        self.drain_batch = n.max(1);
        self
    }

    /// Sets how long the consumer sleeps between polls.
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// Enables or disables kernel-context enrichment.
    pub fn enrich(mut self, on: bool) -> Self {
        self.enrich = on;
        self
    }

    /// Sets calibrated in-kernel per-event costs (see DESIGN.md §6).
    pub fn kernel_costs(mut self, enter_ns: u64, exit_ns: u64) -> Self {
        self.enter_cost_ns = enter_ns;
        self.exit_cost_ns = exit_ns;
        self
    }

    /// Enables or disables the self-telemetry exporter (on by default).
    ///
    /// Metrics are always collected (the counters are a handful of relaxed
    /// atomic increments); this knob only controls the background thread
    /// that ships health documents to `dio-telemetry-<session>`.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Sets how often the exporter snapshots the registry and ships health
    /// documents.
    pub fn telemetry_interval(mut self, d: Duration) -> Self {
        self.telemetry_interval = d;
        self
    }

    /// Sets the full-span document sampling period: 1 in `n` completed
    /// spans is bulk-indexed into `dio-telemetry-<session>` for post-hoc
    /// queries (`kind: "span"` documents). 0 disables sampling, 1 keeps
    /// every span. Default: 64.
    pub fn span_sample_every(mut self, n: u64) -> Self {
        self.span_sample_every = n;
        self
    }

    /// Enables live diagnosis: the consumer thread feeds every parsed
    /// event batch to an in-process [`dio_diagnose::DiagnosisEngine`]
    /// configured by `config`, raising alerts *during* the trace (see
    /// [`crate::Tracer::diagnosis`]). Off by default.
    pub fn diagnose(mut self, config: DiagnoseConfig) -> Self {
        self.diagnose = Some(config);
        self
    }

    /// Enables streaming DFG profiling: the consumer thread feeds every
    /// parsed event batch (at the same pipeline pressure the diagnosis
    /// engine sees) to an in-process [`dio_profile::DfgMiner`] configured
    /// by `config`, mining directly-follows graphs *during* the trace
    /// (see [`crate::Tracer::profiler`]). When live diagnosis is also
    /// enabled, the miner is installed as the engine's attributor: every
    /// built-in alert — and every rule alert whose rule says
    /// `attribution on` — gets a critical-path `attribution` block.
    /// Off by default.
    pub fn profile(mut self, config: ProfileConfig) -> Self {
        self.profile = Some(config);
        self
    }

    /// Appends one `dio-rules` rule-file source (DSL text).
    ///
    /// The sources are compiled — and statically verified — when the
    /// tracer attaches; a file the verifier rejects fails
    /// [`crate::Tracer::try_attach`] with the rule diagnostics, before
    /// any tracepoint is enabled. Configuring rules without
    /// [`TracerConfig::diagnose`] enables live diagnosis with the
    /// default [`DiagnoseConfig`].
    pub fn rules_source(mut self, src: impl Into<String>) -> Self {
        self.rules.push(src.into());
        self
    }

    /// Appends every rule file shipped with the tracer
    /// (`dio_rules::shipped::ALL`: the Fig. 2 / Fig. 3 detectors plus
    /// the rate and error-rate anomaly rules).
    pub fn shipped_rules(mut self) -> Self {
        for &(_, src) in dio_rules::shipped::ALL {
            self.rules.push(src.to_string());
        }
        self
    }

    /// Appends a rule file read from the host file system.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be read; DSL errors
    /// surface later, at attach time.
    pub fn rules_file(self, path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let src = std::fs::read_to_string(path)?;
        Ok(self.rules_source(src))
    }

    /// The configured rule-file sources, in configuration order.
    pub fn rule_sources(&self) -> &[String] {
        &self.rules
    }

    /// Runs the static verifier over this configuration's filter (the
    /// analysis [`crate::Tracer::try_attach`] applies before attaching).
    ///
    /// # Examples
    ///
    /// ```
    /// use dio_tracer::TracerConfig;
    /// use dio_verify::Rule;
    ///
    /// let bad = TracerConfig::new("s").pids([]);
    /// assert!(bad.verify().into_result().unwrap_err().violates(Rule::EmptyPidSet));
    /// assert!(TracerConfig::new("s").verify().is_ok());
    /// ```
    pub fn verify(&self) -> dio_verify::VerifyReport {
        self.filter.verify()
    }

    pub(crate) fn filter_spec(&self) -> &FilterSpec {
        &self.filter
    }

    pub(crate) fn ring_config(&self) -> RingConfig {
        self.ring
    }

    pub(crate) fn batch(&self) -> usize {
        self.batch_size
    }

    pub(crate) fn flush(&self) -> Duration {
        self.flush_interval
    }

    pub(crate) fn drain(&self) -> usize {
        self.drain_batch
    }

    pub(crate) fn poll(&self) -> Duration {
        self.poll_interval
    }

    pub(crate) fn enrich_enabled(&self) -> bool {
        self.enrich
    }

    pub(crate) fn costs(&self) -> (u64, u64) {
        (self.enter_cost_ns, self.exit_cost_ns)
    }

    pub(crate) fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    pub(crate) fn telemetry_tick(&self) -> Duration {
        self.telemetry_interval
    }

    pub(crate) fn span_sampling(&self) -> u64 {
        self.span_sample_every
    }

    pub(crate) fn diagnose_config(&self) -> Option<DiagnoseConfig> {
        self.diagnose.clone()
    }

    pub(crate) fn profile_config(&self) -> Option<ProfileConfig> {
        self.profile.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sessions_are_unique() {
        let a = generate_session_name();
        let b = generate_session_name();
        assert_ne!(a, b);
        assert!(a.starts_with("dio-session-"));
    }

    #[test]
    fn index_name_convention() {
        assert_eq!(TracerConfig::new("x").index_name(), "dio-x");
    }

    #[test]
    fn json_roundtrip_preserves_configuration() {
        let original = TracerConfig::new("from-file")
            .syscalls([SyscallKind::Read, SyscallKind::Write])
            .pids([Pid(42)])
            .path_prefix("/db")
            .batch_size(512)
            .enrich(false)
            .kernel_costs(100, 200);
        let json = original.to_json();
        assert!(json.contains("from-file"));
        let parsed = TracerConfig::from_json(&json).unwrap();
        assert_eq!(parsed.session(), "from-file");
        assert_eq!(parsed.batch(), 512);
        assert!(!parsed.enrich_enabled());
        assert_eq!(parsed.costs(), (100, 200));
        assert_eq!(parsed.filter_spec(), original.filter_spec());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TracerConfig::from_json("{not json").is_err());
        assert!(TracerConfig::from_json("{}").is_err(), "all fields required");
    }

    #[test]
    fn export_interval_env_overrides_default() {
        std::env::set_var("DIO_EXPORT_INTERVAL_MS", "7");
        let from_env = TracerConfig::new("env").telemetry_tick();
        std::env::set_var("DIO_EXPORT_INTERVAL_MS", "0");
        let clamped = TracerConfig::new("env").telemetry_tick();
        std::env::set_var("DIO_EXPORT_INTERVAL_MS", "junk");
        let junk = TracerConfig::new("env").telemetry_tick();
        std::env::remove_var("DIO_EXPORT_INTERVAL_MS");
        assert_eq!(from_env, Duration::from_millis(7));
        assert_eq!(clamped, Duration::from_millis(1), "zero clamps to 1 ms");
        assert_eq!(junk, Duration::from_millis(100), "unparsable falls back");
        let explicit =
            TracerConfig::new("env").telemetry_interval(Duration::from_secs(3)).telemetry_tick();
        assert_eq!(explicit, Duration::from_secs(3), "builder wins over env");
    }

    #[test]
    fn rules_accumulate_and_roundtrip_through_json() {
        let config = TracerConfig::new("rules")
            .rules_source("rule r when offset > 0 then record(\"r\")")
            .shipped_rules();
        assert_eq!(config.rule_sources().len(), 1 + dio_rules::shipped::ALL.len());
        let parsed = TracerConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(parsed.rule_sources(), config.rule_sources());
    }

    #[test]
    fn builder_accumulates() {
        let c = TracerConfig::new("s")
            .syscalls([SyscallKind::Read])
            .pids([Pid(1)])
            .path_prefix("/db")
            .batch_size(0)
            .enrich(false)
            .kernel_costs(10, 20);
        assert_eq!(c.batch(), 1, "batch size clamped to >= 1");
        assert!(!c.enrich_enabled());
        assert_eq!(c.costs(), (10, 20));
        assert_eq!(c.filter_spec().enabled_syscalls().len(), 1);
    }
}
