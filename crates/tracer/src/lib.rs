#![warn(missing_docs)]

//! DIO's user-space tracer component.
//!
//! Mirrors the Go user-space side of DIO: it enables the desired
//! tracepoints (attaching the kernel-side program), applies user-defined
//! filters, asynchronously consumes the per-CPU ring buffers, parses raw
//! records into JSON events, and bulk-ships them to the backend — all off
//! the traced application's critical path (§II-B of the paper).
//!
//! See [`Tracer`] for the lifecycle and [`TracerConfig`] for the knobs
//! (syscall/PID/TID/path filters, ring-buffer size, batch size).
//!
//! Attaching statically verifies the filter first ([`Tracer::try_attach`],
//! DESIGN.md §9): a configuration that provably traces nothing is rejected
//! with a typed [`VerifyError`] instead of producing an empty session.

mod config;
mod tracer;

pub use config::{generate_session_name, TracerConfig};
pub use tracer::{AttachError, TraceSummary, Tracer};

// Profiling vocabulary, re-exported so callers can configure the DFG
// miner without a direct `dio-profile` dependency.
pub use dio_profile::{DfgMiner, DfgSnapshot, ProfileConfig};

// Verification vocabulary, re-exported for callers handling rejections.
pub use dio_rules::{CompileError as RuleCompileError, RuleCheck, RulesError};
pub use dio_verify::{Rule, VerifyError, VerifyReport};
