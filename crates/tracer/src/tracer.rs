//! The user-space tracer: consume ring buffers, batch, ship to the backend.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use serde_json::{json, Value};

use dio_backend::DocStore;
use dio_diagnose::{Alert, DiagnosisEngine, EngineStats};
use dio_ebpf::{ProgramConfig, RawEvent, RingBuffer, RingStats, TracerProgram};
use dio_kernel::{Kernel, ProbeId, SyscallProbe};
use dio_profile::DfgMiner;
use dio_telemetry::span::{SpanCollector, SpanSummary, Stage, StageStamps};
use dio_telemetry::{
    trace, Exporter, ExporterHandle, Gauge, Histogram, MetricsRegistry, TelemetrySnapshot,
};
use dio_verify::VerifyError;

use crate::config::TracerConfig;

/// Why [`Tracer::try_attach`] refused to attach.
///
/// Both variants are *load-time* rejections: nothing was attached, no
/// tracepoint was enabled, and the backend holds no session index.
#[derive(Debug)]
pub enum AttachError {
    /// The event filter was statically rejected by `dio-verify`.
    Filter(VerifyError),
    /// A configured `dio-rules` rule file failed to parse or was
    /// rejected by the rule verifier.
    Rules {
        /// Index of the offending source in
        /// [`TracerConfig::rule_sources`].
        index: usize,
        /// The parse or verification error.
        error: dio_rules::CompileError,
    },
}

impl AttachError {
    /// Whether the rejection includes the given filter-verifier rule
    /// (convenience passthrough to [`VerifyError::violates`]).
    pub fn violates(&self, rule: dio_verify::Rule) -> bool {
        matches!(self, AttachError::Filter(err) if err.violates(rule))
    }

    /// The rule-compilation error, when rules caused the rejection.
    pub fn rules_error(&self) -> Option<&dio_rules::CompileError> {
        match self {
            AttachError::Rules { error, .. } => Some(error),
            AttachError::Filter(_) => None,
        }
    }
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Filter(err) => err.fmt(f),
            AttachError::Rules { index, error } => {
                write!(f, "rule file #{index} rejected: {error}")
            }
        }
    }
}

impl std::error::Error for AttachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttachError::Filter(err) => Some(err),
            AttachError::Rules { error, .. } => Some(error),
        }
    }
}

impl From<VerifyError> for AttachError {
    fn from(err: VerifyError) -> Self {
        AttachError::Filter(err)
    }
}

/// Summary of a finished tracing session.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// The session name.
    pub session: String,
    /// The backend index holding the events.
    pub index_name: String,
    /// Events stored at the backend.
    pub events_stored: u64,
    /// Events dropped at the ring buffer (consumer lagged).
    pub events_dropped: u64,
    /// Events rejected by the in-kernel filter.
    pub events_filtered: u64,
    /// Bulk requests issued.
    pub batches: u64,
    /// Final self-telemetry snapshot: every pipeline metric at shutdown
    /// (see the DESIGN.md "Self-telemetry" section for the catalog).
    pub health: TelemetrySnapshot,
    /// Span-derived statistics: per-stage and end-to-end latency
    /// percentiles, the lag watermark, and drop attribution (see the
    /// DESIGN.md "Span lifecycle" section).
    pub spans: SpanSummary,
    /// Operator-facing warnings about the session, e.g. the empty-trace
    /// diagnosis (events were inspected but the filter admitted none).
    pub notes: Vec<String>,
    /// Every alert the live diagnosis engine raised (empty when
    /// [`crate::TracerConfig::diagnose`] was not enabled).
    pub alerts: Vec<Alert>,
    /// Live-diagnosis engine counters, when diagnosis was enabled.
    pub diagnosis: Option<EngineStats>,
    /// Final directly-follows-graph snapshot, when profiling was enabled
    /// (see [`crate::TracerConfig::profile`]); sealed at shutdown.
    pub dfg: Option<dio_profile::DfgSnapshot>,
}

impl TraceSummary {
    /// Fraction of captured events that were dropped before reaching the
    /// backend (the §III-D metric: 3.5% for the paper's RocksDB run).
    pub fn drop_rate(&self) -> f64 {
        let total = self.events_stored + self.events_dropped;
        if total == 0 {
            0.0
        } else {
            self.events_dropped as f64 / total as f64
        }
    }
}

/// A live tracing session.
///
/// Construction attaches the kernel-side program and starts two user-space
/// threads mirroring DIO's pipeline:
///
/// 1. the **consumer**, which drains the per-CPU ring buffers and parses
///    raw records into JSON events, and
/// 2. the **shipper**, which groups events into batches and bulk-indexes
///    them at the backend,
///
/// so the only work on the traced application's critical path is the
/// kernel-side filter/enrich/push (§II "Asynchronous event handling").
///
/// # Examples
///
/// ```
/// use dio_backend::DocStore;
/// use dio_kernel::Kernel;
/// use dio_tracer::{Tracer, TracerConfig};
///
/// let kernel = Kernel::new();
/// let backend = DocStore::new();
/// let tracer = Tracer::attach(TracerConfig::new("demo"), &kernel, backend.clone());
///
/// let t = kernel.spawn_process("app").spawn_thread("app");
/// t.creat("/f", 0o644)?;
///
/// let summary = tracer.stop();
/// assert_eq!(summary.events_stored, 1);
/// assert_eq!(backend.index("dio-demo").len(), 1);
/// # Ok::<(), dio_kernel::Errno>(())
/// ```
pub struct Tracer {
    session: String,
    index_name: String,
    kernel: Kernel,
    probe_id: ProbeId,
    program: Arc<TracerProgram>,
    stop_flag: Arc<AtomicBool>,
    consumer: Option<JoinHandle<()>>,
    shipper: Option<JoinHandle<()>>,
    stored: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
    registry: Arc<MetricsRegistry>,
    spans: Arc<SpanCollector>,
    exporter: Option<ExporterHandle>,
    engine: Option<Arc<DiagnosisEngine>>,
    /// The streaming DFG miner, when [`TracerConfig::profile`] enabled it.
    profiler: Option<Arc<DfgMiner>>,
    /// Destination for alert documents raised after the consumer exits
    /// (the engine's end-of-stream pass during shutdown).
    alert_sink: Option<AlertSink>,
    /// Destination for the profiler's final phase documents at shutdown.
    phase_sink: Option<AlertSink>,
    /// The store every pipeline stage ships into; flushed at shutdown so
    /// session close is a durability point for persistent backends.
    backend: DocStore,
    /// The session's causal root span in the flight recorder: every
    /// shipped batch parents to it, so one session is one trace.
    session_span: Option<trace::ManualSpan>,
}

/// Destination for live alert documents (the session's telemetry index).
#[derive(Clone)]
struct AlertSink {
    backend: DocStore,
    telemetry_index: String,
    session: String,
}

impl AlertSink {
    /// Bulk-indexes alerts as `kind: "alert"` documents.
    fn ship(&self, alerts: &[Alert]) {
        if alerts.is_empty() {
            return;
        }
        let docs = alerts
            .iter()
            .map(|a| {
                let mut doc = a.to_document();
                doc["session"] = json!(self.session);
                doc
            })
            .collect();
        self.backend.bulk(&self.telemetry_index, docs);
    }

    /// Bulk-indexes already-typed documents (e.g. the profiler's
    /// `kind: "phase"` documents), stamped with the session name.
    fn ship_docs(&self, mut docs: Vec<Value>) {
        if docs.is_empty() {
            return;
        }
        for doc in docs.iter_mut() {
            doc["session"] = json!(self.session);
        }
        self.backend.bulk(&self.telemetry_index, docs);
    }
}

/// In-process feed from the consumer thread to the diagnosis engine.
struct DiagnoseTap {
    engine: Arc<DiagnosisEngine>,
    /// `None` while telemetry is disabled (no telemetry index exists, so
    /// alerts stay queryable on the engine only).
    sink: Option<AlertSink>,
    channel_capacity: f64,
}

/// In-process feed from the consumer thread to the DFG profiler.
struct ProfileTap {
    miner: Arc<DfgMiner>,
    /// Ships `kind: "phase"` documents; `None` while telemetry is off.
    sink: Option<AlertSink>,
    channel_capacity: f64,
}

/// One parsed event in flight between consumer and shipper: the backend
/// document plus its span stamps (which must survive until bulk-index).
struct ShipItem {
    doc: Value,
    stamps: StageStamps,
}

/// Telemetry handles for the consumer thread.
struct ConsumerTelemetry {
    drain_batch: Arc<Histogram>,
    parse_ns: Arc<Histogram>,
    channel_depth: Arc<Gauge>,
}

/// Telemetry handles for the shipper thread.
struct ShipperTelemetry {
    batch_ns: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("session", &self.session)
            .field("stored", &self.stored.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// Attaches the tracer to `kernel` and starts the pipeline into
    /// `backend`.
    ///
    /// # Panics
    ///
    /// Panics with the verifier's diagnostics when the configuration's
    /// filter is statically rejected (see [`Tracer::try_attach`] for the
    /// non-panicking form).
    pub fn attach(config: TracerConfig, kernel: &Kernel, backend: DocStore) -> Tracer {
        match Self::try_attach(config, kernel, backend) {
            Ok(tracer) => tracer,
            Err(err) => panic!("{err}"),
        }
    }

    /// Attaches the tracer after statically verifying the configuration.
    ///
    /// This is the load-time gate of DESIGN.md §9: the filter is analyzed
    /// by `dio-verify` — and every configured `dio-rules` file by the
    /// rule verifier — before any tracepoint is enabled, so a spec that
    /// provably traces nothing (or costs unbounded per-event work, or a
    /// rule that provably never fires) is rejected here instead of
    /// producing a silently empty session.
    ///
    /// # Errors
    ///
    /// Returns the [`AttachError`] naming each violated filter rule or
    /// the rule-file diagnostics.
    pub fn try_attach(
        config: TracerConfig,
        kernel: &Kernel,
        backend: DocStore,
    ) -> Result<Tracer, AttachError> {
        // Rule files gate attach exactly like the filter does: reject
        // before any tracepoint or ring buffer exists.
        let rule_sets = config
            .rule_sources()
            .iter()
            .enumerate()
            .map(|(index, src)| {
                dio_rules::compile(src).map_err(|error| AttachError::Rules { index, error })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ring = Arc::new(RingBuffer::new(kernel.num_cpus(), config.ring_config()));
        let (enter_cost_ns, exit_cost_ns) = config.costs();
        let program = TracerProgram::new(
            ProgramConfig {
                filter: config.filter_spec().clone(),
                enrich: config.enrich_enabled(),
                capture_paths: true,
                enter_cost_ns,
                exit_cost_ns,
                join_capacity: 65_536,
            },
            Arc::clone(&ring),
        )?;
        let probe_id = kernel.tracepoints().attach(Arc::clone(&program) as Arc<dyn SyscallProbe>);

        // Self-telemetry: one registry per session, shared by every pipeline
        // stage. Binding is done before the worker threads start so no
        // increment is lost.
        let registry = Arc::new(MetricsRegistry::new());
        kernel.bind_telemetry(&registry);
        program.bind_telemetry(&registry);
        backend.bind_telemetry(&registry);
        let spans = SpanCollector::new(&registry, config.span_sampling());
        program.bind_spans(Arc::clone(&spans));

        // Live diagnosis (off by default): the consumer thread taps every
        // parsed batch into the engine, so alerts rise while the trace
        // runs — no backend round-trip involved. Configured rules imply
        // diagnosis even without an explicit DiagnoseConfig; rule sets
        // install before telemetry binds so their per-rule counters
        // (`diagnose.rule.*`) register with the session registry.
        let diagnose_config = config
            .diagnose_config()
            .or_else(|| (!rule_sets.is_empty()).then(dio_diagnose::DiagnoseConfig::default));
        let engine = diagnose_config.map(|diagnose| {
            let engine = DiagnosisEngine::new(diagnose);
            for set in rule_sets {
                engine.install_detector(Box::new(set));
            }
            engine.bind_telemetry(&registry);
            engine
        });
        let telemetry_sink = config.telemetry_enabled().then(|| AlertSink {
            backend: backend.clone(),
            telemetry_index: config.telemetry_index_name(),
            session: config.session().to_string(),
        });
        let alert_sink = engine.as_ref().and_then(|_| telemetry_sink.clone());

        // Streaming DFG profiling (off by default): the consumer feeds the
        // miner the same parsed batches at the same pressure signal the
        // diagnosis tap sees. With diagnosis also on, the miner becomes the
        // engine's attributor: each committed alert (built-in, or a rule
        // with `attribution on`) gets the critical directly-follows edge
        // over its window plus the overlapping flight-recorder spans.
        let profiler = config.profile_config().map(|profile| {
            let miner = DfgMiner::new(profile);
            miner.bind_telemetry(&registry);
            miner
        });
        if let (Some(engine), Some(miner)) = (&engine, &profiler) {
            let miner = Arc::clone(miner);
            engine.set_attributor(Box::new(move |alert| {
                let spans = trace::recorder().snapshot();
                miner.attribute(
                    alert.window_start_ns,
                    alert.window_end_ns,
                    alert.time_ns,
                    &alert.subject,
                    &spans,
                )
            }));
        }
        let phase_sink = profiler.as_ref().and_then(|_| telemetry_sink.clone());

        // The session's root span: batches shipped on the shipper thread
        // parent to it via its SpanCtx, so the flight recorder sees one
        // causal tree per session.
        let mut session_span = trace::begin_manual("session", "session", None);
        session_span.attr("sid", trace::fnv64(config.session()));
        let session_ctx = session_span.ctx();

        let stop_flag = Arc::new(AtomicBool::new(false));
        let stored = Arc::new(AtomicU64::new(0));
        let batches = Arc::new(AtomicU64::new(0));
        // A deep channel so the consumer rarely blocks on the shipper.
        let (tx, rx) = bounded::<ShipItem>(config.batch() * 64);

        let consumer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop_flag);
            let session = config.session().to_string();
            let drain_batch = config.drain();
            let poll = config.poll();
            let spans = Arc::clone(&spans);
            let tap = engine.as_ref().map(|engine| DiagnoseTap {
                engine: Arc::clone(engine),
                sink: alert_sink.clone(),
                channel_capacity: (config.batch() * 64).max(1) as f64,
            });
            let profile_tap = profiler.as_ref().map(|miner| ProfileTap {
                miner: Arc::clone(miner),
                sink: phase_sink.clone(),
                channel_capacity: (config.batch() * 64).max(1) as f64,
            });
            let telemetry = ConsumerTelemetry {
                drain_batch: registry.histogram("tracer.consumer.drain_batch"),
                parse_ns: registry.histogram("tracer.consumer.parse_ns"),
                channel_depth: registry.gauge("tracer.channel.depth"),
            };
            std::thread::Builder::new()
                .name(format!("dio-consumer-{session}"))
                .spawn(move || {
                    consumer_loop(
                        &ring,
                        &stop,
                        &session,
                        &tx,
                        drain_batch,
                        poll,
                        &spans,
                        &telemetry,
                        tap.as_ref(),
                        profile_tap.as_ref(),
                    )
                })
                .expect("spawn consumer thread")
        };
        let shipper = {
            let backend = backend.clone();
            let index_name = config.index_name();
            let batch_size = config.batch();
            let flush = config.flush();
            let stored = Arc::clone(&stored);
            let batches = Arc::clone(&batches);
            // Sampled full-span documents only ship while the telemetry
            // index is in use; with telemetry off, no index is created.
            let span_sink = config.telemetry_enabled().then(|| SpanSink {
                session: config.session().to_string(),
                telemetry_index: config.telemetry_index_name(),
            });
            let spans = Arc::clone(&spans);
            let telemetry = ShipperTelemetry {
                batch_ns: registry.histogram("tracer.shipper.batch_ns"),
                batch_size: registry.histogram("tracer.shipper.batch_size"),
            };
            // batch_ns carries metric→trace exemplars so OpenMetrics
            // scrapes can link latency buckets to flight-recorder spans.
            telemetry.batch_ns.enable_exemplars();
            std::thread::Builder::new()
                .name(format!("dio-shipper-{}", config.session()))
                .spawn(move || {
                    let ctx = ShipperCtx {
                        backend,
                        index_name,
                        batch_size,
                        flush_interval: flush,
                        stored,
                        batches,
                        spans,
                        span_sink,
                        telemetry,
                        session_ctx,
                    };
                    shipper_loop(&ctx, &rx)
                })
                .expect("spawn shipper thread")
        };

        let exporter = config.telemetry_enabled().then(|| {
            let sink_backend = backend.clone();
            let telemetry_index = config.telemetry_index_name();
            let lag_spans = Arc::clone(&spans);
            Exporter::new(config.session(), config.telemetry_tick()).spawn(
                Arc::clone(&registry),
                // Recompute the lag watermark right before each export so
                // the shipped gauge is current, not last-event stale.
                move |_| {
                    lag_spans.refresh_lag();
                },
                move |mut docs| {
                    // Persistent stores ride a `kind: "storage"` report
                    // along with every health round, stamped with the
                    // round's seq/time so the dashboard can align them.
                    if let Some(report) = sink_backend.storage_report() {
                        let mut doc = report.to_document();
                        if let Some(first) = docs.first() {
                            doc["session"] = first["session"].clone();
                            doc["seq"] = first["seq"].clone();
                            doc["time"] = first["time"].clone();
                        }
                        docs.push(doc);
                    }
                    sink_backend.bulk(&telemetry_index, docs);
                },
            )
        });

        Ok(Tracer {
            session: config.session().to_string(),
            index_name: config.index_name(),
            kernel: kernel.clone(),
            probe_id,
            program,
            stop_flag,
            consumer: Some(consumer),
            shipper: Some(shipper),
            stored,
            batches,
            registry,
            spans,
            exporter,
            engine,
            profiler,
            alert_sink,
            phase_sink,
            backend: backend.clone(),
            session_span: Some(session_span),
        })
    }

    /// The session name.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// The backend index this tracer writes to.
    pub fn index_name(&self) -> &str {
        &self.index_name
    }

    /// Live ring-buffer counters.
    pub fn ring_stats(&self) -> RingStats {
        self.program.ring().stats()
    }

    /// Events stored at the backend so far.
    pub fn events_stored(&self) -> u64 {
        self.stored.load(Ordering::Relaxed)
    }

    /// The session's metrics registry.
    ///
    /// Components outside the tracer pipeline (e.g. the `dio-lsmkv` store's
    /// `Db::bind_telemetry`) can register their own metrics here so they
    /// ride along in the same health documents.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// A live snapshot of every pipeline metric (the lag watermark gauge
    /// is recomputed first, so it reflects now rather than the last tick).
    pub fn health_snapshot(&self) -> TelemetrySnapshot {
        self.spans.refresh_lag();
        self.registry.snapshot()
    }

    /// Live span-derived statistics (per-stage/e2e latency percentiles,
    /// lag watermark, drop attribution).
    pub fn span_summary(&self) -> SpanSummary {
        self.spans.summary()
    }

    /// The live diagnosis engine, when [`crate::TracerConfig::diagnose`]
    /// enabled it — poll [`DiagnosisEngine::alerts`] /
    /// [`DiagnosisEngine::active_alerts`] for verdicts *during* the trace.
    pub fn diagnosis(&self) -> Option<Arc<DiagnosisEngine>> {
        self.engine.clone()
    }

    /// The streaming DFG miner, when [`crate::TracerConfig::profile`]
    /// enabled it — poll [`DfgMiner::snapshot`] for the graphs *during*
    /// the trace, or keep the `Arc` across [`Tracer::stop`] for the final
    /// (sealed) state.
    pub fn profiler(&self) -> Option<Arc<DfgMiner>> {
        self.profiler.clone()
    }

    /// Detaches from the kernel, drains every buffered event, flushes the
    /// last batch, and returns the session summary.
    pub fn stop(mut self) -> TraceSummary {
        self.shutdown()
    }

    fn shutdown(&mut self) -> TraceSummary {
        let first_shutdown = self.consumer.is_some();
        if self.consumer.is_some() {
            self.kernel.tracepoints().detach(self.probe_id);
            self.stop_flag.store(true, Ordering::Release);
            if let Some(h) = self.consumer.take() {
                let _ = h.join();
            }
            if let Some(h) = self.shipper.take() {
                let _ = h.join();
            }
        }
        let ring = self.program.ring().stats();
        let prog = self.program.stats();
        let mut notes = Vec::new();
        // Empty-trace diagnosis: the filter inspected events but admitted
        // none. The verifier rejects specs where this is statically
        // certain; this catches the runtime-contingent cases (wrong pid,
        // path nobody touched, ...). Counted before the exporter's final
        // flush so the warning ships with the session's health documents.
        if first_shutdown && prog.admitted == 0 && prog.filtered > 0 {
            self.registry.counter("tracer.warn.empty_trace").inc();
            notes.push(format!(
                "empty trace: filter inspected {} event(s) and admitted none — \
                 the spec is satisfiable but matched nothing at runtime",
                prog.filtered
            ));
        }
        // Seal the profiler first: the engine's end-of-stream pass below
        // may raise final alerts, and their attribution should see the
        // completed transition ring and final phase window.
        if let Some(miner) = &self.profiler {
            miner.finish();
            if let Some(sink) = &self.phase_sink {
                sink.ship_docs(miner.drain_phase_docs());
            }
        }
        // End-of-stream diagnosis pass: seal every open window and ship
        // the final alerts before the exporter's last flush, so the
        // `diagnose.*` counters in the shipped health documents are final.
        let (alerts, diagnosis) = match &self.engine {
            Some(engine) => {
                engine.finish();
                if let Some(sink) = &self.alert_sink {
                    sink.ship(&engine.drain_unshipped());
                }
                (engine.alerts(), Some(engine.stats()))
            }
            None => (Vec::new(), None),
        };
        // Stop the exporter only after the pipeline has drained, so its
        // final flush ships the end state of every metric.
        if let Some(exporter) = self.exporter.take() {
            exporter.stop();
        }
        // Session close is a durability point: everything the pipeline
        // shipped — events, health documents, final alerts — is fsynced
        // before the summary is handed back. A no-op for in-memory stores.
        match self.session_span.take() {
            Some(mut session_span) => {
                {
                    let _flush_span =
                        trace::span_child_of(Some(session_span.ctx()), "storage", "storage.flush");
                    let _ = self.backend.flush();
                }
                session_span.attr("events", self.stored.load(Ordering::Relaxed));
                session_span.attr("batches", self.batches.load(Ordering::Relaxed));
                session_span.finish();
            }
            None => {
                let _ = self.backend.flush();
            }
        }
        // Summarize spans first: it refreshes the lag gauges, so the
        // health snapshot below carries the final (drained = 0) lag.
        let spans = self.spans.summary();
        TraceSummary {
            session: self.session.clone(),
            index_name: self.index_name.clone(),
            events_stored: self.stored.load(Ordering::Relaxed),
            events_dropped: ring.dropped,
            events_filtered: prog.filtered,
            batches: self.batches.load(Ordering::Relaxed),
            health: self.registry.snapshot(),
            spans,
            notes,
            alerts,
            diagnosis,
            dfg: self.profiler.as_ref().map(|m| m.snapshot()),
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Never fails: detach and stop threads if `stop` was not called.
        let _ = self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn consumer_loop(
    ring: &RingBuffer<RawEvent>,
    stop: &AtomicBool,
    session: &str,
    tx: &Sender<ShipItem>,
    drain_batch: usize,
    poll: Duration,
    spans: &SpanCollector,
    telemetry: &ConsumerTelemetry,
    tap: Option<&DiagnoseTap>,
    profile: Option<&ProfileTap>,
) {
    loop {
        // Sample the fill level before draining: post-drain occupancy is
        // flattered by the drain itself and would hide the very pressure
        // the diagnosis tap must degrade under.
        let pre_drain_pressure = ring.fill_fraction();
        let raws = ring.drain_all_stamped(drain_batch);
        let drained = raws.len();
        if raws.is_empty() && stop.load(Ordering::Acquire) && ring.is_empty() {
            break;
        }
        if drained > 0 {
            telemetry.drain_batch.record(drained as u64);
        }
        let mut tap_docs: Vec<Value> = Vec::new();
        for raw in raws {
            let mut stamps = raw.stamps;
            let parse_timer = telemetry.parse_ns.start_timer();
            let doc = raw.into_event(session).to_document();
            parse_timer.observe();
            stamps.stamp_now(Stage::Parse);
            let pre_enqueue = stamps;
            stamps.stamp_now(Stage::BatchEnqueue);
            if tap.is_some() || profile.is_some() {
                tap_docs.push(doc.clone());
            }
            if tx.send(ShipItem { doc, stamps }).is_err() {
                // Shipper gone: the event never cleared the batch_enqueue
                // hand-off — attribute the drop there.
                spans.record_drop(&pre_enqueue);
                return;
            }
        }
        // The profiler observes *before* the engine: an alert raised by
        // this very batch is attributed against a transition ring that
        // already includes the batch's syscalls.
        if let Some(profile) = profile {
            if !tap_docs.is_empty() {
                let pressure = pre_drain_pressure.max(tx.len() as f64 / profile.channel_capacity);
                profile.miner.observe_batch_with_pressure(&tap_docs, pressure);
                if let Some(sink) = &profile.sink {
                    sink.ship_docs(profile.miner.drain_phase_docs());
                }
            }
        }
        if let Some(tap) = tap {
            if !tap_docs.is_empty() {
                // Pressure is the worse of the two queues flanking this
                // thread; past the engine's threshold it evaluates a
                // sample instead of every event, so diagnosis sheds load
                // rather than slowing the drain (and growing the drops it
                // exists to observe).
                let pressure = pre_drain_pressure.max(tx.len() as f64 / tap.channel_capacity);
                let fresh = tap.engine.observe_batch_with_pressure(&tap_docs, pressure);
                if let Some(sink) = &tap.sink {
                    sink.ship(&fresh);
                }
            }
        }
        telemetry.channel_depth.set(tx.len() as u64);
        // A paced consumer sleeps even when the buffer has more to give —
        // this is what lets a small ring overflow under bursts, as the
        // paper's user-space consumers do at 549M-event scale.
        if drained < drain_batch || !poll.is_zero() {
            if stop.load(Ordering::Acquire) {
                continue; // drain as fast as possible during shutdown
            }
            std::thread::sleep(poll.max(Duration::from_micros(50)));
        }
    }
    // Dropping tx closes the channel; the shipper flushes and exits.
}

/// Destination for sampled full-span documents (present only while the
/// telemetry exporter is enabled, so telemetry-off sessions create no
/// `dio-telemetry-*` index).
struct SpanSink {
    session: String,
    telemetry_index: String,
}

/// Everything the shipper thread needs, bundled to keep the loop readable.
struct ShipperCtx {
    backend: DocStore,
    index_name: String,
    batch_size: usize,
    flush_interval: Duration,
    stored: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
    spans: Arc<SpanCollector>,
    span_sink: Option<SpanSink>,
    telemetry: ShipperTelemetry,
    /// The session root span's coordinates: each shipped batch opens a
    /// `ship.batch` child of it (cross-thread parenting).
    session_ctx: trace::SpanCtx,
}

fn shipper_loop(ctx: &ShipperCtx, rx: &Receiver<ShipItem>) {
    let mut batch: Vec<ShipItem> = Vec::with_capacity(ctx.batch_size);
    let mut last_flush = Instant::now();
    loop {
        match rx.recv_timeout(ctx.flush_interval) {
            Ok(item) => {
                batch.push(item);
                if batch.len() >= ctx.batch_size {
                    flush_batch(ctx, &mut batch);
                    last_flush = Instant::now();
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if !batch.is_empty() && last_flush.elapsed() >= ctx.flush_interval {
                    flush_batch(ctx, &mut batch);
                    last_flush = Instant::now();
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                flush_batch(ctx, &mut batch);
                return;
            }
        }
    }
}

fn flush_batch(ctx: &ShipperCtx, batch: &mut Vec<ShipItem>) {
    if batch.is_empty() {
        return;
    }
    let n = batch.len() as u64;
    ctx.telemetry.batch_size.record(n);
    let mut docs = Vec::with_capacity(batch.len());
    let mut stamps = Vec::with_capacity(batch.len());
    for item in batch.drain(..) {
        docs.push(item.doc);
        stamps.push(item.stamps);
    }
    let batch_start = Instant::now();
    {
        // The causal chain of one shipped batch: ship.batch →
        // backend.bulk → storage.append → storage.fsync, all nested via
        // the shipper thread's span stack.
        let mut ship_span = trace::span_child_of(Some(ctx.session_ctx), "ship", "ship.batch");
        ship_span.attr("docs", n);
        ctx.backend.bulk_spans(&ctx.index_name, docs, &mut stamps);
    }
    // Recorded with the session trace id as an exemplar: a `/metrics`
    // scrape can jump from a slow batch_ns bucket straight to this
    // session's span tree in the flight-recorder dump.
    ctx.telemetry
        .batch_ns
        .record_with_exemplar(batch_start.elapsed().as_nanos() as u64, ctx.session_ctx.trace_id);
    ctx.stored.fetch_add(n, Ordering::Relaxed);
    ctx.batches.fetch_add(1, Ordering::Relaxed);
    // Every stamp record now carries its bulk-index time: feed the span
    // histograms and ship the sampled full-span documents for post-hoc
    // queries. Span documents carry no `metric` field, so health-report
    // readers of the telemetry index skip them.
    let mut sampled = Vec::new();
    for st in &stamps {
        if ctx.spans.record_shipped(st) {
            if let Some(sink) = &ctx.span_sink {
                let mut doc = st.to_document();
                doc["session"] = json!(sink.session);
                doc["kind"] = json!("span");
                sampled.push(doc);
            }
        }
    }
    if let Some(sink) = &ctx.span_sink {
        if !sampled.is_empty() {
            ctx.backend.bulk(&sink.telemetry_index, sampled);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_backend::Query;
    use dio_kernel::{DiskProfile, OpenFlags};
    use dio_syscall::SyscallKind;

    fn kernel() -> Kernel {
        Kernel::builder().root_disk(DiskProfile::instant()).build()
    }

    #[test]
    fn end_to_end_trace_to_backend() {
        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(TracerConfig::new("e2e"), &k, backend.clone());
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"abcdefghijklmnopqrstuvwxyz").unwrap();
        t.close(fd).unwrap();
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 3);
        assert_eq!(summary.events_dropped, 0);
        assert_eq!(summary.drop_rate(), 0.0);

        let idx = backend.index("dio-e2e");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.count(&Query::term("syscall", "write")), 1);
        assert_eq!(idx.count(&Query::term("proc_name", "app")), 3);
        let hit =
            &idx.search(&dio_backend::SearchRequest::new(Query::term("syscall", "write"))).hits[0];
        assert_eq!(hit.source["ret_val"], 26);
        assert_eq!(hit.source["offset"], 0);
        assert!(hit.source["file_tag"].as_str().unwrap().contains('|'));
    }

    #[test]
    fn filtered_sessions_store_only_matching() {
        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(
            TracerConfig::new("filtered").syscalls([SyscallKind::Write]),
            &k,
            backend.clone(),
        );
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/f", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"1").unwrap();
        t.write(fd, b"2").unwrap();
        t.close(fd).unwrap();
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 2);
        assert_eq!(backend.index("dio-filtered").count(&Query::term("syscall", "write")), 2);
    }

    #[test]
    fn stop_drains_pending_events() {
        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(
            TracerConfig::new("drain").batch_size(10_000).flush_interval(Duration::from_secs(60)),
            &k,
            backend.clone(),
        );
        let t = k.spawn_process("app").spawn_thread("app");
        for i in 0..50 {
            t.creat(&format!("/f{i}"), 0o644).unwrap();
        }
        // Neither batch size nor interval reached — stop must flush anyway.
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 50);
        assert_eq!(backend.index("dio-drain").len(), 50);
    }

    #[test]
    fn stop_is_a_durability_point_for_persistent_backends() {
        let dir = std::env::temp_dir().join(format!("dio-tracer-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let k = kernel();
            let backend = DocStore::open(&dir).expect("open persistent store");
            let tracer = Tracer::attach(TracerConfig::new("durable"), &k, backend.clone());
            let t = k.spawn_process("app").spawn_thread("app");
            for i in 0..8 {
                t.creat(&format!("/d{i}"), 0o644).unwrap();
            }
            let summary = tracer.stop();
            assert_eq!(summary.events_stored, 8);
        }
        // A fresh process (here: a fresh store over the same directory)
        // sees everything the stopped session shipped.
        let reopened = DocStore::open(&dir).expect("reopen");
        assert_eq!(reopened.index("dio-durable").len(), 8);
        assert_eq!(reopened.index("dio-durable").count(&Query::term("syscall", "creat")), 8);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_sessions_coexist() {
        let k = kernel();
        let backend = DocStore::new();
        let t1 = Tracer::attach(TracerConfig::new("s1"), &k, backend.clone());
        let t2 = Tracer::attach(TracerConfig::new("s2"), &k, backend.clone());
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/x", 0o644).unwrap();
        let s1 = t1.stop();
        let s2 = t2.stop();
        assert_eq!(s1.events_stored, 1);
        assert_eq!(s2.events_stored, 1);
        assert_eq!(
            backend.index_names(),
            vec![
                "dio-s1".to_string(),
                "dio-s2".to_string(),
                "dio-telemetry-s1".to_string(),
                "dio-telemetry-s2".to_string(),
            ]
        );
    }

    #[test]
    fn drop_detaches_cleanly() {
        let k = kernel();
        let backend = DocStore::new();
        {
            let _tracer = Tracer::attach(TracerConfig::new("dropped"), &k, backend.clone());
        }
        // After drop, syscalls are no longer traced.
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/after", 0o644).unwrap();
        assert!(!k.tracepoints().is_traced(SyscallKind::Creat));
        assert_eq!(backend.index("dio-dropped").count(&Query::term("args.path", "/after")), 0);
    }

    #[test]
    fn summary_exposes_span_latencies_and_samples_span_docs() {
        let k = kernel();
        let backend = DocStore::new();
        let tracer =
            Tracer::attach(TracerConfig::new("spans").span_sample_every(1), &k, backend.clone());
        let t = k.spawn_process("app").spawn_thread("app");
        for i in 0..10 {
            t.creat(&format!("/s{i}"), 0o644).unwrap();
        }
        let summary = tracer.stop();
        assert_eq!(summary.spans.completed, 10);
        assert_eq!(summary.spans.dropped, 0);
        assert_eq!(summary.spans.e2e.count, 10, "every stored event has an e2e span");
        assert!(summary.spans.e2e.max > 0);
        assert!(summary.spans.e2e.p50 <= summary.spans.e2e.p99);
        for name in SpanSummary::transition_names() {
            let stage = summary.spans.stage(name).unwrap_or_else(|| panic!("stage {name}"));
            assert_eq!(stage.count, 10, "all 10 events crossed {name}");
        }
        assert_eq!(summary.spans.lag_watermark_ns, 0, "drained at shutdown");
        assert!(summary.spans.drops_by_stage.is_empty());
        // 1-in-1 sampling: a full-span document per event in the
        // telemetry index, each with stamps, transitions, and e2e.
        let idx = backend.index("dio-telemetry-spans");
        let span_docs = idx.count(&Query::term("kind", "span"));
        assert_eq!(span_docs, 10);
        // And the health gauge rode along via the exporter's final flush.
        assert!(summary.health.gauges.contains_key("span.lag.watermark_ns"));
    }

    #[test]
    fn try_attach_rejects_unsatisfiable_configs() {
        let k = kernel();
        let backend = DocStore::new();
        let err = Tracer::try_attach(TracerConfig::new("bad").syscalls([]), &k, backend.clone())
            .unwrap_err();
        assert!(err.violates(dio_verify::Rule::EmptySyscallSet));
        // Nothing was attached: syscalls run untraced.
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/x", 0o644).unwrap();
        assert!(!k.tracepoints().is_traced(SyscallKind::Creat));
        assert!(backend.index_names().is_empty());
        // A sound config still attaches through the same path.
        let tracer = Tracer::try_attach(TracerConfig::new("ok"), &k, backend).unwrap();
        t.creat("/y", 0o644).unwrap();
        assert_eq!(tracer.stop().events_stored, 1);
    }

    #[test]
    #[should_panic(expected = "empty-pid-set")]
    fn attach_panics_with_diagnostics_on_rejected_spec() {
        let k = kernel();
        let _ = Tracer::attach(TracerConfig::new("boom").pids([]), &k, DocStore::new());
    }

    #[test]
    fn empty_trace_session_is_flagged() {
        let k = kernel();
        let backend = DocStore::new();
        // Pid 9999 is satisfiable in general but matches no live process.
        let tracer = Tracer::attach(
            TracerConfig::new("empty").pids([dio_syscall::Pid(9_999)]),
            &k,
            backend.clone(),
        );
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/f", 0o644).unwrap();
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 0);
        assert_eq!(summary.events_filtered, 1);
        assert_eq!(summary.notes.len(), 1, "summary carries the empty-trace note");
        assert!(summary.notes[0].contains("empty trace"), "note: {}", summary.notes[0]);
        assert_eq!(summary.health.counters.get("tracer.warn.empty_trace"), Some(&1));
        // The warning also shipped with the final health documents.
        let idx = backend.index("dio-telemetry-empty");
        assert!(
            idx.count(&Query::term("metric", "tracer.warn.empty_trace")) >= 1,
            "warning counter exported to the telemetry index"
        );
    }

    #[test]
    fn sessions_with_events_carry_no_notes() {
        let k = kernel();
        let tracer = Tracer::attach(TracerConfig::new("fine"), &k, DocStore::new());
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/f", 0o644).unwrap();
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 1);
        assert!(summary.notes.is_empty());
        assert!(!summary.health.counters.contains_key("tracer.warn.empty_trace"));
    }

    #[test]
    fn diagnosis_tap_observes_events_while_the_trace_runs() {
        use dio_diagnose::DiagnoseConfig;

        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(
            TracerConfig::new("live").diagnose(DiagnoseConfig::default()),
            &k,
            backend.clone(),
        );
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        t.write(fd, b"hello").unwrap();
        t.close(fd).unwrap();

        let engine = tracer.diagnosis().expect("engine present when configured");
        // The consumer thread feeds the engine asynchronously: the events
        // must arrive while the tracer is still attached.
        for _ in 0..500 {
            if engine.stats().observed >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(engine.stats().observed >= 3, "tap saw events before teardown");

        let summary = tracer.stop();
        let stats = summary.diagnosis.expect("summary carries engine stats");
        assert_eq!(stats.observed, summary.events_stored);
        assert_eq!(stats.evaluated, stats.observed, "no pressure, no sampling");
        assert!(summary.alerts.is_empty(), "healthy workload raises nothing");
    }

    #[test]
    fn sessions_without_diagnose_have_no_engine() {
        let k = kernel();
        let tracer = Tracer::attach(TracerConfig::new("plain"), &k, DocStore::new());
        assert!(tracer.diagnosis().is_none());
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/f", 0o644).unwrap();
        let summary = tracer.stop();
        assert!(summary.diagnosis.is_none());
        assert!(summary.alerts.is_empty());
        assert!(!summary.health.counters.contains_key("diagnose.events.observed"));
    }

    #[test]
    fn try_attach_rejects_bad_rule_files() {
        let k = kernel();
        let backend = DocStore::new();
        // `offset < 0` is provably empty (offset is unsigned): the rule
        // verifier rejects the file at attach time.
        let config = TracerConfig::new("badrules")
            .rules_source("rule dead when offset < 0 then alert(critical, \"never\")");
        let err = Tracer::try_attach(config, &k, backend.clone()).unwrap_err();
        let rules_err = err.rules_error().expect("rules, not the filter, caused the reject");
        match rules_err {
            crate::RuleCompileError::Verify(v) => {
                assert!(v.violates(dio_rules::RuleCheck::UnsatisfiablePredicate))
            }
            other => panic!("expected verify rejection, got {other}"),
        }
        assert!(err.to_string().contains("rule file #0"), "{err}");
        assert!(!err.violates(dio_verify::Rule::EmptySyscallSet));
        // Nothing was attached and no session index exists.
        let t = k.spawn_process("app").spawn_thread("app");
        t.creat("/x", 0o644).unwrap();
        assert!(!k.tracepoints().is_traced(SyscallKind::Creat));
        assert!(backend.index_names().is_empty());
    }

    #[test]
    fn configured_rules_run_live_and_register_counters() {
        let k = kernel();
        let backend = DocStore::new();
        // Rules without an explicit DiagnoseConfig still get an engine;
        // the shipped files ride along and stay quiet on this workload.
        let config = TracerConfig::new("ruled")
            .rules_source(
                "rule every_write when syscall == \"write\" \
                 then alert(info, rule_match, \"write seen\") limit 2",
            )
            .shipped_rules();
        let tracer = Tracer::attach(config, &k, backend);
        assert!(tracer.diagnosis().is_some(), "rules imply live diagnosis");

        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        for _ in 0..3 {
            t.write(fd, b"hello").unwrap();
        }
        t.close(fd).unwrap();
        let summary = tracer.stop();

        // 3 writes, limit 2: two alerts fired, the third suppressed.
        assert_eq!(summary.alerts.len(), 2, "alerts: {:?}", summary.alerts);
        for alert in &summary.alerts {
            assert_eq!(alert.detector, "rules");
            assert_eq!(alert.fields["rule"], json!("every_write"));
        }
        assert_eq!(summary.health.counters.get("diagnose.rule.every_write.fired"), Some(&2));
        assert_eq!(summary.health.counters.get("diagnose.rule.every_write.suppressed"), Some(&1));
        // Shipped rules registered their counters too, without firing.
        assert_eq!(summary.health.counters.get("diagnose.rule.data_loss.fired"), Some(&0));
    }

    #[test]
    fn profile_tap_mines_dfgs_while_the_trace_runs() {
        use dio_profile::ProfileConfig;

        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(
            TracerConfig::new("profiled").profile(ProfileConfig::default()),
            &k,
            backend.clone(),
        );
        let miner = tracer.profiler().expect("profiler present when configured");
        let t = k.spawn_process("app").spawn_thread("app");
        let fd = t.openat("/app.log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        for _ in 0..4 {
            t.write(fd, b"hello").unwrap();
        }
        t.close(fd).unwrap();
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 6);
        // The kept Arc sees the final sealed state: openat→write,
        // write→write, write→close all mined on the consumer thread.
        let snap = miner.snapshot();
        assert_eq!(snap.events, 6);
        assert_eq!(snap.transitions, 5);
        let labels: Vec<String> = snap.global.edges.iter().map(|e| e.label()).collect();
        assert!(labels.contains(&"write->write".to_string()), "edges: {labels:?}");
        assert!(labels.contains(&"write->close".to_string()), "edges: {labels:?}");
        // Miner telemetry rode the session registry into the summary.
        assert_eq!(summary.health.counters.get("dfg.transitions"), Some(&5));
        // No profile config → no miner.
        let bare = Tracer::attach(TracerConfig::new("bare"), &k, DocStore::new());
        assert!(bare.profiler().is_none());
    }

    #[test]
    fn alerts_carry_dfg_attribution_when_profiling_is_on() {
        use dio_diagnose::DiagnoseConfig;
        use dio_profile::ProfileConfig;

        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(
            TracerConfig::new("attributed")
                .diagnose(DiagnoseConfig::default())
                .profile(ProfileConfig::default()),
            &k,
            backend.clone(),
        );
        // The Fig. 2 data-loss shape: a reader resumes a recreated file
        // from a stale offset and reads 0 bytes.
        let writer = k.spawn_process("app").spawn_thread("app");
        let reader = k.spawn_process("fluent-bit").spawn_thread("fluent-bit");
        let fd = writer.openat("/log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        writer.write(fd, b"abcdefghijklmnopqrstuvwxyz").unwrap();
        let rfd = reader.openat("/log", OpenFlags::RDONLY, 0).unwrap();
        let mut buf = [0u8; 26];
        reader.read(rfd, &mut buf).unwrap();
        writer.close(fd).unwrap();
        reader.close(rfd).unwrap();
        writer.unlink("/log").unwrap();
        let fd2 = writer.openat("/log", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        writer.write(fd2, b"0123456789").unwrap();
        let rfd2 = reader.openat("/log", OpenFlags::RDONLY, 0).unwrap();
        reader.pread64(rfd2, &mut buf, 26).unwrap();
        let summary = tracer.stop();

        let loss = summary
            .alerts
            .iter()
            .find(|a| a.kind == dio_diagnose::AlertKind::DataLoss)
            .expect("data-loss alert raised");
        let attribution = loss.attribution.as_ref().expect("alert carries attribution");
        let edge = attribution["edge"].as_str().unwrap();
        assert!(edge.contains("->"), "critical edge names a transition: {edge}");
        assert!(attribution["transitions"].as_u64().unwrap() >= 1);
        // The decoration rode the shipped alert document too.
        let idx = backend.index("dio-telemetry-attributed");
        let hits = idx.search(&dio_backend::SearchRequest::new(Query::term("kind", "alert")));
        let shipped = hits
            .hits
            .iter()
            .find(|h| h.source["alert_kind"] == "data_loss")
            .expect("alert document shipped");
        assert_eq!(shipped.source["attribution"]["edge"], json!(edge));
    }

    #[test]
    fn batching_respects_batch_size() {
        let k = kernel();
        let backend = DocStore::new();
        let tracer = Tracer::attach(TracerConfig::new("batches").batch_size(5), &k, backend);
        let t = k.spawn_process("app").spawn_thread("app");
        for i in 0..20 {
            t.creat(&format!("/b{i}"), 0o644).unwrap();
        }
        let summary = tracer.stop();
        assert_eq!(summary.events_stored, 20);
        assert!(summary.batches >= 4, "expected >=4 batches, got {}", summary.batches);
    }
}
