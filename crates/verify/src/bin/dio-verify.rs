//! `dio-verify` — static analysis CLI for the DIO reproduction.
//!
//! ```text
//! dio-verify --check-catalog [--root DIR]   lint the Table I contract across all layers
//! dio-verify --write-docs    [--root DIR]   regenerate the Table I listings in the docs
//! dio-verify --print-table                  print the canonical Table I markdown
//! dio-verify --check-filter FILE            verify a TracerConfig/FilterSpec JSON file
//! ```
//!
//! Exits 0 on success, 1 on findings, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dio_verify::{check_catalog, table1_markdown, verify_filter, write_docs, FilterFacts};

const USAGE: &str = "usage: dio-verify (--check-catalog | --write-docs) [--root DIR]
       dio-verify --print-table
       dio-verify --check-filter FILE";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut filter_file: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check-catalog" | "--write-docs" | "--print-table" => {
                if mode
                    .replace(match arg.as_str() {
                        "--check-catalog" => "catalog",
                        "--write-docs" => "docs",
                        _ => "table",
                    })
                    .is_some()
                {
                    return usage("more than one mode given");
                }
            }
            "--check-filter" => {
                if mode.replace("filter").is_some() {
                    return usage("more than one mode given");
                }
                match it.next() {
                    Some(f) => filter_file = Some(PathBuf::from(f)),
                    None => return usage("--check-filter needs a FILE"),
                }
            }
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a DIR"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    match mode {
        Some("catalog") => {
            let failures = check_catalog(&root);
            if failures.is_empty() {
                println!("dio-verify: catalog OK — 42 syscalls consistent across all layers");
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("{f}");
                }
                eprintln!("dio-verify: {} catalog check(s) failed", failures.len());
                ExitCode::FAILURE
            }
        }
        Some("docs") => match write_docs(&root) {
            Ok(written) => {
                if written.is_empty() {
                    println!("dio-verify: docs already up to date");
                } else {
                    for p in written {
                        println!("dio-verify: rewrote {}", p.display());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dio-verify: {e}");
                ExitCode::FAILURE
            }
        },
        Some("table") => {
            print!("{}", table1_markdown());
            ExitCode::SUCCESS
        }
        Some("filter") => {
            let file = filter_file.expect("set with mode");
            let json = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("dio-verify: cannot read {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            };
            let facts = match FilterFacts::from_config_json(&json) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("dio-verify: {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            };
            let report = verify_filter(&facts);
            for w in report.warnings() {
                eprintln!("{w}");
            }
            match report.into_result() {
                Ok(_) => {
                    println!("dio-verify: filter OK");
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("{err}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage("no mode given"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("dio-verify: {err}\n{USAGE}");
    ExitCode::from(2)
}
