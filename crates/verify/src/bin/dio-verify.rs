//! `dio-verify` — static analysis CLI for the DIO reproduction.
//!
//! ```text
//! dio-verify --check-catalog [--root DIR]   lint the Table I contract across all layers
//! dio-verify --write-docs    [--root DIR]   regenerate the Table I listings in the docs
//! dio-verify --print-table                  print the canonical Table I markdown
//! dio-verify --check-filter FILE            verify a TracerConfig/FilterSpec JSON file
//! dio-verify --check-rules FILE...          statically verify diagnosis rule (.dio) files
//! ```
//!
//! Exits 0 on success, 1 on findings, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dio_verify::{check_catalog, table1_markdown, verify_filter, write_docs, FilterFacts};

const USAGE: &str = "usage: dio-verify (--check-catalog | --write-docs) [--root DIR]
       dio-verify --print-table
       dio-verify --check-filter FILE
       dio-verify --check-rules FILE...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root = PathBuf::from(".");
    let mut filter_file: Option<PathBuf> = None;
    let mut rule_files: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check-catalog" | "--write-docs" | "--print-table" => {
                if mode
                    .replace(match arg.as_str() {
                        "--check-catalog" => "catalog",
                        "--write-docs" => "docs",
                        _ => "table",
                    })
                    .is_some()
                {
                    return usage("more than one mode given");
                }
            }
            "--check-filter" => {
                if mode.replace("filter").is_some() {
                    return usage("more than one mode given");
                }
                match it.next() {
                    Some(f) => filter_file = Some(PathBuf::from(f)),
                    None => return usage("--check-filter needs a FILE"),
                }
            }
            "--check-rules" => {
                if mode.replace("rules").is_some() {
                    return usage("more than one mode given");
                }
            }
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a DIR"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if mode == Some("rules") && !other.starts_with('-') => {
                rule_files.push(PathBuf::from(other));
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    match mode {
        Some("catalog") => {
            let failures = check_catalog(&root);
            if failures.is_empty() {
                println!("dio-verify: catalog OK — 42 syscalls consistent across all layers");
                ExitCode::SUCCESS
            } else {
                for f in &failures {
                    eprintln!("{f}");
                }
                eprintln!("dio-verify: {} catalog check(s) failed", failures.len());
                ExitCode::FAILURE
            }
        }
        Some("docs") => match write_docs(&root) {
            Ok(written) => {
                if written.is_empty() {
                    println!("dio-verify: docs already up to date");
                } else {
                    for p in written {
                        println!("dio-verify: rewrote {}", p.display());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dio-verify: {e}");
                ExitCode::FAILURE
            }
        },
        Some("table") => {
            print!("{}", table1_markdown());
            ExitCode::SUCCESS
        }
        Some("filter") => {
            let file = filter_file.expect("set with mode");
            let json = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("dio-verify: cannot read {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            };
            let facts = match FilterFacts::from_config_json(&json) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("dio-verify: {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            };
            let report = verify_filter(&facts);
            for w in report.warnings() {
                eprintln!("{w}");
            }
            match report.into_result() {
                Ok(_) => {
                    println!("dio-verify: filter OK");
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("{err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("rules") => {
            if rule_files.is_empty() {
                return usage("--check-rules needs at least one FILE");
            }
            let mut findings = 0usize;
            for file in &rule_files {
                let src = match std::fs::read_to_string(file) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("dio-verify: cannot read {}: {e}", file.display());
                        findings += 1;
                        continue;
                    }
                };
                let ast = match dio_rules::parse_rules(&src) {
                    Ok(ast) => ast,
                    Err(e) => {
                        eprintln!("{}: {e}", file.display());
                        findings += 1;
                        continue;
                    }
                };
                let report = dio_rules::verify_rules(&ast);
                for w in report.warnings() {
                    eprintln!("{}: {w}", file.display());
                }
                let errors: Vec<_> = report.errors().collect();
                if errors.is_empty() {
                    println!(
                        "dio-verify: {} OK — {} rule(s) verified",
                        file.display(),
                        ast.rules.len()
                    );
                } else {
                    for e in &errors {
                        eprintln!("{}: {e}", file.display());
                    }
                    findings += errors.len();
                }
            }
            if findings == 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("dio-verify: {findings} rule check(s) failed");
                ExitCode::FAILURE
            }
        }
        _ => usage("no mode given"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("dio-verify: {err}\n{USAGE}");
    ExitCode::from(2)
}
