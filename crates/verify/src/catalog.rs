//! The cross-layer catalog lint: one machine-checked contract for the 42
//! syscalls of Table I.
//!
//! The catalog lives in five places that must agree: the class assignment
//! in `dio-syscall`'s `catalog.rs`, the arg-decoding contract in `args.rs`
//! ([`dio_syscall::expected_args`]), the probe dispatch in
//! `dio-kernel/src/syscalls.rs`, the backend document schema in
//! `event.rs`, and the Table I listings rendered into DESIGN.md/README.
//! [`check_catalog`] cross-checks all five; any drift is reported as a
//! [`LintFailure`] with a diff-style message and fails CI hard
//! (`dio-verify --check-catalog`).

use std::path::{Path, PathBuf};

use dio_syscall::{expected_args, SyscallClass, SyscallEvent, SyscallKind};

/// Marker opening the generated Table I block in DESIGN.md/README.md.
pub const TABLE1_BEGIN: &str = "<!-- dio-verify:table1:begin -->";
/// Marker closing the generated Table I block.
pub const TABLE1_END: &str = "<!-- dio-verify:table1:end -->";

/// Expected per-class census of Table I (class, count).
pub const CLASS_CENSUS: &[(SyscallClass, usize)] = &[
    (SyscallClass::Data, 8),
    (SyscallClass::Metadata, 17),
    (SyscallClass::ExtendedAttributes, 12),
    (SyscallClass::DirectoryManagement, 5),
];

/// Fields `SyscallEvent::to_document` must always emit (the dashboard
/// schema of §II-B).
pub const DOCUMENT_FIELDS: &[&str] = &[
    "session",
    "syscall",
    "class",
    "pid",
    "tid",
    "proc_name",
    "cpu",
    "time",
    "time_exit",
    "latency_ns",
    "ret_val",
    "args",
];

/// One failed catalog check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFailure {
    /// The stable name of the failed check (e.g. `kernel-dispatch`).
    pub check: &'static str,
    /// Diff-style explanation naming the drifted syscall/layer.
    pub message: String,
}

impl std::fmt::Display for LintFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "catalog[{}]: {}", self.check, self.message)
    }
}

/// Renders the canonical Table I listing from [`SyscallKind::ALL`] — the
/// single source of truth the docs embed between [`TABLE1_BEGIN`] /
/// [`TABLE1_END`] markers.
pub fn table1_markdown() -> String {
    let mut out = String::new();
    out.push_str("| # | Syscall | Class | FD | Path |\n");
    out.push_str("|--:|---------|-------|:--:|:----:|\n");
    for (i, &k) in SyscallKind::ALL.iter().enumerate() {
        let fd = if k.takes_fd() { "✓" } else { "" };
        let path = if k.takes_path() { "✓" } else { "" };
        out.push_str(&format!(
            "| {} | `{}` | {} | {} | {} |\n",
            i + 1,
            k.name(),
            k.class(),
            fd,
            path
        ));
    }
    let census =
        CLASS_CENSUS.iter().map(|(c, n)| format!("{n} {c}")).collect::<Vec<_>>().join(", ");
    out.push_str(&format!("\n{} syscalls: {census}.\n", SyscallKind::ALL.len()));
    out
}

// ------------------------------------------------------------ pure checks

/// Checks the in-crate invariants of the catalog: census, class counts,
/// name round-trips, fd/path flags, arg contract, and the document schema.
pub fn check_catalog_invariants() -> Vec<LintFailure> {
    let mut failures = Vec::new();

    if SyscallKind::ALL.len() != 42 {
        failures.push(LintFailure {
            check: "census",
            message: format!("Table I lists 42 syscalls, catalog has {}", SyscallKind::ALL.len()),
        });
    }
    for &(class, want) in CLASS_CENSUS {
        let got = SyscallKind::ALL.iter().filter(|k| k.class() == class).count();
        if got != want {
            failures.push(LintFailure {
                check: "class-census",
                message: format!("class `{class}` has {got} syscalls, Table I says {want}"),
            });
        }
    }

    let mut seen = std::collections::HashSet::new();
    for &k in SyscallKind::ALL {
        if !seen.insert(k.name()) {
            failures.push(LintFailure {
                check: "names",
                message: format!("duplicate syscall name `{}`", k.name()),
            });
        }
        match k.name().parse::<SyscallKind>() {
            Ok(back) if back == k => {}
            _ => failures.push(LintFailure {
                check: "names",
                message: format!("`{}` does not round-trip through FromStr", k.name()),
            }),
        }
        if !k.takes_fd() && !k.takes_path() {
            failures.push(LintFailure {
                check: "fd-path-flags",
                message: format!("`{}` neither takes an fd nor a path — untraceable target", k),
            });
        }
        if expected_args(k).is_empty() {
            failures.push(LintFailure {
                check: "args-contract",
                message: format!(
                    "`{}` has no expected args — decoding arm missing from args.rs",
                    k
                ),
            });
        }

        let doc = SyscallEvent::synthetic(k).to_document();
        for field in DOCUMENT_FIELDS {
            if doc.get(field).is_none() {
                failures.push(LintFailure {
                    check: "event-schema",
                    message: format!("document for `{k}` lacks required field `{field}`"),
                });
            }
        }
        if doc.get("syscall").and_then(|v| v.as_str()) != Some(k.name()) {
            failures.push(LintFailure {
                check: "event-schema",
                message: format!("document for `{k}` names a different syscall"),
            });
        }
        if doc.get("class").and_then(|v| v.as_str()) != Some(k.class().to_string().as_str()) {
            failures.push(LintFailure {
                check: "event-schema",
                message: format!("document for `{k}` carries the wrong class"),
            });
        }
    }

    failures
}

// --------------------------------------------------------- source scanning

/// Extracts `(kind variant, arg names)` for every `invoke(SyscallKind::X,
/// args, ...)` dispatch site in `dio-kernel/src/syscalls.rs` source text.
///
/// The kernel builds each `args` vector immediately before its dispatch,
/// so the `Arg::new("…")` literals between two dispatch sites belong to
/// the later one.
fn scan_kernel_dispatch(src: &str) -> Vec<(String, Vec<String>)> {
    const NEEDLE: &str = "invoke(SyscallKind::";
    let mut sites = Vec::new();
    let mut prev_end = 0usize;
    let mut from = 0usize;
    while let Some(rel) = src[from..].find(NEEDLE) {
        let at = from + rel;
        let tail = &src[at + NEEDLE.len()..];
        let variant: String = tail.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
        let args = scan_arg_names(&src[prev_end..at]);
        sites.push((variant, args));
        prev_end = at + NEEDLE.len();
        from = prev_end;
    }
    sites
}

/// All `Arg::new("name"` literals in a source slice, in order.
fn scan_arg_names(src: &str) -> Vec<String> {
    const NEEDLE: &str = "Arg::new(\"";
    let mut names = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = src[from..].find(NEEDLE) {
        let start = from + rel + NEEDLE.len();
        if let Some(len) = src[start..].find('"') {
            names.push(src[start..start + len].to_string());
            from = start + len;
        } else {
            break;
        }
    }
    names
}

/// Checks the kernel probe dispatch source against the catalog: every kind
/// dispatched exactly once, with `Arg` names matching `expected_args`.
pub fn check_kernel_dispatch_src(src: &str) -> Vec<LintFailure> {
    let mut failures = Vec::new();
    let sites = scan_kernel_dispatch(src);

    for &k in SyscallKind::ALL {
        let variant = format!("{k:?}");
        let matching: Vec<_> = sites.iter().filter(|(v, _)| *v == variant).collect();
        match matching.as_slice() {
            [] => failures.push(LintFailure {
                check: "kernel-dispatch",
                message: format!(
                    "`{k}` has no probe dispatch site in dio-kernel — syscall untraced"
                ),
            }),
            [(_, args)] => {
                let expected = expected_args(k);
                if args.iter().map(String::as_str).ne(expected.iter().copied()) {
                    failures.push(LintFailure {
                        check: "kernel-args",
                        message: format!(
                            "`{k}` arg drift between layers:\n  - dio-syscall expects [{}]\n  - dio-kernel records  [{}]",
                            expected.join(", "),
                            args.join(", ")
                        ),
                    });
                }
            }
            many => failures.push(LintFailure {
                check: "kernel-dispatch",
                message: format!(
                    "`{k}` has {} dispatch sites in dio-kernel — duplicate probe",
                    many.len()
                ),
            }),
        }
    }
    for (variant, _) in &sites {
        if !SyscallKind::ALL.iter().any(|k| format!("{k:?}") == *variant) {
            failures.push(LintFailure {
                check: "kernel-dispatch",
                message: format!(
                    "dio-kernel dispatches unknown SyscallKind::{variant} — not in Table I"
                ),
            });
        }
    }
    failures
}

/// Checks the `args.rs` source for a decoding arm (`SyscallKind::X =>`)
/// per catalog entry. The `expected_args` match carries a `_ => &[]`
/// fallback, so a deleted arm still compiles — only this lint sees it.
pub fn check_args_arms_src(src: &str) -> Vec<LintFailure> {
    let mut failures = Vec::new();
    for &k in SyscallKind::ALL {
        let arm = format!("SyscallKind::{k:?} =>");
        if !src.contains(&arm) {
            failures.push(LintFailure {
                check: "args-arms",
                message: format!(
                    "`{k}` has no decoding arm in args.rs — expected_args falls through to []"
                ),
            });
        }
    }
    failures
}

/// Checks a doc file's generated Table I block against [`table1_markdown`].
pub fn check_doc_table(name: &str, content: &str) -> Vec<LintFailure> {
    match extract_between_markers(content) {
        None => vec![LintFailure {
            check: "docs-table1",
            message: format!("{name} has no `{TABLE1_BEGIN}` … `{TABLE1_END}` block"),
        }],
        Some(block) => {
            let want = table1_markdown();
            if block.trim() != want.trim() {
                let diff = first_divergence(block.trim(), want.trim());
                vec![LintFailure {
                    check: "docs-table1",
                    message: format!(
                        "{name} Table I listing drifted from SyscallKind::ALL; run `dio-verify --write-docs`\n{diff}"
                    ),
                }]
            } else {
                Vec::new()
            }
        }
    }
}

fn extract_between_markers(content: &str) -> Option<&str> {
    let start = content.find(TABLE1_BEGIN)? + TABLE1_BEGIN.len();
    let end = content[start..].find(TABLE1_END)? + start;
    Some(&content[start..end])
}

/// A diff-style excerpt of the first line where `got` and `want` diverge.
fn first_divergence(got: &str, want: &str) -> String {
    for (g, w) in got.lines().zip(want.lines()) {
        if g != w {
            return format!("  - {w}\n  + {g}");
        }
    }
    let (glen, wlen) = (got.lines().count(), want.lines().count());
    if glen < wlen {
        format!("  - {}", want.lines().nth(glen).unwrap_or(""))
    } else if glen > wlen {
        format!("  + {}", got.lines().nth(wlen).unwrap_or(""))
    } else {
        String::new()
    }
}

// ---------------------------------------------------------- repo-level API

/// Paths the repo-level lint reads, relative to the workspace root.
const ARGS_RS: &str = "crates/syscall/src/args.rs";
const KERNEL_SYSCALLS_RS: &str = "crates/kernel/src/syscalls.rs";
const DOC_FILES: &[&str] = &["DESIGN.md", "README.md"];

fn read(root: &Path, rel: &str) -> Result<String, LintFailure> {
    std::fs::read_to_string(root.join(rel))
        .map_err(|e| LintFailure { check: "io", message: format!("cannot read {rel}: {e}") })
}

/// Runs every catalog check against the workspace rooted at `root`.
///
/// Returns all failures; an empty vector means the five layers agree.
pub fn check_catalog(root: &Path) -> Vec<LintFailure> {
    let mut failures = check_catalog_invariants();

    match read(root, ARGS_RS) {
        Ok(src) => failures.extend(check_args_arms_src(&src)),
        Err(f) => failures.push(f),
    }
    match read(root, KERNEL_SYSCALLS_RS) {
        Ok(src) => failures.extend(check_kernel_dispatch_src(&src)),
        Err(f) => failures.push(f),
    }
    for doc in DOC_FILES {
        match read(root, doc) {
            Ok(content) => failures.extend(check_doc_table(doc, &content)),
            Err(f) => failures.push(f),
        }
    }
    for doc in crate::rules_lint::RULES_DOC_FILES {
        match read(root, doc) {
            Ok(content) => {
                failures.extend(crate::rules_lint::check_doc_rules_reference(doc, &content))
            }
            Err(f) => failures.push(f),
        }
    }
    failures
}

/// Regenerates the Table I block in each doc file under `root`, between
/// the existing markers. Returns the files rewritten.
///
/// # Errors
///
/// Fails when a doc file is unreadable or lacks the marker pair.
pub fn write_docs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut written = Vec::new();
    for doc in DOC_FILES {
        let path = root.join(doc);
        let content =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {doc}: {e}"))?;
        let start = content
            .find(TABLE1_BEGIN)
            .ok_or_else(|| format!("{doc} has no {TABLE1_BEGIN} marker"))?
            + TABLE1_BEGIN.len();
        let end = content[start..]
            .find(TABLE1_END)
            .ok_or_else(|| format!("{doc} has no {TABLE1_END} marker"))?
            + start;
        let next = format!("{}\n{}{}", &content[..start], table1_markdown(), &content[end..]);
        if next != content {
            std::fs::write(&path, &next).map_err(|e| format!("cannot write {doc}: {e}"))?;
            written.push(path);
        }
    }
    written.extend(crate::rules_lint::write_rules_reference(root)?);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_hold_on_the_real_catalog() {
        let failures = check_catalog_invariants();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn table1_lists_every_syscall_once() {
        let table = table1_markdown();
        for &k in SyscallKind::ALL {
            let cell = format!("`{}`", k.name());
            assert_eq!(table.matches(&cell).count(), 1, "{} should appear exactly once", k.name());
        }
        assert!(table.contains("42 syscalls"));
    }

    #[test]
    fn kernel_scan_reads_dispatch_sites() {
        let src = r#"
            pub fn close(&self, fd: i32) -> SysResult<()> {
                let args = vec![Arg::new("fd", fd)];
                self.invoke(SyscallKind::Close, args, None, Some(fd), || Ok((0, ())))
            }
            pub fn stat(&self, path: &str) -> SysResult<StatBuf> {
                let args = vec![Arg::new("path", path)];
                self.invoke(SyscallKind::Stat, args, Some(path), None, || todo!())
            }
        "#;
        let sites = scan_kernel_dispatch(src);
        assert_eq!(
            sites,
            vec![
                ("Close".to_string(), vec!["fd".to_string()]),
                ("Stat".to_string(), vec!["path".to_string()]),
            ]
        );
    }

    #[test]
    fn kernel_check_flags_missing_and_drifted_args() {
        // A fake kernel source with only one syscall, with a wrong arg name.
        let src = r#"
            let args = vec![Arg::new("fildes", fd)];
            self.invoke(SyscallKind::Close, args, None, Some(fd), || Ok((0, ())))
        "#;
        let failures = check_kernel_dispatch_src(src);
        assert!(failures.iter().any(|f| f.check == "kernel-args" && f.message.contains("close")));
        // The other 41 are missing entirely.
        assert_eq!(failures.iter().filter(|f| f.check == "kernel-dispatch").count(), 41);
    }

    #[test]
    fn kernel_check_flags_duplicates_and_unknowns() {
        let dup = r#"
            let args = vec![Arg::new("fd", fd)];
            self.invoke(SyscallKind::Close, args, None, Some(fd), || Ok((0, ())))
            let args = vec![Arg::new("fd", fd)];
            self.invoke(SyscallKind::Close, args, None, Some(fd), || Ok((0, ())))
            self.invoke(SyscallKind::Futex, vec![], None, None, || Ok((0, ())))
        "#;
        let failures = check_kernel_dispatch_src(dup);
        assert!(failures
            .iter()
            .any(|f| f.check == "kernel-dispatch" && f.message.contains("2 dispatch sites")));
        assert!(failures
            .iter()
            .any(|f| f.check == "kernel-dispatch" && f.message.contains("Futex")));
    }

    #[test]
    fn args_arm_check_flags_removed_arm() {
        let mut src = String::new();
        for &k in SyscallKind::ALL {
            if k != SyscallKind::Readahead {
                src.push_str(&format!("SyscallKind::{k:?} => &[\"x\"],\n"));
            }
        }
        let failures = check_args_arms_src(&src);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].message.contains("readahead"));
    }

    #[test]
    fn doc_check_flags_drift_and_missing_markers() {
        assert_eq!(check_doc_table("X.md", "no markers here").len(), 1);
        let good = format!("intro\n{TABLE1_BEGIN}\n{}{TABLE1_END}\nrest", table1_markdown());
        assert!(check_doc_table("X.md", &good).is_empty());
        let drifted = good.replace("`read`", "`reed`");
        let failures = check_doc_table("X.md", &drifted);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].message.contains("- |"), "diff excerpt: {}", failures[0].message);
    }

    #[test]
    fn first_divergence_reports_shape() {
        assert!(first_divergence("a\nb", "a\nc").contains("- c"));
        assert!(first_divergence("a", "a\nb").contains("- b"));
        assert!(first_divergence("a\nb", "a").contains("+ b"));
        assert_eq!(first_divergence("a", "a"), "");
    }
}
