//! The FilterSpec verifier: load-time rejection of unsatisfiable or
//! pathological tracer filters.
//!
//! Real DIO inherits this guarantee from the kernel's eBPF verifier: a
//! tracing program that could loop, overrun a map, or never produce output
//! is rejected before it attaches (PAPER.md §III). The reproduction's
//! filters are plain Rust, so nothing rejected them — a contradictory
//! `FilterSpec` would attach happily and surface only as a mysteriously
//! empty trace. [`verify_filter`] closes that gap: it walks the predicate
//! structure of a filter and refuses, with a typed [`VerifyError`]
//! (via [`VerifyReport::into_result`]), any spec that provably traces
//! nothing or costs unbounded per-event work.

use dio_syscall::SyscallSet;

use crate::report::{Rule, VerifyReport};

/// Maximum number of path prefixes a filter may carry — every prefix is
/// walked on every `sys_enter`, so the count is a per-event cost bound
/// (the analogue of the eBPF verifier's instruction budget).
pub const MAX_PATH_PREFIXES: usize = 64;

/// Maximum total bytes of path-prefix text scanned per event.
pub const MAX_PATH_PREFIX_BYTES: usize = 64 * 1024;

/// Longest path the VFS can produce (`PATH_MAX`); longer prefixes can
/// never match.
pub const PATH_MAX: usize = 4096;

/// A verifier-neutral description of a filter's predicate structure.
///
/// `dio-ebpf`'s `FilterSpec` lowers itself into this shape (via
/// `FilterSpec::facts`) so the verifier can analyze filters without a
/// dependency cycle between the crates. `None` dimensions match
/// everything, mirroring the filter's semantics.
///
/// # Examples
///
/// ```
/// use dio_verify::{verify_filter, FilterFacts, Rule};
/// use dio_syscall::SyscallSet;
///
/// let facts = FilterFacts { syscalls: Some(SyscallSet::EMPTY), ..FilterFacts::default() };
/// let err = verify_filter(&facts).into_result().unwrap_err();
/// assert!(err.violates(Rule::EmptySyscallSet));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterFacts {
    /// The syscall restriction, if any.
    pub syscalls: Option<SyscallSet>,
    /// The PID restriction, if any (raw ids).
    pub pids: Option<Vec<u32>>,
    /// The TID restriction, if any (raw ids).
    pub tids: Option<Vec<u32>>,
    /// The path-prefix restriction, if any.
    pub path_prefixes: Option<Vec<String>>,
}

impl FilterFacts {
    /// Extracts filter facts from a serialized `TracerConfig`/`FilterSpec`
    /// JSON document (the paper's §II-F configuration file), accepting
    /// either the filter object itself or a config with a `filter` field.
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable JSON or a malformed filter shape.
    pub fn from_config_json(json: &str) -> Result<FilterFacts, String> {
        let root: serde_json::Value =
            serde_json::from_str(json).map_err(|e| format!("malformed JSON: {e}"))?;
        let filter = root.get("filter").unwrap_or(&root);
        let obj = filter.as_object().ok_or("filter is not a JSON object")?;
        let mut facts = FilterFacts::default();
        if let Some(v) = obj.get("syscalls") {
            if !v.is_null() {
                let bits = v.as_u64().ok_or("filter.syscalls must be a u64 bitmap")?;
                let set: SyscallSet = serde_json::from_value(&serde_json::json!(bits))
                    .map_err(|e| format!("filter.syscalls: {e}"))?;
                facts.syscalls = Some(set);
            }
        }
        for (key, slot) in [("pids", &mut facts.pids), ("tids", &mut facts.tids)] {
            if let Some(v) = obj.get(key) {
                if !v.is_null() {
                    let arr = v.as_array().ok_or_else(|| format!("filter.{key} must be a list"))?;
                    let ids = arr
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .and_then(|n| u32::try_from(n).ok())
                                .ok_or_else(|| format!("filter.{key} entries must be u32 ids"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?;
                    *slot = Some(ids);
                }
            }
        }
        if let Some(v) = obj.get("path_prefixes") {
            if !v.is_null() {
                let arr = v.as_array().ok_or("filter.path_prefixes must be a list")?;
                let prefixes = arr
                    .iter()
                    .map(|x| {
                        x.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "filter.path_prefixes entries must be strings".into())
                    })
                    .collect::<Result<Vec<String>, String>>()?;
                facts.path_prefixes = Some(prefixes);
            }
        }
        Ok(facts)
    }
}

/// Whether `prefix` could ever match a path produced by the kernel.
fn prefix_matchable(prefix: &str) -> Option<&'static str> {
    if prefix.is_empty() {
        return Some("it is empty");
    }
    if !prefix.starts_with('/') {
        return Some("it is relative and the VFS resolves absolute paths only");
    }
    if prefix.contains('\0') {
        return Some("it contains a NUL byte");
    }
    if prefix.len() > PATH_MAX {
        return Some("it exceeds PATH_MAX");
    }
    None
}

/// Whether `inner` is a directory-wise descendant of `outer` (so a filter
/// already admitting `outer` admits everything under `inner`).
fn prefix_shadows(outer: &str, inner: &str) -> bool {
    inner != outer
        && inner.starts_with(outer)
        && (outer.ends_with('/') || inner.as_bytes().get(outer.len()) == Some(&b'/'))
}

/// Statically analyzes a filter's predicate structure.
///
/// Returns a [`VerifyReport`] carrying every finding; call
/// [`VerifyReport::into_result`] to turn rejecting findings into a typed
/// [`crate::VerifyError`]. The rules are documented on [`Rule`] and in
/// DESIGN.md §9 "Static verification".
pub fn verify_filter(facts: &FilterFacts) -> VerifyReport {
    let mut report = VerifyReport::clean();

    if let Some(set) = facts.syscalls {
        if set.is_empty() {
            report.reject(
                Rule::EmptySyscallSet,
                true,
                "the syscall set is empty: no event can pass the type filter".into(),
            );
        }
    }

    for (dim, ids, rule) in
        [("pid", &facts.pids, Rule::EmptyPidSet), ("tid", &facts.tids, Rule::EmptyTidSet)]
    {
        if let Some(ids) = ids {
            if ids.is_empty() {
                report.reject(
                    rule,
                    true,
                    format!("the {dim} set is empty: no event can pass the {dim} filter"),
                );
            } else {
                let zeroes = ids.iter().filter(|&&id| id == 0).count();
                if zeroes > 0 {
                    // The whole dimension is dead only when 0 is the sole member.
                    let sole = zeroes == ids.len();
                    report.reject(
                        Rule::UnmatchableId,
                        sole,
                        format!(
                            "{dim} 0 can never match: the kernel never assigns id 0 to an \
                             application thread"
                        ),
                    );
                }
            }
        }
    }

    if let Some(prefixes) = &facts.path_prefixes {
        if prefixes.is_empty() {
            report.reject(
                Rule::UnmatchablePathPrefix,
                true,
                "the path filter lists no prefixes: no path can ever match".into(),
            );
        }
        let mut unmatchable = 0usize;
        for p in prefixes {
            if let Some(why) = prefix_matchable(p) {
                unmatchable += 1;
                report.reject(
                    Rule::UnmatchablePathPrefix,
                    false,
                    format!("path prefix {p:?} can never match: {why}"),
                );
            }
        }
        if !prefixes.is_empty() && unmatchable == prefixes.len() {
            // Every prefix is dead: the path dimension is unsatisfiable.
            report.reject(
                Rule::UnmatchablePathPrefix,
                true,
                "every path prefix is unmatchable: no path can ever pass the filter".into(),
            );
        }

        let mut seen = std::collections::HashSet::new();
        for p in prefixes {
            if !seen.insert(p.as_str()) {
                report.reject(
                    Rule::DuplicatePathPrefix,
                    false,
                    format!("path prefix {p:?} appears more than once: pure per-event cost"),
                );
            }
        }

        for (i, inner) in prefixes.iter().enumerate() {
            if prefixes.iter().enumerate().any(|(j, outer)| i != j && prefix_shadows(outer, inner))
            {
                report.warn(
                    Rule::ShadowedPathPrefix,
                    format!(
                        "path prefix {inner:?} is shadowed by a broader prefix and never \
                             changes the verdict"
                    ),
                );
            }
        }

        if prefixes.len() > MAX_PATH_PREFIXES {
            report.reject(
                Rule::PathFilterCost,
                false,
                format!(
                    "{} path prefixes exceed the verifier bound of {MAX_PATH_PREFIXES} \
                     (every prefix is walked on every sys_enter)",
                    prefixes.len()
                ),
            );
        }
        let total_bytes: usize = prefixes.iter().map(String::len).sum();
        if total_bytes > MAX_PATH_PREFIX_BYTES {
            report.reject(
                Rule::PathFilterCost,
                false,
                format!(
                    "path prefixes total {total_bytes} bytes, exceeding the per-event scan \
                     bound of {MAX_PATH_PREFIX_BYTES}"
                ),
            );
        }

        if let Some(set) = facts.syscalls {
            if !set.is_empty() && set.iter().all(|k| !k.takes_path()) {
                report.warn(
                    Rule::FdOnlyPathFilter,
                    "path filter combined with fd-only syscalls: matching relies on fd→path \
                     resolution and misses files opened before the session started"
                        .into(),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_syscall::SyscallKind;

    fn ok_facts() -> FilterFacts {
        FilterFacts {
            syscalls: Some([SyscallKind::Openat, SyscallKind::Read].into_iter().collect()),
            pids: Some(vec![1000]),
            tids: None,
            path_prefixes: Some(vec!["/db".into()]),
        }
    }

    #[test]
    fn default_and_sound_specs_pass() {
        assert!(verify_filter(&FilterFacts::default()).into_result().is_ok());
        let report = verify_filter(&ok_facts());
        assert!(report.is_ok());
        assert!(!report.statically_empty());
        assert_eq!(report.diagnostics.len(), 0);
    }

    #[test]
    fn empty_syscall_set_rejected() {
        let facts = FilterFacts { syscalls: Some(SyscallSet::EMPTY), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::EmptySyscallSet));
        assert!(err.report.statically_empty());
    }

    #[test]
    fn empty_pid_set_rejected() {
        let facts = FilterFacts { pids: Some(vec![]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::EmptyPidSet));
        assert!(err.report.statically_empty());
    }

    #[test]
    fn empty_tid_set_rejected() {
        let facts = FilterFacts { tids: Some(vec![]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::EmptyTidSet));
    }

    #[test]
    fn id_zero_rejected_and_empty_only_when_sole() {
        let facts = FilterFacts { pids: Some(vec![0]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::UnmatchableId));
        assert!(err.report.statically_empty(), "pid 0 as the only pid is statically empty");

        let facts = FilterFacts { pids: Some(vec![0, 1000]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::UnmatchableId));
        assert!(!err.report.statically_empty(), "pid 1000 can still match");

        let facts = FilterFacts { tids: Some(vec![0]), ..ok_facts() };
        assert!(verify_filter(&facts).into_result().unwrap_err().violates(Rule::UnmatchableId));
    }

    #[test]
    fn unmatchable_prefixes_rejected() {
        for bad in ["", "relative/path", "a", "/nul\0byte"] {
            let facts = FilterFacts { path_prefixes: Some(vec![bad.to_string()]), ..ok_facts() };
            let err = verify_filter(&facts).into_result().unwrap_err();
            assert!(err.violates(Rule::UnmatchablePathPrefix), "prefix {bad:?}");
            assert!(err.report.statically_empty(), "sole dead prefix empties the dimension");
        }
        let too_long = format!("/{}", "x".repeat(PATH_MAX + 1));
        let facts = FilterFacts { path_prefixes: Some(vec![too_long]), ..ok_facts() };
        assert!(verify_filter(&facts)
            .into_result()
            .unwrap_err()
            .violates(Rule::UnmatchablePathPrefix));
        // One dead prefix among live ones rejects but is not statically empty.
        let facts = FilterFacts {
            path_prefixes: Some(vec!["relative".into(), "/ok".into()]),
            ..ok_facts()
        };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::UnmatchablePathPrefix));
        assert!(!err.report.statically_empty());
        // An explicitly empty prefix list can match nothing at all.
        let facts = FilterFacts { path_prefixes: Some(vec![]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.report.statically_empty());
    }

    #[test]
    fn duplicate_prefix_rejected() {
        let facts =
            FilterFacts { path_prefixes: Some(vec!["/db".into(), "/db".into()]), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::DuplicatePathPrefix));
        assert!(!err.report.statically_empty(), "duplicates waste work but still match");
    }

    #[test]
    fn shadowed_prefix_warns_but_loads() {
        let facts =
            FilterFacts { path_prefixes: Some(vec!["/db".into(), "/db/wal".into()]), ..ok_facts() };
        let report = verify_filter(&facts);
        assert!(report.is_ok());
        assert_eq!(report.warnings().next().unwrap().rule, Rule::ShadowedPathPrefix);
        // "/dbx" is NOT under "/db" (directory-wise).
        let facts =
            FilterFacts { path_prefixes: Some(vec!["/db".into(), "/dbx".into()]), ..ok_facts() };
        assert_eq!(verify_filter(&facts).warnings().count(), 0);
    }

    #[test]
    fn path_filter_cost_bounds() {
        let many: Vec<String> = (0..=MAX_PATH_PREFIXES).map(|i| format!("/p{i}")).collect();
        let facts = FilterFacts { path_prefixes: Some(many), ..ok_facts() };
        let err = verify_filter(&facts).into_result().unwrap_err();
        assert!(err.violates(Rule::PathFilterCost));

        let fat: Vec<String> = (0..32).map(|i| format!("/{i:04}{}", "y".repeat(2100))).collect();
        let facts = FilterFacts { path_prefixes: Some(fat), ..ok_facts() };
        assert!(verify_filter(&facts).into_result().unwrap_err().violates(Rule::PathFilterCost));
    }

    #[test]
    fn fd_only_path_filter_warns() {
        let facts = FilterFacts {
            syscalls: Some([SyscallKind::Read, SyscallKind::Write].into_iter().collect()),
            pids: None,
            tids: None,
            path_prefixes: Some(vec!["/db".into()]),
        };
        let report = verify_filter(&facts);
        assert!(report.is_ok());
        assert_eq!(report.warnings().next().unwrap().rule, Rule::FdOnlyPathFilter);
        // Openat takes a path, so the warning clears.
        let facts = FilterFacts {
            syscalls: Some([SyscallKind::Read, SyscallKind::Openat].into_iter().collect()),
            ..facts
        };
        assert_eq!(verify_filter(&facts).warnings().count(), 0);
    }

    #[test]
    fn facts_parse_from_config_json() {
        let json = r#"{
            "session": "s",
            "filter": {
                "syscalls": null,
                "pids": [7, 8],
                "tids": null,
                "path_prefixes": ["/db"]
            }
        }"#;
        let facts = FilterFacts::from_config_json(json).unwrap();
        assert_eq!(facts.pids, Some(vec![7, 8]));
        assert_eq!(facts.path_prefixes, Some(vec!["/db".to_string()]));
        assert!(facts.syscalls.is_none());
        assert!(FilterFacts::from_config_json("{not json").is_err());
        assert!(FilterFacts::from_config_json(r#"{"filter": {"pids": ["x"]}}"#).is_err());
        // A bare filter object (no wrapper) parses too.
        let bare = FilterFacts::from_config_json(r#"{"pids": []}"#).unwrap();
        assert_eq!(bare.pids, Some(vec![]));
    }
}
