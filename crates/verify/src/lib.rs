#![warn(missing_docs)]

//! Static analysis for DIO tracer programs and the syscall catalog.
//!
//! Real DIO relies on the kernel's eBPF verifier to reject unsafe or
//! unbounded tracing programs before they attach (PAPER.md §III). This
//! crate is the reproduction's analogue, with two passes:
//!
//! * **Filter verification** ([`verify_filter`]) — walks a filter's
//!   predicate structure ([`FilterFacts`]) and rejects unsatisfiable specs
//!   (empty syscall/pid/tid sets, never-matching path prefixes) and
//!   pathological ones (duplicate probes, per-event cost over budget) with
//!   a typed [`VerifyReport`] / [`VerifyError`] naming each violated
//!   [`Rule`]. `dio-ebpf` runs this pass inside `TracerProgram`
//!   construction, so a broken spec fails at load time instead of tracing
//!   nothing.
//! * **Catalog linting** ([`check_catalog`]) — cross-checks the 42
//!   syscalls of Table I across `catalog.rs`, the arg contract in
//!   `args.rs`, the kernel probe dispatch, the event document schema, and
//!   the listings in DESIGN.md/README.md. The `dio-verify` binary runs it
//!   in CI (`--check-catalog`) and regenerates the docs (`--write-docs`).
//!
//! # Examples
//!
//! Rejecting a filter that can never match:
//!
//! ```
//! use dio_verify::{verify_filter, FilterFacts, Rule};
//!
//! let facts = FilterFacts { pids: Some(vec![]), ..FilterFacts::default() };
//! let err = verify_filter(&facts).into_result().unwrap_err();
//! assert!(err.violates(Rule::EmptyPidSet));
//! assert!(err.to_string().contains("error[empty-pid-set]"));
//! ```

mod catalog;
mod filter;
mod report;
mod rules_lint;

pub use catalog::{
    check_args_arms_src, check_catalog, check_catalog_invariants, check_doc_table,
    check_kernel_dispatch_src, table1_markdown, write_docs, LintFailure, CLASS_CENSUS,
    DOCUMENT_FIELDS, TABLE1_BEGIN, TABLE1_END,
};
pub use filter::{verify_filter, FilterFacts, MAX_PATH_PREFIXES, MAX_PATH_PREFIX_BYTES, PATH_MAX};
pub use report::{Diagnostic, Rule, Severity, VerifyError, VerifyReport};
pub use rules_lint::{check_doc_rules_reference, RULES_REFERENCE_BEGIN, RULES_REFERENCE_END};
