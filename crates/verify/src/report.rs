//! Typed diagnostics produced by the verifier passes.

use std::fmt;

/// One of the verifier's named rules.
///
/// Each rule plays the role of one check class inside the kernel's eBPF
/// verifier: a tracer configuration that violates a rejecting rule is
/// refused at load time, before any tracepoint is attached — the moral
/// equivalent of `bpf(BPF_PROG_LOAD)` returning `EACCES` instead of letting
/// an unbounded or contradictory program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// The spec restricts syscalls to an empty set: no event can ever pass
    /// the type filter, so the session is statically guaranteed empty.
    EmptySyscallSet,
    /// The spec restricts PIDs to an empty set.
    EmptyPidSet,
    /// The spec restricts TIDs to an empty set.
    EmptyTidSet,
    /// A PID/TID constraint names id 0, which the kernel never assigns to
    /// an application thread (Linux pid 0 is the swapper; the simulator
    /// allocates ids from 1000). The constraint can never match.
    UnmatchableId,
    /// A path prefix can never match any path the kernel produces: it is
    /// empty, relative (the VFS resolves absolute paths only), contains a
    /// NUL byte, or exceeds `PATH_MAX`.
    UnmatchablePathPrefix,
    /// The same path prefix appears more than once; every copy is walked
    /// on every `sys_enter`, so duplicates are pure per-event cost.
    DuplicatePathPrefix,
    /// A path prefix is nested under another prefix of the same spec and
    /// can never change the verdict (e.g. `/db/wal` under `/db`).
    ShadowedPathPrefix,
    /// The path filter exceeds the verifier's cost bound (too many
    /// prefixes or too many total bytes scanned per event) — the analogue
    /// of the eBPF verifier's instruction/complexity budget.
    PathFilterCost,
    /// A path filter is combined with a syscall set in which no selected
    /// syscall carries a path argument; matching then relies entirely on
    /// fd→path resolution, which cannot see files opened before the
    /// session started.
    FdOnlyPathFilter,
}

impl Rule {
    /// The stable kebab-case name used in diagnostics and documentation.
    pub fn name(self) -> &'static str {
        match self {
            Rule::EmptySyscallSet => "empty-syscall-set",
            Rule::EmptyPidSet => "empty-pid-set",
            Rule::EmptyTidSet => "empty-tid-set",
            Rule::UnmatchableId => "unmatchable-id",
            Rule::UnmatchablePathPrefix => "unmatchable-path-prefix",
            Rule::DuplicatePathPrefix => "duplicate-path-prefix",
            Rule::ShadowedPathPrefix => "shadowed-path-prefix",
            Rule::PathFilterCost => "path-filter-cost",
            Rule::FdOnlyPathFilter => "fd-only-path-filter",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a diagnostic affects the load decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The spec is refused; constructing a `TracerProgram` from it fails.
    Reject,
    /// The spec loads, but the report carries the finding for operators.
    Warn,
}

/// One finding of the verifier, tied to a [`Rule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Whether the finding rejects the spec or only warns.
    pub severity: Severity,
    /// Human-readable explanation naming the offending value.
    pub message: String,
    /// Whether this finding alone proves the session can never record a
    /// single event (used by property tests to cross-check the verifier
    /// against brute-force evaluation).
    pub statically_empty: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity {
            Severity::Reject => "error",
            Severity::Warn => "warning",
        };
        write!(f, "{kind}[{}]: {}", self.rule, self.message)
    }
}

/// The outcome of a verifier pass: every finding, rejecting or not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// All findings, in rule-evaluation order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// A report with no findings.
    pub fn clean() -> Self {
        Self::default()
    }

    pub(crate) fn reject(&mut self, rule: Rule, statically_empty: bool, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: Severity::Reject,
            message,
            statically_empty,
        });
    }

    pub(crate) fn warn(&mut self, rule: Rule, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: Severity::Warn,
            message,
            statically_empty: false,
        });
    }

    /// Findings with [`Severity::Reject`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Reject)
    }

    /// Findings with [`Severity::Warn`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// Whether the spec passes (it may still carry warnings).
    pub fn is_ok(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether the verifier proved the spec can never admit any event.
    pub fn statically_empty(&self) -> bool {
        self.diagnostics.iter().any(|d| d.statically_empty)
    }

    /// Converts the report into a result: `Err` when any rejecting finding
    /// is present.
    pub fn into_result(self) -> Result<VerifyReport, VerifyError> {
        if self.is_ok() {
            Ok(self)
        } else {
            Err(VerifyError { report: self })
        }
    }
}

/// The typed error returned when a spec is rejected at load time.
///
/// Displays every rejecting diagnostic, one per line, each naming the
/// violated [`Rule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The full report, including any warnings that accompanied the
    /// rejection.
    pub report: VerifyReport,
}

impl VerifyError {
    /// The rules violated with rejecting severity, in evaluation order.
    pub fn rules(&self) -> Vec<Rule> {
        self.report.errors().map(|d| d.rule).collect()
    }

    /// Whether `rule` is among the rejecting findings.
    pub fn violates(&self, rule: Rule) -> bool {
        self.report.errors().any(|d| d.rule == rule)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter spec rejected by dio-verify")?;
        for d in self.report.errors() {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_severity_partitions() {
        let mut r = VerifyReport::clean();
        assert!(r.is_ok());
        assert!(!r.statically_empty());
        r.warn(Rule::ShadowedPathPrefix, "warn".into());
        assert!(r.is_ok(), "warnings alone do not reject");
        r.reject(Rule::EmptySyscallSet, true, "empty".into());
        assert!(!r.is_ok());
        assert!(r.statically_empty());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
    }

    #[test]
    fn error_display_names_rules() {
        let mut r = VerifyReport::clean();
        r.reject(Rule::EmptyPidSet, true, "pid set is empty".into());
        let err = r.into_result().unwrap_err();
        assert!(err.violates(Rule::EmptyPidSet));
        assert!(!err.violates(Rule::EmptyTidSet));
        let text = err.to_string();
        assert!(text.contains("error[empty-pid-set]"), "got: {text}");
        assert!(text.contains("pid set is empty"));
    }

    #[test]
    fn clean_report_into_result_is_ok() {
        assert!(VerifyReport::clean().into_result().is_ok());
        let mut warn_only = VerifyReport::clean();
        warn_only.warn(Rule::FdOnlyPathFilter, "w".into());
        assert!(warn_only.into_result().is_ok());
    }

    #[test]
    fn rule_names_are_kebab_case_and_unique() {
        let rules = [
            Rule::EmptySyscallSet,
            Rule::EmptyPidSet,
            Rule::EmptyTidSet,
            Rule::UnmatchableId,
            Rule::UnmatchablePathPrefix,
            Rule::DuplicatePathPrefix,
            Rule::ShadowedPathPrefix,
            Rule::PathFilterCost,
            Rule::FdOnlyPathFilter,
        ];
        let mut seen = std::collections::HashSet::new();
        for r in rules {
            assert!(seen.insert(r.name()), "duplicate rule name {}", r.name());
            assert!(r.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
