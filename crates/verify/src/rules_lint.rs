//! Lints tying the `dio-rules` DSL into the repo-level catalog checks.
//!
//! Two concerns live here:
//!
//! * the generated DSL reference block in DESIGN.md (between
//!   [`RULES_REFERENCE_BEGIN`] / [`RULES_REFERENCE_END`]) must match
//!   [`dio_rules::reference_markdown`] — same marker pattern as the
//!   Table I listing, same `--write-docs` regeneration;
//! * the rule catalog's event fields must stay in lock-step with the
//!   document contract ([`crate::DOCUMENT_FIELDS`]), so a field added to
//!   `SyscallEvent::to_document` becomes addressable from rules (or the
//!   drift is flagged), enforced by this module's tests.

use std::path::Path;

use crate::catalog::LintFailure;

/// Marker opening the generated `dio-rules` reference block in DESIGN.md.
pub const RULES_REFERENCE_BEGIN: &str = "<!-- dio-rules:reference:begin -->";
/// Marker closing the generated `dio-rules` reference block.
pub const RULES_REFERENCE_END: &str = "<!-- dio-rules:reference:end -->";

/// Doc files carrying the generated rule reference.
pub(crate) const RULES_DOC_FILES: &[&str] = &["DESIGN.md"];

/// Checks a doc file's generated rule-reference block against
/// [`dio_rules::reference_markdown`].
pub fn check_doc_rules_reference(name: &str, content: &str) -> Vec<LintFailure> {
    let start = match content.find(RULES_REFERENCE_BEGIN) {
        Some(i) => i + RULES_REFERENCE_BEGIN.len(),
        None => {
            return vec![LintFailure {
                check: "docs-rules-reference",
                message: format!("{name} has no `{RULES_REFERENCE_BEGIN}` marker"),
            }]
        }
    };
    let Some(end) = content[start..].find(RULES_REFERENCE_END).map(|i| i + start) else {
        return vec![LintFailure {
            check: "docs-rules-reference",
            message: format!("{name} has no `{RULES_REFERENCE_END}` marker"),
        }];
    };
    let want = dio_rules::reference_markdown();
    if content[start..end].trim() != want.trim() {
        vec![LintFailure {
            check: "docs-rules-reference",
            message: format!(
                "{name} rule reference drifted from dio-rules; run `dio-verify --write-docs`"
            ),
        }]
    } else {
        Vec::new()
    }
}

/// Rewrites the rule-reference block of each doc in [`RULES_DOC_FILES`]
/// under `root`. Returns the paths rewritten (possibly none).
///
/// # Errors
///
/// Fails when a doc file is unreadable or lacks the marker pair.
pub(crate) fn write_rules_reference(root: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut written = Vec::new();
    for doc in RULES_DOC_FILES {
        let path = root.join(doc);
        let content =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {doc}: {e}"))?;
        let start = content
            .find(RULES_REFERENCE_BEGIN)
            .ok_or_else(|| format!("{doc} has no {RULES_REFERENCE_BEGIN} marker"))?
            + RULES_REFERENCE_BEGIN.len();
        let end = content[start..]
            .find(RULES_REFERENCE_END)
            .ok_or_else(|| format!("{doc} has no {RULES_REFERENCE_END} marker"))?
            + start;
        let next = format!(
            "{}\n{}{}",
            &content[..start],
            dio_rules::reference_markdown(),
            &content[end..]
        );
        if next != content {
            std::fs::write(&path, &next).map_err(|e| format!("cannot write {doc}: {e}"))?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DOCUMENT_FIELDS;

    /// The rule catalog's leading entries mirror the always-present
    /// document fields, in document order — a field added to the event
    /// contract must become addressable from rules.
    #[test]
    fn rules_catalog_mirrors_document_fields() {
        let rule_fields: Vec<&str> = dio_rules::catalog::FIELDS.iter().map(|f| f.name).collect();
        assert_eq!(
            &rule_fields[..DOCUMENT_FIELDS.len()],
            DOCUMENT_FIELDS,
            "dio-rules catalog must lead with dio-verify's DOCUMENT_FIELDS"
        );
        // The tail is exactly the enrichment/correlation fields.
        assert_eq!(
            &rule_fields[DOCUMENT_FIELDS.len()..],
            &["offset", "file_tag", "file_path", "file_type"],
        );
    }

    /// The enum domains the rule analysis exhausts over (`class`,
    /// `file_type`) must spell values exactly as the document contract
    /// serializes them — a drifted spelling would make valid rules
    /// "provably" empty.
    #[test]
    fn rules_enum_domains_match_document_serializations() {
        use dio_rules::catalog::Domain;
        use dio_syscall::{FileType, SyscallClass};
        let classes: Vec<String> = [
            SyscallClass::Data,
            SyscallClass::Metadata,
            SyscallClass::ExtendedAttributes,
            SyscallClass::DirectoryManagement,
        ]
        .iter()
        .map(|c| c.to_string())
        .collect();
        assert_eq!(Domain::Classes.members(), classes);
        let file_types: Vec<String> = [
            FileType::Regular,
            FileType::Directory,
            FileType::Socket,
            FileType::BlockDevice,
            FileType::CharDevice,
            FileType::Pipe,
            FileType::Symlink,
            FileType::Unknown,
        ]
        .iter()
        .map(|t| t.to_string())
        .collect();
        assert_eq!(Domain::FileTypes.members(), file_types);
        // And the syscall domain is Table I itself.
        assert_eq!(
            Domain::Syscalls.members(),
            dio_syscall::SyscallKind::ALL.iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_drift_is_flagged_and_marker_pair_required() {
        let fresh = format!(
            "# doc\n{RULES_REFERENCE_BEGIN}\n{}{RULES_REFERENCE_END}\n",
            dio_rules::reference_markdown()
        );
        assert!(check_doc_rules_reference("t.md", &fresh).is_empty());

        let drifted = fresh.replace("latency_ns", "latency_us");
        let failures = check_doc_rules_reference("t.md", &drifted);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].check, "docs-rules-reference");

        let missing = check_doc_rules_reference("t.md", "# no markers");
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("marker"));
    }

    #[test]
    fn write_rules_reference_fills_the_block() {
        let dir = std::env::temp_dir().join(format!("dio-rules-docs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let doc = dir.join("DESIGN.md");
        std::fs::write(&doc, format!("x\n{RULES_REFERENCE_BEGIN}\nstale\n{RULES_REFERENCE_END}\n"))
            .unwrap();
        let written = write_rules_reference(&dir).unwrap();
        assert_eq!(written, vec![doc.clone()]);
        let content = std::fs::read_to_string(&doc).unwrap();
        assert!(check_doc_rules_reference("DESIGN.md", &content).is_empty());
        // Idempotent: a second run rewrites nothing.
        assert!(write_rules_reference(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
