//! End-to-end drift detection: `check_catalog` (and the `dio-verify`
//! binary) against a fixture copy of the real repo, with drift seeded
//! into individual layers. Each seeded drift must fail the lint with the
//! corresponding check name — this is the CI guarantee that the Table I
//! contract cannot rot silently.

use std::path::{Path, PathBuf};
use std::process::Command;

use dio_verify::check_catalog;

const ARGS_RS: &str = "crates/syscall/src/args.rs";
const KERNEL_SYSCALLS_RS: &str = "crates/kernel/src/syscalls.rs";

/// Copies the four linted files from the real repo into a fresh fixture
/// tree under the test tmpdir.
fn make_fixture(tag: &str) -> PathBuf {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let fixture = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    for rel in [ARGS_RS, KERNEL_SYSCALLS_RS, "DESIGN.md", "README.md"] {
        let dst = fixture.join(rel);
        std::fs::create_dir_all(dst.parent().unwrap()).unwrap();
        std::fs::copy(repo.join(rel), dst).unwrap();
    }
    fixture
}

/// Applies a literal substitution to one fixture file, asserting the
/// needle was present (a vacuous seed would make the test meaningless).
fn seed(fixture: &Path, rel: &str, needle: &str, replacement: &str) {
    let path = fixture.join(rel);
    let src = std::fs::read_to_string(&path).unwrap();
    assert!(src.contains(needle), "seed needle `{needle}` not found in {rel}");
    std::fs::write(&path, src.replace(needle, replacement)).unwrap();
}

fn checks(fixture: &Path) -> Vec<&'static str> {
    check_catalog(fixture).iter().map(|f| f.check).collect()
}

#[test]
fn pristine_fixture_passes() {
    let fixture = make_fixture("pristine");
    let failures = check_catalog(&fixture);
    assert!(failures.is_empty(), "clean copy of the repo must lint clean: {failures:?}");
}

#[test]
fn removed_args_arm_is_caught() {
    // The `_ => &[]` fallback means this still *compiles*; only the lint
    // (and the kernel-args cross-check) can see it.
    let fixture = make_fixture("args-arm-drift");
    seed(
        &fixture,
        ARGS_RS,
        "SyscallKind::Renameat2 => &[\"olddfd\", \"oldpath\", \"newdfd\", \"newpath\", \"flags\"],",
        "",
    );
    let got = checks(&fixture);
    assert!(got.contains(&"args-arms"), "missing arm must fail args-arms, got {got:?}");
    let failures = check_catalog(&fixture);
    let msg = &failures.iter().find(|f| f.check == "args-arms").unwrap().message;
    assert!(msg.contains("renameat2"), "failure names the dropped syscall: {msg}");
}

#[test]
fn renamed_kernel_arg_is_caught() {
    let fixture = make_fixture("kernel-arg-drift");
    seed(&fixture, KERNEL_SYSCALLS_RS, "Arg::new(\"whence\"", "Arg::new(\"origin\"");
    let got = checks(&fixture);
    assert!(got.contains(&"kernel-args"), "renamed arg must fail kernel-args, got {got:?}");
    let failures = check_catalog(&fixture);
    let msg = &failures.iter().find(|f| f.check == "kernel-args").unwrap().message;
    assert!(
        msg.contains("lseek") && msg.contains("whence") && msg.contains("origin"),
        "diff-style message names the syscall and both sides: {msg}"
    );
}

#[test]
fn removed_dispatch_site_is_caught() {
    let fixture = make_fixture("dispatch-drift");
    seed(&fixture, KERNEL_SYSCALLS_RS, "invoke(SyscallKind::Rmdir", "invoke(SyscallKind::Futex");
    let got = checks(&fixture);
    // Rmdir loses its site *and* an unknown kind appears.
    assert!(got.contains(&"kernel-dispatch"), "must fail kernel-dispatch, got {got:?}");
    let failures = check_catalog(&fixture);
    let messages: Vec<_> =
        failures.iter().filter(|f| f.check == "kernel-dispatch").map(|f| &f.message).collect();
    assert!(messages.iter().any(|m| m.contains("rmdir")), "names the untraced syscall");
    assert!(messages.iter().any(|m| m.contains("Futex")), "names the unknown kind");
}

#[test]
fn stale_doc_table_is_caught() {
    let fixture = make_fixture("doc-drift");
    seed(&fixture, "DESIGN.md", "| 1 | `read` | data |", "| 1 | `futex` | data |");
    let failures = check_catalog(&fixture);
    let doc = failures.iter().find(|f| f.check == "docs-table1");
    let doc = doc.unwrap_or_else(|| panic!("stale table must fail docs-table1: {failures:?}"));
    assert!(
        doc.message.contains("- |") && doc.message.contains("+ |"),
        "diff-style excerpt shows want/got lines: {}",
        doc.message
    );
}

#[test]
fn cli_exits_nonzero_on_drift_and_zero_when_clean() {
    let clean = make_fixture("cli-clean");
    let out = Command::new(env!("CARGO_BIN_EXE_dio-verify"))
        .args(["--check-catalog", "--root"])
        .arg(&clean)
        .output()
        .unwrap();
    assert!(out.status.success(), "clean fixture: {}", String::from_utf8_lossy(&out.stderr));

    let drifted = make_fixture("cli-drift");
    seed(&drifted, ARGS_RS, "SyscallKind::Rmdir => &[\"path\"],", "");
    let out = Command::new(env!("CARGO_BIN_EXE_dio-verify"))
        .args(["--check-catalog", "--root"])
        .arg(&drifted)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "drift must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("args-arms") && stderr.contains("rmdir"),
        "diagnostic names the check and syscall: {stderr}"
    );
}
