//! Time-series, bar-chart and heatmap renderers (the Fig. 3/4 styles).

use std::collections::BTreeMap;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points, x-ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// A multi-series line chart rendered as ASCII.
///
/// # Examples
///
/// ```
/// use dio_viz::{Chart, Series};
///
/// let chart = Chart::new("p99 latency (ms)")
///     .series(Series::new("clients", (0..50).map(|i| (i as f64, (i % 7) as f64)).collect()));
/// let art = chart.to_ascii(60, 10);
/// assert!(art.contains("p99 latency"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    series: Vec<Series>,
    y_label: String,
    x_label: String,
}

const MARKERS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'];

impl Chart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            series: Vec::new(),
            y_label: String::new(),
            x_label: String::new(),
        }
    }

    /// Adds a series.
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, label: impl Into<String>) -> Self {
        self.x_label = label.into();
        self
    }

    /// Renders the chart into a `width`×`height` character plot area with
    /// axes and a legend.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let width = width.max(8);
        let height = height.max(3);
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
        let mut out = format!("{}\n", self.title);
        if !xmin.is_finite() {
            out.push_str("(no data)\n");
            return out;
        }
        if (ymax - ymin).abs() < f64::EPSILON {
            ymax = ymin + 1.0;
        }
        if (xmax - xmin).abs() < f64::EPSILON {
            xmax = xmin + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for &(x, y) in &s.points {
                let col = (((x - xmin) / (xmax - xmin)) * (width as f64 - 1.0)).round() as usize;
                let row = (((y - ymin) / (ymax - ymin)) * (height as f64 - 1.0)).round() as usize;
                let row = height - 1 - row.min(height - 1);
                grid[row][col.min(width - 1)] = marker;
            }
        }
        if !self.y_label.is_empty() {
            out.push_str(&format!("y: {}\n", self.y_label));
        }
        for (i, row) in grid.iter().enumerate() {
            let y_val = ymax - (ymax - ymin) * i as f64 / (height as f64 - 1.0);
            out.push_str(&format!("{y_val:>10.2} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
        out.push_str(&format!("{:>12}{:<.3}{:>width$.3}\n", "", xmin, xmax, width = width - 4));
        if !self.x_label.is_empty() {
            out.push_str(&format!("x: {}\n", self.x_label));
        }
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", MARKERS[si % MARKERS.len()], s.name));
        }
        out
    }

    /// Exports the chart as CSV: `x,series1,series2,...` with one row per
    /// distinct x value.
    pub fn to_csv(&self) -> String {
        let mut xs: BTreeMap<u64, Vec<Option<f64>>> = BTreeMap::new();
        for (si, s) in self.series.iter().enumerate() {
            for &(x, y) in &s.points {
                let entry = xs.entry(x.to_bits()).or_insert_with(|| vec![None; self.series.len()]);
                entry[si] = Some(y);
            }
        }
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let mut rows: Vec<(f64, &Vec<Option<f64>>)> =
            xs.iter().map(|(bits, ys)| (f64::from_bits(*bits), ys)).collect();
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (x, ys) in rows {
            out.push_str(&format!("{x}"));
            for y in ys {
                out.push(',');
                if let Some(y) = y {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A labelled horizontal bar chart (histogram buckets, terms counts).
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates an empty bar chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart { title: title.into(), bars: Vec::new() }
    }

    /// Adds one labelled bar.
    pub fn bar(mut self, label: impl Into<String>, value: f64) -> Self {
        self.bars.push((label.into(), value));
        self
    }

    /// Adds many bars.
    pub fn bars(mut self, bars: impl IntoIterator<Item = (String, f64)>) -> Self {
        self.bars.extend(bars);
        self
    }

    /// Renders with bars scaled to `width` characters.
    pub fn to_ascii(&self, width: usize) -> String {
        let width = width.max(1);
        let max = self.bars.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, value) in &self.bars {
            let n = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
            out.push_str(&format!("{label:<label_w$} | {} {value}\n", "#".repeat(n)));
        }
        out
    }
}

/// A (row × column) intensity heatmap, e.g. thread × time-window syscall
/// counts — the densest way to see the Fig. 4 contention pattern.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    title: String,
    rows: Vec<(String, Vec<f64>)>,
    col_labels: Vec<String>,
    normalize_rows: bool,
}

const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

impl Heatmap {
    /// Creates an empty heatmap.
    pub fn new(title: impl Into<String>) -> Self {
        Heatmap {
            title: title.into(),
            rows: Vec::new(),
            col_labels: Vec::new(),
            normalize_rows: false,
        }
    }

    /// Normalizes intensities per row instead of over the whole map —
    /// keeps low-volume rows (e.g. compaction threads next to busy
    /// clients in Fig. 4) visible.
    pub fn normalize_per_row(mut self) -> Self {
        self.normalize_rows = true;
        self
    }

    /// Sets the column labels (first and last are displayed).
    pub fn col_labels(mut self, labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.col_labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a row of cell intensities.
    pub fn row(mut self, label: impl Into<String>, values: Vec<f64>) -> Self {
        self.rows.push((label.into(), values));
        self
    }

    /// Renders with one character per cell, normalized over the whole map
    /// (or per row with [`Heatmap::normalize_per_row`]).
    pub fn to_ascii(&self) -> String {
        let global_max =
            self.rows.iter().flat_map(|(_, vs)| vs.iter().copied()).fold(0.0f64, f64::max);
        let label_w = self.rows.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
        let mut out = format!("{}\n", self.title);
        for (label, values) in &self.rows {
            let max = if self.normalize_rows {
                values.iter().copied().fold(0.0f64, f64::max)
            } else {
                global_max
            };
            out.push_str(&format!("{label:<label_w$} |"));
            for &v in values {
                let idx = if max > 0.0 {
                    (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                } else {
                    0
                };
                out.push(RAMP[idx]);
            }
            out.push_str("|\n");
        }
        if let (Some(first), Some(last)) = (self.col_labels.first(), self.col_labels.last()) {
            let inner = self.rows.first().map(|(_, v)| v.len()).unwrap_or(0);
            let pad = inner.saturating_sub(first.chars().count() + last.chars().count());
            out.push_str(&format!("{:<label_w$}  {}{}{}\n", "", first, " ".repeat(pad), last));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series() {
        let chart = Chart::new("t")
            .series(Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]))
            .y_label("ops")
            .x_label("s");
        let art = chart.to_ascii(40, 8);
        assert!(art.contains("* a"));
        assert!(art.contains("o b"));
        assert!(art.contains("y: ops"));
        assert!(art.contains('*') && art.contains('o'));
    }

    #[test]
    fn chart_empty_data() {
        let art = Chart::new("empty").to_ascii(40, 8);
        assert!(art.contains("(no data)"));
    }

    #[test]
    fn chart_flat_series_does_not_divide_by_zero() {
        let chart = Chart::new("flat").series(Series::new("s", vec![(0.0, 5.0), (1.0, 5.0)]));
        let art = chart.to_ascii(20, 5);
        assert!(art.contains('*'));
    }

    #[test]
    fn chart_csv_merges_x_values() {
        let chart = Chart::new("t")
            .series(Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]))
            .series(Series::new("b", vec![(2.0, 5.0)]));
        let csv = chart.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,5");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let art = BarChart::new("ops").bar("read", 100.0).bar("write", 50.0).to_ascii(10);
        let read_line = art.lines().find(|l| l.starts_with("read")).unwrap();
        let write_line = art.lines().find(|l| l.starts_with("write")).unwrap();
        assert_eq!(read_line.matches('#').count(), 10);
        assert_eq!(write_line.matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_zero_values() {
        let art = BarChart::new("z").bar("a", 0.0).to_ascii(10);
        assert!(art.contains("a"));
        assert_eq!(art.matches('#').count(), 0);
    }

    #[test]
    fn heatmap_per_row_normalization() {
        let base = Heatmap::new("h").row("busy", vec![0.0, 1_000.0]).row("quiet", vec![0.0, 2.0]);
        let global = base.clone().to_ascii();
        let quiet_global = global.lines().find(|l| l.starts_with("quiet")).unwrap().to_string();
        assert!(quiet_global.contains(' '), "quiet row invisible on global scale");
        assert!(!quiet_global.contains('@'));
        let per_row = base.normalize_per_row().to_ascii();
        let quiet_local = per_row.lines().find(|l| l.starts_with("quiet")).unwrap();
        assert!(
            quiet_local.ends_with("@|"),
            "quiet row peaks at @ on its own scale: {quiet_local}"
        );
    }

    #[test]
    fn heatmap_intensity_ramp() {
        let art = Heatmap::new("h")
            .row("hot", vec![0.0, 5.0, 10.0])
            .row("cold", vec![0.0, 0.0, 1.0])
            .col_labels(["t0", "t2"])
            .to_ascii();
        let hot = art.lines().find(|l| l.starts_with("hot")).unwrap();
        assert!(hot.ends_with("@|"), "max intensity at the end: {hot}");
        assert!(art.contains("t0"));
        assert!(art.contains("t2"));
    }
}
