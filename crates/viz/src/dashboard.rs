//! Dashboards: named panels bound to backend queries (the Kibana layer).
//!
//! DIO ships "predefined dashboards" that are imported once and render as
//! soon as data arrives (§II-F). [`dashboards`] provides the ones used in
//! the paper's evaluation; custom ones are assembled from [`Panel`]s.

use dio_backend::{Aggregation, Index, Query, SearchRequest, SortOrder};

use crate::chart::{BarChart, Chart, Heatmap, Series};
use crate::table::{Column, Table};

/// What a panel displays.
#[derive(Debug, Clone)]
pub enum PanelSpec {
    /// A table of matching events.
    Table {
        /// Columns to project.
        columns: Vec<Column>,
        /// The search feeding the table.
        request: SearchRequest,
    },
    /// Event counts over time as a line chart, optionally split by a
    /// keyword field (one series per value) — the Fig. 4 shape.
    EventsOverTime {
        /// Filter over the index.
        query: Query,
        /// Time bucket width (ns).
        interval_ns: u64,
        /// Split field, e.g. `proc_name`.
        split_field: Option<String>,
    },
    /// Same data as a thread × time heatmap.
    ActivityHeatmap {
        /// Filter over the index.
        query: Query,
        /// Time bucket width (ns).
        interval_ns: u64,
        /// Row field, e.g. `proc_name`.
        split_field: String,
    },
    /// Top terms of a field as a bar chart.
    TopTerms {
        /// Filter over the index.
        query: Query,
        /// The keyword field.
        field: String,
        /// Maximum bars.
        size: usize,
    },
}

/// A titled panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Display title.
    pub title: String,
    /// The visualization.
    pub spec: PanelSpec,
}

impl Panel {
    /// Creates a panel.
    pub fn new(title: impl Into<String>, spec: PanelSpec) -> Self {
        Panel { title: title.into(), spec }
    }

    /// Renders the panel against a session index.
    pub fn render(&self, index: &Index) -> String {
        match &self.spec {
            PanelSpec::Table { columns, request } => {
                let response = index.search(request);
                let table = Table::new(columns.clone(), &response.hits);
                format!("### {} ({} events)\n{}", self.title, response.total, table.to_ascii())
            }
            PanelSpec::EventsOverTime { query, interval_ns, split_field } => {
                let mut agg = Aggregation::date_histogram("time", *interval_ns);
                if let Some(field) = split_field {
                    agg = agg.sub("split", Aggregation::terms(field, 32));
                }
                let response =
                    index.search(&SearchRequest::new(query.clone()).size(0).agg("t", agg));
                let buckets = response.aggs["t"].buckets();
                let mut chart = Chart::new(format!("### {}", self.title))
                    .y_label("syscalls per window")
                    .x_label(format!("time (windows of {} ms)", interval_ns / 1_000_000));
                match split_field {
                    None => {
                        let pts = buckets
                            .iter()
                            .map(|b| (b.key.as_f64().unwrap_or(0.0), b.doc_count as f64))
                            .collect();
                        chart = chart.series(Series::new("events", pts));
                    }
                    Some(_) => {
                        let mut names: Vec<String> = Vec::new();
                        for b in buckets {
                            for tb in b.sub["split"].buckets() {
                                let name = tb.key.as_str().unwrap_or("").to_string();
                                if !names.contains(&name) {
                                    names.push(name);
                                }
                            }
                        }
                        names.sort();
                        for name in names {
                            let pts = buckets
                                .iter()
                                .map(|b| {
                                    let count = b.sub["split"]
                                        .buckets()
                                        .iter()
                                        .find(|tb| tb.key.as_str() == Some(name.as_str()))
                                        .map_or(0.0, |tb| tb.doc_count as f64);
                                    (b.key.as_f64().unwrap_or(0.0), count)
                                })
                                .collect();
                            chart = chart.series(Series::new(name, pts));
                        }
                    }
                }
                chart.to_ascii(96, 16)
            }
            PanelSpec::ActivityHeatmap { query, interval_ns, split_field } => {
                let agg = Aggregation::date_histogram("time", *interval_ns)
                    .sub("split", Aggregation::terms(split_field, 32));
                let response =
                    index.search(&SearchRequest::new(query.clone()).size(0).agg("t", agg));
                let buckets = response.aggs["t"].buckets();
                let mut names: Vec<String> = Vec::new();
                for b in buckets {
                    for tb in b.sub["split"].buckets() {
                        let name = tb.key.as_str().unwrap_or("").to_string();
                        if !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
                names.sort();
                let mut heatmap =
                    Heatmap::new(format!("### {}", self.title)).normalize_per_row().col_labels([
                        format!(
                            "{}",
                            buckets.first().map_or(0.0, |b| b.key.as_f64().unwrap_or(0.0))
                        ),
                        format!(
                            "{}",
                            buckets.last().map_or(0.0, |b| b.key.as_f64().unwrap_or(0.0))
                        ),
                    ]);
                for name in names {
                    let values = buckets
                        .iter()
                        .map(|b| {
                            b.sub["split"]
                                .buckets()
                                .iter()
                                .find(|tb| tb.key.as_str() == Some(name.as_str()))
                                .map_or(0.0, |tb| tb.doc_count as f64)
                        })
                        .collect();
                    heatmap = heatmap.row(name, values);
                }
                heatmap.to_ascii()
            }
            PanelSpec::TopTerms { query, field, size } => {
                let response = index.search(
                    &SearchRequest::new(query.clone())
                        .size(0)
                        .agg("top", Aggregation::terms(field, *size)),
                );
                let bars = response.aggs["top"]
                    .buckets()
                    .iter()
                    .map(|b| (b.key.as_str().unwrap_or("?").to_string(), b.doc_count as f64));
                BarChart::new(format!("### {}", self.title)).bars(bars).to_ascii(48)
            }
        }
    }
}

/// A named collection of panels rendered against one session index.
#[derive(Debug, Clone)]
pub struct Dashboard {
    /// Dashboard name.
    pub name: String,
    /// Panels, rendered top to bottom.
    pub panels: Vec<Panel>,
}

impl Dashboard {
    /// Creates an empty dashboard.
    pub fn new(name: impl Into<String>) -> Self {
        Dashboard { name: name.into(), panels: Vec::new() }
    }

    /// Adds a panel.
    pub fn panel(mut self, panel: Panel) -> Self {
        self.panels.push(panel);
        self
    }

    /// Renders every panel against `index`.
    pub fn render(&self, index: &Index) -> String {
        let mut out = format!("== Dashboard: {} ==\n\n", self.name);
        for p in &self.panels {
            out.push_str(&p.render(index));
            out.push('\n');
        }
        out
    }
}

/// The predefined dashboards shipped with DIO.
pub mod dashboards {
    use super::*;

    /// The Fig. 2-style syscall table: time, process, syscall, return
    /// value, file tag, offset (and the correlated path).
    pub fn syscall_table(query: Query) -> Dashboard {
        Dashboard::new("syscall-table").panel(Panel::new(
            "Traced syscalls",
            PanelSpec::Table {
                columns: vec![
                    Column::new("time").grouped(),
                    Column::new("proc_name"),
                    Column::new("syscall"),
                    Column::new("ret_val").header("ret val"),
                    Column::new("file_tag").header("file_tag (dev|ino|timestamp)"),
                    Column::new("offset"),
                    Column::new("file_path"),
                ],
                request: SearchRequest::new(query).sort_by("time", SortOrder::Asc).size(10_000),
            },
        ))
    }

    /// The Fig. 4-style view: syscalls over time split by thread name,
    /// plus the same data as a heatmap.
    pub fn syscalls_over_time(query: Query, interval_ns: u64) -> Dashboard {
        Dashboard::new("syscalls-over-time")
            .panel(Panel::new(
                "Syscalls issued over time, by thread",
                PanelSpec::EventsOverTime {
                    query: query.clone(),
                    interval_ns,
                    split_field: Some("proc_name".to_string()),
                },
            ))
            .panel(Panel::new(
                "Thread activity heatmap",
                PanelSpec::ActivityHeatmap {
                    query,
                    interval_ns,
                    split_field: "proc_name".to_string(),
                },
            ))
    }

    /// Session overview: top syscalls and top threads.
    pub fn session_overview() -> Dashboard {
        Dashboard::new("session-overview")
            .panel(Panel::new(
                "Syscall mix",
                PanelSpec::TopTerms { query: Query::MatchAll, field: "syscall".into(), size: 42 },
            ))
            .panel(Panel::new(
                "Busiest threads",
                PanelSpec::TopTerms { query: Query::MatchAll, field: "proc_name".into(), size: 16 },
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample_index() -> Index {
        let idx = Index::new("t");
        let mut docs = Vec::new();
        for i in 0..10u64 {
            docs.push(json!({
                "time": 1_000_000_000u64 * (i / 2),
                "proc_name": if i % 2 == 0 { "db_bench" } else { "rocksdb:low0" },
                "syscall": if i % 3 == 0 { "read" } else { "write" },
                "ret_val": 4096,
                "file_tag": "1|10|5",
                "offset": i * 4096,
            }));
        }
        idx.bulk(docs);
        idx
    }

    #[test]
    fn table_dashboard_renders_events() {
        let idx = sample_index();
        let out = dashboards::syscall_table(Query::MatchAll).render(&idx);
        assert!(out.contains("db_bench"));
        assert!(out.contains("file_tag (dev|ino|timestamp)"));
        assert!(out.contains("10 events"));
    }

    #[test]
    fn time_series_dashboard_splits_by_thread() {
        let idx = sample_index();
        let out = dashboards::syscalls_over_time(Query::MatchAll, 1_000_000_000).render(&idx);
        assert!(out.contains("db_bench"));
        assert!(out.contains("rocksdb:low0"));
        assert!(out.contains("heatmap"));
    }

    #[test]
    fn overview_counts_terms() {
        let idx = sample_index();
        let out = dashboards::session_overview().render(&idx);
        assert!(out.contains("Syscall mix"));
        assert!(out.contains("read"));
        assert!(out.contains("write"));
    }

    #[test]
    fn events_over_time_without_split() {
        let idx = sample_index();
        let panel = Panel::new(
            "all",
            PanelSpec::EventsOverTime {
                query: Query::MatchAll,
                interval_ns: 1_000_000_000,
                split_field: None,
            },
        );
        let out = panel.render(&idx);
        assert!(out.contains("events"));
    }

    #[test]
    fn filtered_panel_respects_query() {
        let idx = sample_index();
        let panel = Panel::new(
            "reads",
            PanelSpec::Table {
                columns: vec![Column::new("syscall")],
                request: SearchRequest::new(Query::term("syscall", "read")),
            },
        );
        let out = panel.render(&idx);
        assert!(out.contains("4 events"));
        assert!(!out.contains("write"));
    }
}
