//! The pipeline-health dashboard, rendered from a session's
//! `dio-telemetry-<session>` index.
//!
//! Health documents are flat (`{session, seq, time, metric, kind, ...}`;
//! see the DESIGN.md "Self-telemetry" section), so this dashboard plots
//! metric *values* over export rounds rather than document counts — the
//! existing [`crate::PanelSpec`] shapes aggregate `doc_count` and cannot
//! express that.

use std::collections::BTreeMap;

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_telemetry::HistogramSnapshot;
use serde_json::{json, Value};

use crate::chart::{Chart, Series};

/// One metric observation inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricPoint {
    /// A monotonically increasing counter.
    Counter(u64),
    /// A last-value gauge.
    Gauge(u64),
    /// A latency/size distribution summary.
    Histogram(HistogramSnapshot),
}

impl MetricPoint {
    /// The scalar value used when plotting this metric over time
    /// (histograms plot their p99).
    pub fn plot_value(&self) -> f64 {
        match self {
            MetricPoint::Counter(v) | MetricPoint::Gauge(v) => *v as f64,
            MetricPoint::Histogram(h) => h.p99 as f64,
        }
    }

    /// Serializes the observation with its kind tag, mirroring the
    /// health-document schema.
    pub fn to_json(&self) -> Value {
        match self {
            MetricPoint::Counter(v) => json!({"kind": "counter", "value": *v}),
            MetricPoint::Gauge(v) => json!({"kind": "gauge", "value": *v}),
            MetricPoint::Histogram(h) => json!({
                "kind": "histogram",
                "count": h.count, "min": h.min, "max": h.max, "mean": h.mean,
                "p50": h.p50, "p90": h.p90, "p99": h.p99, "p999": h.p999,
            }),
        }
    }
}

/// One export round: every metric as of `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Export round number (1-based).
    pub seq: u64,
    /// Export wall-clock time (ns since the Unix epoch).
    pub time_ns: u64,
    /// Metric name → observation.
    pub metrics: BTreeMap<String, MetricPoint>,
}

impl HealthSnapshot {
    /// The observation for `metric` in this round, if present.
    pub fn get(&self, metric: &str) -> Option<&MetricPoint> {
        self.metrics.get(metric)
    }

    /// The scalar value of a counter or gauge metric (0 when absent).
    pub fn counter(&self, metric: &str) -> u64 {
        match self.get(metric) {
            Some(MetricPoint::Counter(v)) | Some(MetricPoint::Gauge(v)) => *v,
            _ => 0,
        }
    }
}

/// The parsed contents of a `dio-telemetry-<session>` index.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The session the documents belong to.
    pub session: String,
    /// Export rounds in `seq` order.
    pub snapshots: Vec<HealthSnapshot>,
}

fn u64_field(doc: &Value, key: &str) -> u64 {
    doc[key].as_u64().unwrap_or(0)
}

impl HealthReport {
    /// Loads every health document from `index` and groups it into
    /// per-round snapshots.
    pub fn from_index(index: &Index) -> HealthReport {
        let response = index.search(
            &SearchRequest::new(Query::MatchAll).sort_by("seq", SortOrder::Asc).size(usize::MAX),
        );
        let mut session = String::new();
        let mut rounds: BTreeMap<u64, HealthSnapshot> = BTreeMap::new();
        for hit in &response.hits {
            let doc = &hit.source;
            let Some(metric) = doc["metric"].as_str() else { continue };
            if session.is_empty() {
                session = doc["session"].as_str().unwrap_or("").to_string();
            }
            let seq = u64_field(doc, "seq");
            let point = match doc["kind"].as_str() {
                Some("counter") => MetricPoint::Counter(u64_field(doc, "value")),
                Some("gauge") => MetricPoint::Gauge(u64_field(doc, "value")),
                Some("histogram") => MetricPoint::Histogram(HistogramSnapshot {
                    count: u64_field(doc, "count"),
                    min: u64_field(doc, "min"),
                    max: u64_field(doc, "max"),
                    mean: doc["mean"].as_f64().unwrap_or(0.0),
                    p50: u64_field(doc, "p50"),
                    p90: u64_field(doc, "p90"),
                    p99: u64_field(doc, "p99"),
                    p999: u64_field(doc, "p999"),
                }),
                _ => continue,
            };
            let snap = rounds.entry(seq).or_insert_with(|| HealthSnapshot {
                seq,
                time_ns: u64_field(doc, "time"),
                metrics: BTreeMap::new(),
            });
            snap.metrics.insert(metric.to_string(), point);
        }
        HealthReport { session, snapshots: rounds.into_values().collect() }
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&HealthSnapshot> {
        self.snapshots.last()
    }

    /// Ring drop rate (`dropped / (pushed + dropped)`) in the latest
    /// snapshot.
    pub fn drop_rate(&self) -> f64 {
        let Some(last) = self.latest() else { return 0.0 };
        let pushed = last.counter("ebpf.ring.pushed");
        let dropped = last.counter("ebpf.ring.dropped");
        if pushed + dropped == 0 {
            0.0
        } else {
            dropped as f64 / (pushed + dropped) as f64
        }
    }

    /// Mean syscall dispatch rate (syscalls/s) across the trace, from the
    /// first and last snapshots.
    pub fn syscall_rate(&self) -> f64 {
        let (Some(first), Some(last)) = (self.snapshots.first(), self.latest()) else {
            return 0.0;
        };
        let dispatched = last.counter("kernel.syscalls.dispatched");
        let elapsed_ns = last.time_ns.saturating_sub(first.time_ns);
        if elapsed_ns == 0 {
            // Single snapshot: no time base, report the raw count.
            dispatched as f64
        } else {
            dispatched as f64 * 1e9 / elapsed_ns as f64
        }
    }

    /// A per-round time series of `metric` (histograms plot their p99).
    pub fn series(&self, metric: &str) -> Vec<(f64, f64)> {
        self.snapshots
            .iter()
            .filter_map(|s| s.get(metric).map(|p| (s.seq as f64, p.plot_value())))
            .collect()
    }

    /// Serializes the report (session, per-round snapshots, derived
    /// indicators) for the `/api/health` endpoint.
    pub fn to_json(&self) -> Value {
        let snapshots: Vec<Value> = self
            .snapshots
            .iter()
            .map(|s| {
                let metrics: serde_json::Map =
                    s.metrics.iter().map(|(name, p)| (name.clone(), p.to_json())).collect();
                json!({"seq": s.seq, "time_ns": s.time_ns, "metrics": Value::Object(metrics)})
            })
            .collect();
        json!({
            "session": self.session,
            "rounds": self.snapshots.len(),
            "drop_rate": self.drop_rate(),
            "syscall_rate": self.syscall_rate(),
            "snapshots": snapshots,
        })
    }
}

/// Renders the pipeline-health dashboard for a `dio-telemetry-<session>`
/// index: a summary table of the latest snapshot, derived indicators
/// (syscall rate, drop rate), stage-latency percentiles, and time series
/// of drop rate and queue depths across export rounds.
pub fn render_health_dashboard(index: &Index) -> String {
    let report = HealthReport::from_index(index);
    let mut out = format!(
        "== Dashboard: pipeline-health (session {}, {} export rounds) ==\n\n",
        report.session,
        report.snapshots.len()
    );
    let Some(last) = report.latest() else {
        out.push_str("no health documents\n");
        return out;
    };

    // --- Summary: scalar metrics at the end of the trace.
    out.push_str(&format!("### Health summary (seq {})\n", last.seq));
    let name_width = last.metrics.keys().map(String::len).max().unwrap_or(6).max("metric".len());
    out.push_str(&format!("{:<name_width$}  {:>9}  value\n", "metric", "kind"));
    for (name, point) in &last.metrics {
        match point {
            MetricPoint::Counter(v) => {
                out.push_str(&format!("{name:<name_width$}  {:>9}  {v}\n", "counter"));
            }
            MetricPoint::Gauge(v) => {
                out.push_str(&format!("{name:<name_width$}  {:>9}  {v}\n", "gauge"));
            }
            MetricPoint::Histogram(_) => {} // rendered below
        }
    }
    out.push('\n');

    // --- Stage latencies: percentile table over every histogram.
    out.push_str("### Stage latencies and sizes (histograms)\n");
    out.push_str(&format!(
        "{:<name_width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "metric", "count", "p50", "p90", "p99", "p999", "max"
    ));
    for (name, point) in &last.metrics {
        if let MetricPoint::Histogram(h) = point {
            out.push_str(&format!(
                "{name:<name_width$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                h.count, h.p50, h.p90, h.p99, h.p999, h.max
            ));
        }
    }
    out.push('\n');

    // --- Derived indicators.
    out.push_str("### Derived indicators\n");
    out.push_str(&format!("syscall dispatch rate: {:.0} syscalls/s\n", report.syscall_rate()));
    out.push_str(&format!(
        "ring drop rate: {:.2}% ({} dropped / {} pushed, occupancy high-water mark {})\n",
        report.drop_rate() * 100.0,
        last.counter("ebpf.ring.dropped"),
        last.counter("ebpf.ring.pushed"),
        last.counter("ebpf.ring.occupancy_hwm"),
    ));
    out.push('\n');

    // --- Storage engine: `kind: "storage"` reports shipped by
    // persistent sessions into the same telemetry index.
    if let Some(storage) = crate::storage::latest_storage_report(index) {
        let fsync_ns = last.get("backend.storage.fsync_ns");
        out.push_str(&crate::storage::render_storage_panel(&storage, fsync_ns));
        out.push('\n');
    }

    // --- Alert history: `kind: "alert"` documents shipped live by the
    // diagnosis engine into the same telemetry index.
    let alerts = index
        .search(
            &SearchRequest::new(Query::term("kind", "alert"))
                .sort_by("seq", SortOrder::Asc)
                .size(usize::MAX),
        )
        .hits;
    if !alerts.is_empty() {
        out.push_str(&format!("### Alert history ({} raised)\n", alerts.len()));
        for hit in &alerts {
            let d = &hit.source;
            out.push_str(&format!(
                "  [{:<8}] {:<20} t={} {} — {}\n",
                d["severity"].as_str().unwrap_or("?"),
                d["alert_kind"].as_str().unwrap_or("?"),
                d["time"].as_u64().unwrap_or(0),
                d["subject"].as_str().unwrap_or(""),
                d["message"].as_str().unwrap_or(""),
            ));
        }
        out.push('\n');
    }

    // --- Time series across export rounds.
    if report.snapshots.len() > 1 {
        let drop_series: Vec<(f64, f64)> = report
            .snapshots
            .iter()
            .map(|s| {
                let pushed = s.counter("ebpf.ring.pushed");
                let dropped = s.counter("ebpf.ring.dropped");
                let total = pushed + dropped;
                let rate = if total == 0 { 0.0 } else { dropped as f64 * 100.0 / total as f64 };
                (s.seq as f64, rate)
            })
            .collect();
        out.push_str(
            &Chart::new("### Ring drop rate over export rounds")
                .y_label("% dropped (cumulative)")
                .x_label("export round")
                .series(Series::new("drop %", drop_series))
                .to_ascii(96, 12),
        );
        out.push('\n');
        out.push_str(
            &Chart::new("### Queue depths over export rounds")
                .y_label("events queued")
                .x_label("export round")
                .series(Series::new("channel depth", report.series("tracer.channel.depth")))
                .series(Series::new("join map", report.series("ebpf.join.occupancy")))
                .to_ascii(96, 12),
        );
        out.push('\n');
        // Pipeline lag: how stale the backend view is at each export
        // round (upper bound on the oldest unshipped event's age).
        let lag = report.series("span.lag.watermark_ns");
        if !lag.is_empty() {
            let lag_us: Vec<(f64, f64)> = lag.into_iter().map(|(x, y)| (x, y / 1e3)).collect();
            out.push_str(
                &Chart::new("### Pipeline lag watermark over export rounds")
                    .y_label("lag (µs, oldest unshipped event age)")
                    .x_label("export round")
                    .series(Series::new("lag µs", lag_us))
                    .to_ascii(96, 12),
            );
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(seq: u64, time: u64, metric: &str, kind: &str, value: u64) -> Value {
        json!({
            "session": "s", "seq": seq, "time": time,
            "metric": metric, "kind": kind, "value": value,
        })
    }

    fn hist_doc(seq: u64, time: u64, metric: &str, p99: u64) -> Value {
        json!({
            "session": "s", "seq": seq, "time": time,
            "metric": metric, "kind": "histogram",
            "count": 10u64, "min": 1u64, "max": p99 * 2, "mean": 3.5,
            "p50": p99 / 2, "p90": p99, "p99": p99, "p999": p99,
        })
    }

    fn sample_index() -> Index {
        let idx = Index::new("dio-telemetry-s");
        let mut docs = Vec::new();
        for seq in 1..=3u64 {
            let t = 1_000_000_000 * seq;
            docs.push(doc(seq, t, "kernel.syscalls.dispatched", "counter", 100 * seq));
            docs.push(doc(seq, t, "ebpf.ring.pushed", "counter", 90 * seq));
            docs.push(doc(seq, t, "ebpf.ring.dropped", "counter", 10 * seq));
            docs.push(doc(seq, t, "ebpf.ring.occupancy_hwm", "gauge", 7));
            docs.push(doc(seq, t, "tracer.channel.depth", "gauge", 5 * seq));
            docs.push(doc(seq, t, "span.lag.watermark_ns", "gauge", 20_000 * seq));
            docs.push(hist_doc(seq, t, "tracer.shipper.batch_ns", 4_000));
        }
        idx.bulk(docs);
        idx
    }

    #[test]
    fn report_groups_rounds_and_derives_rates() {
        let report = HealthReport::from_index(&sample_index());
        assert_eq!(report.session, "s");
        assert_eq!(report.snapshots.len(), 3);
        assert_eq!(report.latest().unwrap().counter("ebpf.ring.pushed"), 270);
        assert!((report.drop_rate() - 0.1).abs() < 1e-9, "30 of 300 dropped");
        // 300 syscalls over 2 seconds of export span.
        assert!((report.syscall_rate() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn dashboard_renders_summary_latencies_and_series() {
        let out = render_health_dashboard(&sample_index());
        assert!(out.contains("pipeline-health"));
        assert!(out.contains("kernel.syscalls.dispatched"));
        assert!(out.contains("tracer.shipper.batch_ns"));
        assert!(out.contains("ring drop rate: 10.00%"));
        assert!(out.contains("occupancy high-water mark 7"));
        assert!(out.contains("drop rate over export rounds"));
        assert!(out.contains("Queue depths over export rounds"));
        assert!(out.contains("Pipeline lag watermark over export rounds"));
    }

    #[test]
    fn span_documents_are_skipped_but_lag_series_plots() {
        let idx = sample_index();
        // A sampled full-span document (no `metric` field) must not
        // disturb the health report.
        idx.bulk(vec![json!({
            "session": "s", "kind": "span",
            "stamps": {"kernel_dispatch": 1u64},
            "stage_ns": {"dispatch_to_push": 5u64},
        })]);
        let report = HealthReport::from_index(&idx);
        assert_eq!(report.snapshots.len(), 3);
        let lag = report.series("span.lag.watermark_ns");
        assert_eq!(lag.len(), 3);
        assert_eq!(lag[2].1, 60_000.0);
    }

    #[test]
    fn alert_documents_render_as_history_panel() {
        let idx = sample_index();
        idx.bulk(vec![json!({
            "session": "s", "kind": "alert", "seq": 0u64,
            "detector": "data_loss", "alert_kind": "data_loss",
            "severity": "critical", "time": 42u64,
            "subject": "/var/log/app.log",
            "message": "read resumed at stale offset 26",
        })]);
        let out = render_health_dashboard(&idx);
        assert!(out.contains("Alert history (1 raised)"));
        assert!(out.contains("[critical] data_loss"));
        assert!(out.contains("/var/log/app.log"));
        // The alert doc must not pollute the metric snapshots.
        assert_eq!(HealthReport::from_index(&idx).snapshots.len(), 3);
    }

    #[test]
    fn storage_document_renders_storage_panel() {
        let idx = sample_index();
        let report = dio_backend::StorageReport { shards: 2, fsyncs: 9, ..Default::default() };
        idx.bulk(vec![report.to_document()]);
        let out = render_health_dashboard(&idx);
        assert!(out.contains("### Storage engine"), "{out}");
        assert!(out.contains("fsyncs 9"), "{out}");
        // The storage doc must not pollute the metric snapshots.
        assert_eq!(HealthReport::from_index(&idx).snapshots.len(), 3);
    }

    #[test]
    fn empty_index_renders_placeholder() {
        let out = render_health_dashboard(&Index::new("dio-telemetry-x"));
        assert!(out.contains("no health documents"));
    }

    #[test]
    fn histogram_series_plot_p99() {
        let report = HealthReport::from_index(&sample_index());
        let series = report.series("tracer.shipper.batch_ns");
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|&(_, v)| v == 4_000.0));
    }
}
