#![warn(missing_docs)]

//! DIO's visualizer component: a text-mode Kibana.
//!
//! "The *visualizer* provides an automated approach towards exploring ...
//! and visually depicting (e.g., through tables, histograms, time-series
//! graphs) the analysis findings" (§II-D). This crate renders the same
//! artifacts to text and CSV:
//!
//! * [`Table`] — Fig. 2-style event tables with grouped timestamps;
//! * [`Chart`] / [`BarChart`] / [`Heatmap`] — Fig. 3/4-style time series,
//!   distribution bars, and thread-activity heatmaps;
//! * [`Dashboard`] — named panels bound to backend queries, including the
//!   [`dashboards`] predefined with DIO;
//! * [`render_latency_waterfall`] — per-stage p50/p99 bars and the
//!   end-to-end latency distribution of the pipeline's own event spans;
//! * [`render_top`] — the `dio top` live view: per-process syscall rates
//!   with activity sparklines, hottest files, and active alerts from the
//!   streaming diagnosis engine;
//! * [`render_storage_panel`] / [`render_compaction_timeline`] — the
//!   storage engine's occupancy, compaction debt, fsync latency, and
//!   compaction phase timeline for persistent sessions.

mod chart;
mod dashboard;
mod health;
mod storage;
mod table;
mod top;
mod waterfall;

pub use chart::{BarChart, Chart, Heatmap, Series};
pub use dashboard::{dashboards, Dashboard, Panel, PanelSpec};
pub use health::{render_health_dashboard, HealthReport, HealthSnapshot, MetricPoint};
pub use storage::{latest_storage_report, render_compaction_timeline, render_storage_panel};
pub use table::{group_digits, CellFormat, Column, Table};
pub use top::{
    render_alert_history, render_dfg_panel, render_rules_panel, render_top, render_top_snapshot,
    sparkline, top_snapshot, TopFile, TopOptions, TopProcess, TopSnapshot,
};
pub use waterfall::render_latency_waterfall;
