//! The storage-engine observability panel.
//!
//! Persistent sessions ship `kind: "storage"` documents
//! ([`StorageReport::to_document`]) into the same telemetry index the
//! health dashboard reads. This module renders them: per-shard segment
//! and byte occupancy, compaction debt against the engine's dead-byte
//! ratio, fsync counts and latency, and — when a flight-recorder
//! snapshot is at hand — a timeline of compaction phases reconstructed
//! from `storage.compact` spans and their children.

use dio_backend::{Index, Query, SearchRequest, SortOrder, StorageReport};
use dio_telemetry::trace::TraceSpan;

use crate::health::MetricPoint;

/// The most recent `kind: "storage"` document in `index`, parsed back
/// into a [`StorageReport`] (`None` when the session was in-memory).
pub fn latest_storage_report(index: &Index) -> Option<StorageReport> {
    let response = index.search(
        &SearchRequest::new(Query::term("kind", "storage"))
            .sort_by("seq", SortOrder::Asc)
            .size(usize::MAX),
    );
    response.hits.last().and_then(|hit| StorageReport::from_document(&hit.source))
}

fn fmt_bytes(b: u64) -> String {
    if b >= 10 * 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 10 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the storage panel: engine totals, compaction debt, per-shard
/// occupancy, and (when provided) the `backend.storage.fsync_ns`
/// histogram from the health snapshot.
pub fn render_storage_panel(report: &StorageReport, fsync_ns: Option<&MetricPoint>) -> String {
    let mut out = String::from("### Storage engine\n");
    let t = &report.totals;
    out.push_str(&format!(
        "shards {}  segments {}  live keys {}  sealed {}  active {}  dead {} ({:.1}% debt)\n",
        report.shards,
        t.segments,
        t.live_keys,
        fmt_bytes(t.sealed_bytes),
        fmt_bytes(t.active_bytes),
        fmt_bytes(t.dead_bytes),
        report.dead_ratio() * 100.0,
    ));
    out.push_str(&format!(
        "lifetime: appended {}  fsyncs {}  seals {}  compactions {} ({} rewritten)\n",
        fmt_bytes(report.bytes_appended),
        report.fsyncs,
        report.segments_sealed,
        report.compactions,
        fmt_bytes(report.compacted_bytes),
    ));
    out.push_str(&format!(
        "recovery: {} torn tails truncated, {} hint files rebuilt\n",
        report.recovery_truncated, report.hints_rewritten,
    ));
    if let Some(MetricPoint::Histogram(h)) = fsync_ns {
        out.push_str(&format!(
            "fsync latency: {} syncs, p50 {}, p99 {}, max {}\n",
            h.count,
            fmt_ns(h.p50),
            fmt_ns(h.p99),
            fmt_ns(h.max),
        ));
    }

    if !report.per_shard.is_empty() {
        out.push_str(&format!(
            "\n{:>5}  {:>8}  {:>9}  {:>10}  {:>10}  {:>10}  dead%\n",
            "shard", "segments", "live keys", "sealed", "active", "dead"
        ));
        for (k, s) in report.per_shard.iter().enumerate() {
            let stored = s.sealed_bytes + s.active_bytes;
            let debt = if stored == 0 { 0.0 } else { s.dead_bytes as f64 * 100.0 / stored as f64 };
            out.push_str(&format!(
                "{k:>5}  {:>8}  {:>9}  {:>10}  {:>10}  {:>10}  {debt:>4.1}\n",
                s.segments,
                s.live_keys,
                fmt_bytes(s.sealed_bytes),
                fmt_bytes(s.active_bytes),
                fmt_bytes(s.dead_bytes),
            ));
        }
    }
    out
}

/// Renders an ASCII timeline of compaction runs found in `spans`: one
/// row per `storage.compact` span, with its `compact.*` phase children
/// positioned proportionally inside the run. Returns an empty string
/// when no compaction spans are present.
pub fn render_compaction_timeline(spans: &[TraceSpan]) -> String {
    const WIDTH: usize = 40;
    let mut compacts: Vec<&TraceSpan> =
        spans.iter().filter(|s| s.name == "storage.compact").collect();
    if compacts.is_empty() {
        return String::new();
    }
    compacts.sort_by_key(|s| s.start_ns);
    let mut out = format!("### Compaction timeline ({} runs)\n", compacts.len());
    for (i, run) in compacts.iter().enumerate() {
        let shard = run.attrs.get("shard").map(|v| v.to_string()).unwrap_or_default();
        out.push_str(&format!(
            "run {:>2}  shard {:<3} total {:>9}\n",
            i + 1,
            shard,
            fmt_ns(run.duration_ns()),
        ));
        let total = run.duration_ns().max(1);
        let mut phases: Vec<&TraceSpan> = spans
            .iter()
            .filter(|s| s.parent_id == run.span_id && s.name.starts_with("compact."))
            .collect();
        phases.sort_by_key(|s| s.start_ns);
        for phase in phases {
            let begin = phase.start_ns.saturating_sub(run.start_ns).min(total);
            let len = phase.duration_ns().min(total - begin);
            let from = (begin as f64 / total as f64 * WIDTH as f64).floor() as usize;
            let cells = ((len as f64 / total as f64 * WIDTH as f64).ceil() as usize)
                .max(1)
                .min(WIDTH - from.min(WIDTH - 1));
            let mut bar = vec![' '; WIDTH];
            for cell in bar.iter_mut().skip(from).take(cells) {
                *cell = '#';
            }
            let label = phase.name.strip_prefix("compact.").unwrap_or(phase.name);
            out.push_str(&format!(
                "  {label:<8} [{}] {:>9}\n",
                bar.into_iter().collect::<String>(),
                fmt_ns(phase.duration_ns()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_backend::ShardReport;
    use dio_telemetry::trace::Attrs;

    fn report() -> StorageReport {
        let shard0 = ShardReport {
            segments: 3,
            live_keys: 100,
            sealed_bytes: 4096,
            dead_bytes: 1024,
            active_bytes: 512,
        };
        let shard1 = ShardReport { segments: 1, live_keys: 7, ..Default::default() };
        let mut totals = shard0;
        totals.merge(&shard1);
        StorageReport {
            shards: 2,
            totals,
            per_shard: vec![shard0, shard1],
            recovery_truncated: 1,
            hints_rewritten: 2,
            segments_sealed: 5,
            compactions: 3,
            compacted_bytes: 2048,
            bytes_appended: 9000,
            fsyncs: 42,
        }
    }

    #[test]
    fn panel_shows_totals_and_per_shard_rows() {
        let out = render_storage_panel(&report(), None);
        assert!(out.contains("### Storage engine"), "{out}");
        assert!(out.contains("shards 2"), "{out}");
        assert!(out.contains("fsyncs 42"), "{out}");
        assert!(out.contains("1 torn tails truncated, 2 hint files rebuilt"), "{out}");
        // Two per-shard rows, indexed 0 and 1.
        assert!(out.lines().any(|l| l.trim_start().starts_with("0 ")), "{out}");
        assert!(out.lines().any(|l| l.trim_start().starts_with("1 ")), "{out}");
    }

    #[test]
    fn panel_renders_fsync_histogram_line() {
        let point = MetricPoint::Histogram(dio_telemetry::HistogramSnapshot {
            count: 42,
            min: 1_000,
            max: 9_000_000,
            mean: 2e5,
            p50: 150_000,
            p90: 400_000,
            p99: 1_500_000,
            p999: 8_000_000,
        });
        let out = render_storage_panel(&report(), Some(&point));
        assert!(out.contains("fsync latency: 42 syncs"), "{out}");
        assert!(out.contains("p50 150.0µs"), "{out}");
    }

    #[test]
    fn storage_report_round_trips_through_documents() {
        let report = report();
        let idx = Index::new("dio-telemetry-s");
        idx.bulk(vec![report.to_document()]);
        let back = latest_storage_report(&idx).expect("storage doc parses");
        assert_eq!(back.fsyncs, 42);
        assert_eq!(back.per_shard.len(), 2);
        assert_eq!(back.totals.live_keys, 107);
        // Health-metric readers must skip the storage doc (no `metric`).
        assert!(latest_storage_report(&Index::new("empty")).is_none());
    }

    fn span(name: &'static str, span_id: u64, parent_id: u64, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            trace_id: 1,
            span_id,
            parent_id,
            category: "storage",
            name,
            start_ns: start,
            end_ns: end,
            thread: 0,
            emit_seq: span_id,
            attrs: Attrs::default(),
        }
    }

    #[test]
    fn compaction_timeline_orders_phases() {
        let spans = vec![
            span("storage.compact", 10, 0, 1_000, 101_000),
            span("compact.rotate", 11, 10, 1_000, 11_000),
            span("compact.merge", 12, 10, 11_000, 81_000),
            span("compact.delete", 13, 10, 95_000, 101_000),
            span("storage.append", 99, 0, 0, 50),
        ];
        let out = render_compaction_timeline(&spans);
        assert!(out.contains("Compaction timeline (1 runs)"), "{out}");
        let rotate = out.find("rotate").unwrap();
        let merge = out.find("merge").unwrap();
        let delete = out.find("delete").unwrap();
        assert!(rotate < merge && merge < delete, "{out}");
        assert!(!out.contains("append"), "unrelated spans excluded: {out}");
    }

    #[test]
    fn compaction_timeline_empty_without_compactions() {
        assert_eq!(render_compaction_timeline(&[]), "");
        let spans = vec![span("storage.append", 1, 0, 0, 10)];
        assert_eq!(render_compaction_timeline(&spans), "");
    }
}
