//! Tabular visualizations (the Fig. 2 style).

use serde_json::Value;

use dio_backend::{get_path, Hit};

/// How a cell value is formatted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellFormat {
    /// Strings verbatim, numbers via `Display`.
    #[default]
    Auto,
    /// Integers with thousands separators (`1,679,308,382,363,981,568`),
    /// matching the paper's Kibana tables.
    Grouped,
}

/// One table column bound to a document field.
#[derive(Debug, Clone)]
pub struct Column {
    /// Dotted field path into the document.
    pub field: String,
    /// Header label.
    pub header: String,
    /// Cell format.
    pub format: CellFormat,
}

impl Column {
    /// A column whose header equals its field name.
    pub fn new(field: impl Into<String>) -> Self {
        let field = field.into();
        Column { header: field.clone(), field, format: CellFormat::Auto }
    }

    /// Overrides the header label.
    pub fn header(mut self, header: impl Into<String>) -> Self {
        self.header = header.into();
        self
    }

    /// Uses grouped (thousands-separated) number formatting.
    pub fn grouped(mut self) -> Self {
        self.format = CellFormat::Grouped;
        self
    }
}

/// Formats an integer with thousands separators.
pub fn group_digits(n: i128) -> String {
    let raw = n.unsigned_abs().to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3 + 1);
    if n < 0 {
        out.push('-');
    }
    let lead = raw.len() % 3;
    for (i, c) in raw.chars().enumerate() {
        if i != 0 && (i + 3 - lead).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

fn format_cell(value: Option<&Value>, format: CellFormat) -> String {
    let Some(v) = value else {
        return String::new();
    };
    match (format, v) {
        (CellFormat::Grouped, Value::Number(n)) => {
            if let Some(i) = n.as_i64() {
                group_digits(i as i128)
            } else if let Some(u) = n.as_u64() {
                group_digits(u as i128)
            } else {
                n.to_string()
            }
        }
        (_, Value::String(s)) => s.clone(),
        (_, other) => other.to_string(),
    }
}

/// A rendered table of search hits.
///
/// # Examples
///
/// ```
/// use dio_viz::{Column, Table};
/// use dio_backend::Hit;
/// use serde_json::json;
///
/// let hits = vec![Hit { id: 0, source: json!({"syscall": "write", "ret_val": 26}) }];
/// let table = Table::new([Column::new("syscall"), Column::new("ret_val")], &hits);
/// assert!(table.to_ascii().contains("write"));
/// assert_eq!(table.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Builds a table by projecting `columns` out of `hits`.
    pub fn new(columns: impl IntoIterator<Item = Column>, hits: &[Hit]) -> Self {
        let columns: Vec<Column> = columns.into_iter().collect();
        let headers = columns.iter().map(|c| c.header.clone()).collect();
        let rows = hits
            .iter()
            .map(|hit| {
                columns
                    .iter()
                    .map(|c| format_cell(get_path(&hit.source, &c.field), c.format))
                    .collect()
            })
            .collect();
        Table { headers, rows }
    }

    /// Builds a table from pre-rendered rows.
    pub fn from_rows(
        headers: impl IntoIterator<Item = impl Into<String>>,
        rows: Vec<Vec<String>>,
    ) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.chars().count());
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(0);
                out.push(' ');
                out.push_str(cell);
                for _ in cell.chars().count()..w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        let rule = |out: &mut String| {
            out.push('+');
            for w in &widths {
                for _ in 0..w + 2 {
                    out.push('-');
                }
                out.push('+');
            }
            out.push('\n');
        };
        rule(&mut out);
        render_row(&self.headers, &mut out);
        rule(&mut out);
        for row in &self.rows {
            render_row(row, &mut out);
        }
        rule(&mut out);
        out
    }

    /// Renders CSV (header row + data rows, comma-escaped).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn hits() -> Vec<Hit> {
        vec![
            Hit {
                id: 0,
                source: json!({
                    "time": 1_679_308_382_363_981_568u64,
                    "proc_name": "app",
                    "syscall": "write",
                    "ret_val": 26,
                    "offset": 0,
                }),
            },
            Hit {
                id: 1,
                source: json!({
                    "time": 1_679_308_386_889_688_320u64,
                    "proc_name": "fluent-bit",
                    "syscall": "read",
                    "ret_val": 26,
                }),
            },
        ]
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_679_308_382_363_981_568), "1,679,308,382,363,981,568");
        assert_eq!(group_digits(-12_345), "-12,345");
    }

    #[test]
    fn paper_style_table() {
        let table = Table::new(
            [
                Column::new("time").grouped(),
                Column::new("proc_name"),
                Column::new("syscall"),
                Column::new("ret_val").header("ret val"),
                Column::new("offset"),
            ],
            &hits(),
        );
        let ascii = table.to_ascii();
        assert!(ascii.contains("1,679,308,382,363,981,568"));
        assert!(ascii.contains("fluent-bit"));
        assert!(ascii.contains("ret val"));
        // Missing offset renders as an empty cell, not a panic.
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn csv_escaping() {
        let table = Table::from_rows(
            ["a", "b"],
            vec![vec!["x,y".to_string(), "he said \"hi\"".to_string()]],
        );
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn alignment_pads_columns() {
        let table =
            Table::from_rows(["col"], vec![vec!["short".into()], vec!["much longer".into()]]);
        let ascii = table.to_ascii();
        let lines: Vec<&str> = ascii.lines().collect();
        let widths: std::collections::HashSet<usize> = lines.iter().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "all lines equal width:\n{ascii}");
    }

    #[test]
    fn empty_table() {
        let table = Table::new([Column::new("x")], &[]);
        assert!(table.is_empty());
        assert!(table.to_ascii().contains('x'));
    }
}
