//! `dio top` — the live view of a running tracing session.
//!
//! Renders, from the session's event index plus the diagnosis engine's
//! alert feed, a `top(1)`-style screen: per-process syscall rates with
//! latency sparklines, the hottest files, and the currently active
//! alerts. The screen describes one *window* of trailing activity
//! ([`TopOptions::window_ns`]) ending at "now" (the newest event time
//! unless pinned via [`TopOptions::now_ns`], which the golden-snapshot
//! test uses for determinism).

use std::collections::BTreeMap;

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_diagnose::Alert;
use dio_telemetry::quantile_sorted;
use serde_json::{json, Value};

/// Tuning knobs for [`render_top`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopOptions {
    /// Width of the trailing window the screen describes (default 1 s).
    pub window_ns: u64,
    /// Maximum rows per table (default 10).
    pub rows: usize,
    /// Buckets in each activity sparkline (default 16).
    pub spark_buckets: usize,
    /// Pins "now"; `None` uses the newest event time in the index.
    pub now_ns: Option<u64>,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { window_ns: 1_000_000_000, rows: 10, spark_buckets: 16, now_ns: None }
    }
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a unicode block-character sparkline of `values`, scaled to the
/// maximum value (an all-zero series renders as a flat baseline).
///
/// # Examples
///
/// ```
/// assert_eq!(dio_viz::sparkline(&[0.0, 1.0, 2.0, 4.0]), "▁▃▅█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                SPARK_LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[derive(Default)]
struct ProcRow {
    ops: u64,
    errors: u64,
    latencies: Vec<u64>,
    buckets: Vec<f64>,
}

#[derive(Default)]
struct FileRow {
    ops: u64,
    reads: u64,
    writes: u64,
    errors: u64,
}

/// One process row of a [`TopSnapshot`], busiest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TopProcess {
    /// Process id.
    pub pid: u64,
    /// Process name (`?` when unknown).
    pub name: String,
    /// Syscalls in the window.
    pub ops: u64,
    /// Syscall rate over the window.
    pub ops_per_sec: f64,
    /// Failed syscalls (negative return) in the window.
    pub errors: u64,
    /// Median syscall latency (ns) in the window.
    pub p50_ns: u64,
    /// 95th-percentile syscall latency (ns).
    pub p95_ns: u64,
    /// 99th-percentile syscall latency (ns).
    pub p99_ns: u64,
    /// Ops per sparkline bucket across the window.
    pub activity: Vec<f64>,
}

/// One file row of a [`TopSnapshot`], busiest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TopFile {
    /// File path (or tag) the syscalls targeted.
    pub path: String,
    /// Syscalls touching the file in the window.
    pub ops: u64,
    /// Read-class syscalls.
    pub reads: u64,
    /// Write-class syscalls.
    pub writes: u64,
    /// Failed syscalls.
    pub errors: u64,
}

/// The data behind one `dio top` screen: the trailing-window process and
/// file aggregates plus the alerts handed in. [`render_top`] draws it;
/// [`TopSnapshot::to_json`] serves it as `/api/top`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopSnapshot {
    /// The event index the window was read from.
    pub index: String,
    /// End of the window (ns).
    pub now_ns: u64,
    /// Window width (ns).
    pub window_ns: u64,
    /// Total syscalls observed in the window.
    pub total_ops: u64,
    /// Busiest processes, at most `opts.rows`.
    pub processes: Vec<TopProcess>,
    /// Busiest files, at most `opts.rows`.
    pub files: Vec<TopFile>,
    /// The alerts supplied by the caller (active or historical).
    pub alerts: Vec<Alert>,
}

impl TopSnapshot {
    /// Serializes the snapshot for the `/api/top` endpoint.
    pub fn to_json(&self) -> Value {
        let processes: Vec<Value> = self
            .processes
            .iter()
            .map(|p| {
                json!({
                    "pid": p.pid, "name": p.name, "ops": p.ops,
                    "ops_per_sec": p.ops_per_sec, "errors": p.errors,
                    "p50_ns": p.p50_ns, "p95_ns": p.p95_ns, "p99_ns": p.p99_ns,
                    "activity": p.activity,
                })
            })
            .collect();
        let files: Vec<Value> = self
            .files
            .iter()
            .map(|f| {
                json!({
                    "path": f.path, "ops": f.ops, "reads": f.reads,
                    "writes": f.writes, "errors": f.errors,
                })
            })
            .collect();
        let alerts: Vec<Value> = self.alerts.iter().map(Alert::to_document).collect();
        json!({
            "index": self.index,
            "now_ns": self.now_ns,
            "window_ns": self.window_ns,
            "total_ops": self.total_ops,
            "processes": processes,
            "files": files,
            "alerts": alerts,
        })
    }
}

fn window_events(index: &Index, start_ns: u64, end_ns: u64) -> Vec<Value> {
    let query = Query::bool_query()
        .must(Query::range("time").gte(start_ns as f64).lte(end_ns as f64).build())
        .build();
    index
        .search(&SearchRequest::new(query).sort_by("time", SortOrder::Asc).size(usize::MAX))
        .hits
        .into_iter()
        .map(|h| h.source)
        .collect()
}

fn newest_event_time(index: &Index) -> u64 {
    index
        .search(&SearchRequest::new(Query::MatchAll).sort_by("time", SortOrder::Desc).size(1))
        .hits
        .first()
        .map(|h| h.source["time"].as_u64().unwrap_or(0))
        .unwrap_or(0)
}

/// Aggregates one trailing window of `index` into a [`TopSnapshot`] —
/// the shared substrate of [`render_top`] (ANSI) and `/api/top` (JSON).
///
/// The caller decides which alerts to include — pass
/// [`dio_diagnose::DiagnosisEngine::active_alerts`] for the live view, or
/// the full history for a post-mortem.
pub fn top_snapshot(index: &Index, alerts: &[Alert], opts: &TopOptions) -> TopSnapshot {
    let now_ns = opts.now_ns.unwrap_or_else(|| newest_event_time(index));
    let start_ns = now_ns.saturating_sub(opts.window_ns.max(1));
    let events = window_events(index, start_ns, now_ns);
    let window_s = opts.window_ns.max(1) as f64 / 1e9;
    let buckets = opts.spark_buckets.max(1);
    let bucket_ns = (opts.window_ns.max(1) / buckets as u64).max(1);

    let mut procs: BTreeMap<(u64, String), ProcRow> = BTreeMap::new();
    let mut files: BTreeMap<String, FileRow> = BTreeMap::new();
    for doc in &events {
        let pid = doc["pid"].as_u64().unwrap_or(0);
        let name = doc["proc_name"].as_str().unwrap_or("?").to_string();
        let row = procs.entry((pid, name)).or_default();
        row.ops += 1;
        if doc["ret_val"].as_i64().unwrap_or(0) < 0 {
            row.errors += 1;
        }
        if let Some(lat) = doc["latency_ns"].as_u64() {
            row.latencies.push(lat);
        }
        if row.buckets.is_empty() {
            row.buckets = vec![0.0; buckets];
        }
        let t = doc["time"].as_u64().unwrap_or(0).saturating_sub(start_ns);
        let slot = ((t / bucket_ns) as usize).min(buckets - 1);
        row.buckets[slot] += 1.0;

        let file = doc["file_path"]
            .as_str()
            .or_else(|| doc["file_tag"].as_str())
            .unwrap_or("")
            .to_string();
        if !file.is_empty() {
            let frow = files.entry(file).or_default();
            frow.ops += 1;
            match doc["syscall"].as_str() {
                Some("read" | "pread64" | "readv") => frow.reads += 1,
                Some("write" | "pwrite64" | "writev") => frow.writes += 1,
                _ => {}
            }
            if doc["ret_val"].as_i64().unwrap_or(0) < 0 {
                frow.errors += 1;
            }
        }
    }

    let mut proc_rows: Vec<_> = procs.into_iter().collect();
    proc_rows.sort_by(|a, b| b.1.ops.cmp(&a.1.ops).then_with(|| a.0.cmp(&b.0)));
    let processes = proc_rows
        .into_iter()
        .take(opts.rows)
        .map(|((pid, name), mut row)| {
            row.latencies.sort_unstable();
            TopProcess {
                pid,
                name,
                ops: row.ops,
                ops_per_sec: row.ops as f64 / window_s,
                errors: row.errors,
                p50_ns: quantile_sorted(&row.latencies, 0.50),
                p95_ns: quantile_sorted(&row.latencies, 0.95),
                p99_ns: quantile_sorted(&row.latencies, 0.99),
                activity: row.buckets,
            }
        })
        .collect();

    let mut file_rows: Vec<_> = files.into_iter().collect();
    file_rows.sort_by(|a, b| b.1.ops.cmp(&a.1.ops).then_with(|| a.0.cmp(&b.0)));
    let files = file_rows
        .into_iter()
        .take(opts.rows)
        .map(|(path, row)| TopFile {
            path,
            ops: row.ops,
            reads: row.reads,
            writes: row.writes,
            errors: row.errors,
        })
        .collect();

    TopSnapshot {
        index: index.name().to_string(),
        now_ns,
        window_ns: opts.window_ns.max(1),
        total_ops: events.len() as u64,
        processes,
        files,
        alerts: alerts.to_vec(),
    }
}

/// Renders the `dio top` screen over `index` (a session's `dio-<session>`
/// event index) and the engine's current `alerts`.
///
/// The caller decides which alerts to show — pass
/// [`dio_diagnose::DiagnosisEngine::active_alerts`] for the live view, or
/// the full history for a post-mortem.
pub fn render_top(index: &Index, alerts: &[Alert], opts: &TopOptions) -> String {
    render_top_snapshot(&top_snapshot(index, alerts, opts))
}

/// Renders an already-built [`TopSnapshot`] as the `dio top` screen.
pub fn render_top_snapshot(snap: &TopSnapshot) -> String {
    let window_s = snap.window_ns.max(1) as f64 / 1e9;
    let mut out = format!(
        "== dio top — {} ({} syscalls in the last {:.1}s, t = {} ns) ==\n\n",
        snap.index, snap.total_ops, window_s, snap.now_ns,
    );

    // --- Per-process table, busiest first.
    out.push_str("### Processes\n");
    out.push_str(&format!(
        "{:>7}  {:<16} {:>7} {:>9} {:>5} {:>9} {:>9}  activity\n",
        "pid", "process", "ops", "ops/s", "err", "p50(µs)", "p99(µs)"
    ));
    for p in &snap.processes {
        out.push_str(&format!(
            "{:>7}  {:<16} {:>7} {:>9.0} {:>5} {:>9.1} {:>9.1}  {}\n",
            p.pid,
            p.name,
            p.ops,
            p.ops_per_sec,
            p.errors,
            p.p50_ns as f64 / 1e3,
            p.p99_ns as f64 / 1e3,
            sparkline(&p.activity),
        ));
    }
    out.push('\n');

    // --- Per-file table, busiest first.
    out.push_str("### Files\n");
    out.push_str(&format!(
        "{:<40} {:>7} {:>7} {:>7} {:>5}\n",
        "file", "ops", "reads", "writes", "err"
    ));
    for f in &snap.files {
        out.push_str(&format!(
            "{:<40} {:>7} {:>7} {:>7} {:>5}\n",
            f.path, f.ops, f.reads, f.writes, f.errors
        ));
    }
    out.push('\n');

    // --- Active alerts.
    if snap.alerts.is_empty() {
        out.push_str("### Alerts\nnone active\n");
    } else {
        out.push_str(&format!("### Alerts ({} active)\n", snap.alerts.len()));
        out.push_str(&render_alert_rows(&snap.alerts));
    }
    out
}

fn render_alert_rows(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&format!(
            "  [{:<8}] {:<20} t={} {} — {}\n",
            a.severity.as_str(),
            a.kind.as_str(),
            a.time_ns,
            a.subject,
            a.message
        ));
    }
    out
}

/// Renders the loaded diagnosis rules as a `dio top` panel: one row per
/// rule with its trigger and live fire/suppress counters.
///
/// `reports` is the engine's per-rule status
/// ([`dio_diagnose::DiagnosisEngine::dynamic_reports`], one JSON object
/// per rule); the same documents back `/api/rules` on the introspection
/// server.
pub fn render_rules_panel(reports: &[Value]) -> String {
    let mut out = format!("### Rules ({} loaded)\n", reports.len());
    if reports.is_empty() {
        out.push_str("no rule files loaded\n");
        return out;
    }
    out.push_str(&format!(
        "{:<24} {:<18} {:>9} {:>7} {:>7} {:>7}\n",
        "rule", "trigger", "evaluated", "fired", "supp", "rec"
    ));
    for r in reports {
        let mut trigger = r["trigger"].as_str().unwrap_or("?").to_string();
        if let Some(key) = r["key"].as_str() {
            trigger.push_str(&format!(" by {key}"));
        }
        out.push_str(&format!(
            "{:<24} {:<18} {:>9} {:>7} {:>7} {:>7}\n",
            r["rule"].as_str().unwrap_or("?"),
            trigger,
            r["evaluated"].as_u64().unwrap_or(0),
            r["fired"].as_u64().unwrap_or(0),
            r["suppressed"].as_u64().unwrap_or(0),
            r["records"].as_u64().unwrap_or(0),
        ));
    }
    out
}

/// Renders a streaming DFG snapshot as a `dio top` panel: the busiest
/// directly-follows edges of the global graph with their latency and
/// inter-arrival percentiles.
///
/// `snapshot` is the miner's serialized [`DfgSnapshot`] (the same JSON
/// `/api/dfg` serves), passed as a [`Value`] so the renderer needs no
/// `dio-profile` dependency.
///
/// [`DfgSnapshot`]: https://docs.rs/dio-profile
pub fn render_dfg_panel(snapshot: &Value) -> String {
    let transitions = snapshot["transitions"].as_u64().unwrap_or(0);
    let shifts = snapshot["phase_shifts"].as_u64().unwrap_or(0);
    let mut out = format!("### DFG ({transitions} transitions, {shifts} phase shifts)\n");
    let edges = snapshot["global"]["edges"].as_array().cloned().unwrap_or_default();
    if edges.is_empty() {
        out.push_str("no transitions mined\n");
        return out;
    }
    let mut rows: Vec<&Value> = edges.iter().collect();
    rows.sort_by_key(|e| std::cmp::Reverse(e["count"].as_u64().unwrap_or(0)));
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}\n",
        "edge", "count", "lat p50", "lat p99", "gap p50"
    ));
    for edge in rows.iter().take(10) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}\n",
            format!(
                "{}->{}",
                edge["from"].as_str().unwrap_or("?"),
                edge["to"].as_str().unwrap_or("?")
            ),
            edge["count"].as_u64().unwrap_or(0),
            format_ns_short(edge["latency"]["p50"].as_u64().unwrap_or(0)),
            format_ns_short(edge["latency"]["p99"].as_u64().unwrap_or(0)),
            format_ns_short(edge["gap"]["p50"].as_u64().unwrap_or(0)),
        ));
    }
    let procs = snapshot["processes"].as_object().map(|m| m.len()).unwrap_or(0);
    let tags = snapshot["tags"].as_object().map(|m| m.len()).unwrap_or(0);
    out.push_str(&format!(
        "{} edge(s) total, {} process graph(s), {} file-tag graph(s)\n",
        edges.len(),
        procs,
        tags
    ));
    out
}

/// Compact nanosecond rendering for the DFG panel columns.
fn format_ns_short(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

/// Renders the full alert history as a panel (newest last) — the
/// companion to the active-alerts section of [`render_top`].
pub fn render_alert_history(alerts: &[Alert]) -> String {
    let mut out = format!("### Alert history ({} raised)\n", alerts.len());
    if alerts.is_empty() {
        out.push_str("no alerts raised\n");
    } else {
        out.push_str(&render_alert_rows(alerts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_diagnose::{Alert, AlertKind, Severity};
    use serde_json::json;

    fn event(time: u64, pid: u64, name: &str, class: &str, lat: u64, ret: i64) -> Value {
        json!({
            "session": "s", "syscall": class, "class": class, "pid": pid,
            "tid": pid, "proc_name": name, "time": time,
            "latency_ns": lat, "ret_val": ret, "file_path": "/data.bin",
        })
    }

    fn sample_index() -> Index {
        let idx = Index::new("dio-s");
        let mut docs = Vec::new();
        for i in 0..40u64 {
            docs.push(event(1_000_000 * i, 7, "writer", "write", 5_000 + i, 8));
        }
        docs.push(event(45_000_000, 9, "reader", "read", 2_000, -5));
        idx.bulk(docs);
        idx
    }

    fn alert() -> Alert {
        Alert {
            seq: 0,
            detector: "data_loss",
            kind: AlertKind::DataLoss,
            severity: Severity::Critical,
            time_ns: 39_000_000,
            window_start_ns: None,
            window_end_ns: None,
            subject: "/data.bin".to_string(),
            message: "read resumed at stale offset".to_string(),
            fields: json!({}),
            evidence: vec![],
            attribution: None,
        }
    }

    #[test]
    fn top_renders_processes_files_and_alerts() {
        let idx = sample_index();
        let opts =
            TopOptions { window_ns: 50_000_000, now_ns: Some(50_000_000), ..Default::default() };
        let out = render_top(&idx, &[alert()], &opts);
        assert!(out.contains("dio top"));
        assert!(out.contains("writer"));
        assert!(out.contains("reader"));
        assert!(out.contains("/data.bin"));
        assert!(out.contains("[critical] data_loss"));
        // 40 writer ops over a 0.05 s window → 800 ops/s.
        assert!(out.contains("800"), "ops/s column present:\n{out}");
    }

    #[test]
    fn top_without_alerts_says_none() {
        let out = render_top(&sample_index(), &[], &TopOptions::default());
        assert!(out.contains("none active"));
    }

    #[test]
    fn window_excludes_older_events() {
        let idx = sample_index();
        // Window covering only the final read.
        let opts =
            TopOptions { window_ns: 500_000, now_ns: Some(45_200_000), ..Default::default() };
        let out = render_top(&idx, &[], &opts);
        assert!(out.contains("reader"));
        assert!(!out.contains("writer"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 8.0]);
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn rules_panel_lists_per_rule_counters() {
        let reports = vec![
            json!({
                "rule": "data_loss", "trigger": "stream", "key": null,
                "evaluated": 120, "fired": 2, "suppressed": 0, "records": 0,
            }),
            json!({
                "rule": "rate_spike", "trigger": "window", "key": "class",
                "evaluated": 9, "fired": 1, "suppressed": 3, "records": 0,
            }),
        ];
        let out = render_rules_panel(&reports);
        assert!(out.contains("Rules (2 loaded)"), "{out}");
        assert!(out.contains("data_loss"), "{out}");
        assert!(out.contains("window by class"), "{out}");
        let spike_row = out.lines().find(|l| l.starts_with("rate_spike")).unwrap();
        assert!(spike_row.contains('1') && spike_row.contains('3'), "{spike_row}");
        assert!(render_rules_panel(&[]).contains("no rule files loaded"));
    }

    #[test]
    fn dfg_panel_lists_busiest_edges_first() {
        let snapshot = json!({
            "events": 12, "transitions": 9, "phase_shifts": 1,
            "global": {
                "nodes": [],
                "edges": [
                    {"from": "write", "to": "fsync", "count": 3,
                     "latency": {"p50": 2_000_000u64, "p99": 9_000_000u64},
                     "gap": {"p50": 500u64}},
                    {"from": "open", "to": "write", "count": 6,
                     "latency": {"p50": 800u64, "p99": 1_200u64},
                     "gap": {"p50": 100u64}},
                ],
                "evicted_edges": 0,
            },
            "processes": {"writer": {"nodes": [], "edges": [], "evicted_edges": 0}},
            "tags": {},
        });
        let out = render_dfg_panel(&snapshot);
        assert!(out.contains("DFG (9 transitions, 1 phase shifts)"), "{out}");
        let open_line = out.lines().position(|l| l.starts_with("open->write")).unwrap();
        let fsync_line = out.lines().position(|l| l.starts_with("write->fsync")).unwrap();
        assert!(open_line < fsync_line, "edges sorted by count:\n{out}");
        assert!(out.contains("2.0ms"), "latency formatted:\n{out}");
        assert!(out.contains("1 process graph(s)"), "{out}");
        assert!(render_dfg_panel(&json!({})).contains("no transitions mined"));
    }

    #[test]
    fn alert_history_lists_every_alert() {
        let out = render_alert_history(&[alert(), alert()]);
        assert!(out.contains("2 raised"));
        assert_eq!(out.matches("data_loss").count(), 2);
        assert!(render_alert_history(&[]).contains("no alerts raised"));
    }
}
