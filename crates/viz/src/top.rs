//! `dio top` — the live view of a running tracing session.
//!
//! Renders, from the session's event index plus the diagnosis engine's
//! alert feed, a `top(1)`-style screen: per-process syscall rates with
//! latency sparklines, the hottest files, and the currently active
//! alerts. The screen describes one *window* of trailing activity
//! ([`TopOptions::window_ns`]) ending at "now" (the newest event time
//! unless pinned via [`TopOptions::now_ns`], which the golden-snapshot
//! test uses for determinism).

use std::collections::BTreeMap;

use dio_backend::{Index, Query, SearchRequest, SortOrder};
use dio_diagnose::Alert;
use serde_json::Value;

/// Tuning knobs for [`render_top`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopOptions {
    /// Width of the trailing window the screen describes (default 1 s).
    pub window_ns: u64,
    /// Maximum rows per table (default 10).
    pub rows: usize,
    /// Buckets in each activity sparkline (default 16).
    pub spark_buckets: usize,
    /// Pins "now"; `None` uses the newest event time in the index.
    pub now_ns: Option<u64>,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions { window_ns: 1_000_000_000, rows: 10, spark_buckets: 16, now_ns: None }
    }
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a unicode block-character sparkline of `values`, scaled to the
/// maximum value (an all-zero series renders as a flat baseline).
///
/// # Examples
///
/// ```
/// assert_eq!(dio_viz::sparkline(&[0.0, 1.0, 2.0, 4.0]), "▁▃▅█");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                SPARK_LEVELS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                SPARK_LEVELS[idx.min(7)]
            }
        })
        .collect()
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[derive(Default)]
struct ProcRow {
    ops: u64,
    errors: u64,
    latencies: Vec<u64>,
    buckets: Vec<f64>,
}

#[derive(Default)]
struct FileRow {
    ops: u64,
    reads: u64,
    writes: u64,
    errors: u64,
}

fn window_events(index: &Index, start_ns: u64, end_ns: u64) -> Vec<Value> {
    let query = Query::bool_query()
        .must(Query::range("time").gte(start_ns as f64).lte(end_ns as f64).build())
        .build();
    index
        .search(&SearchRequest::new(query).sort_by("time", SortOrder::Asc).size(usize::MAX))
        .hits
        .into_iter()
        .map(|h| h.source)
        .collect()
}

fn newest_event_time(index: &Index) -> u64 {
    index
        .search(&SearchRequest::new(Query::MatchAll).sort_by("time", SortOrder::Desc).size(1))
        .hits
        .first()
        .map(|h| h.source["time"].as_u64().unwrap_or(0))
        .unwrap_or(0)
}

/// Renders the `dio top` screen over `index` (a session's `dio-<session>`
/// event index) and the engine's current `alerts`.
///
/// The caller decides which alerts to show — pass
/// [`dio_diagnose::DiagnosisEngine::active_alerts`] for the live view, or
/// the full history for a post-mortem.
pub fn render_top(index: &Index, alerts: &[Alert], opts: &TopOptions) -> String {
    let now_ns = opts.now_ns.unwrap_or_else(|| newest_event_time(index));
    let start_ns = now_ns.saturating_sub(opts.window_ns.max(1));
    let events = window_events(index, start_ns, now_ns);
    let window_s = opts.window_ns.max(1) as f64 / 1e9;
    let buckets = opts.spark_buckets.max(1);
    let bucket_ns = (opts.window_ns.max(1) / buckets as u64).max(1);

    let mut procs: BTreeMap<(u64, String), ProcRow> = BTreeMap::new();
    let mut files: BTreeMap<String, FileRow> = BTreeMap::new();
    for doc in &events {
        let pid = doc["pid"].as_u64().unwrap_or(0);
        let name = doc["proc_name"].as_str().unwrap_or("?").to_string();
        let row = procs.entry((pid, name)).or_default();
        row.ops += 1;
        if doc["ret_val"].as_i64().unwrap_or(0) < 0 {
            row.errors += 1;
        }
        if let Some(lat) = doc["latency_ns"].as_u64() {
            row.latencies.push(lat);
        }
        if row.buckets.is_empty() {
            row.buckets = vec![0.0; buckets];
        }
        let t = doc["time"].as_u64().unwrap_or(0).saturating_sub(start_ns);
        let slot = ((t / bucket_ns) as usize).min(buckets - 1);
        row.buckets[slot] += 1.0;

        let file = doc["file_path"]
            .as_str()
            .or_else(|| doc["file_tag"].as_str())
            .unwrap_or("")
            .to_string();
        if !file.is_empty() {
            let frow = files.entry(file).or_default();
            frow.ops += 1;
            match doc["syscall"].as_str() {
                Some("read" | "pread64" | "readv") => frow.reads += 1,
                Some("write" | "pwrite64" | "writev") => frow.writes += 1,
                _ => {}
            }
            if doc["ret_val"].as_i64().unwrap_or(0) < 0 {
                frow.errors += 1;
            }
        }
    }

    let mut out = format!(
        "== dio top — {} ({} syscalls in the last {:.1}s, t = {} ns) ==\n\n",
        index.name(),
        events.len(),
        window_s,
        now_ns,
    );

    // --- Per-process table, busiest first.
    out.push_str("### Processes\n");
    out.push_str(&format!(
        "{:>7}  {:<16} {:>7} {:>9} {:>5} {:>9} {:>9}  activity\n",
        "pid", "process", "ops", "ops/s", "err", "p50(µs)", "p99(µs)"
    ));
    let mut proc_rows: Vec<_> = procs.into_iter().collect();
    proc_rows.sort_by(|a, b| b.1.ops.cmp(&a.1.ops).then_with(|| a.0.cmp(&b.0)));
    for ((pid, name), mut row) in proc_rows.into_iter().take(opts.rows) {
        row.latencies.sort_unstable();
        out.push_str(&format!(
            "{:>7}  {:<16} {:>7} {:>9.0} {:>5} {:>9.1} {:>9.1}  {}\n",
            pid,
            name,
            row.ops,
            row.ops as f64 / window_s,
            row.errors,
            percentile(&row.latencies, 0.50) as f64 / 1e3,
            percentile(&row.latencies, 0.99) as f64 / 1e3,
            sparkline(&row.buckets),
        ));
    }
    out.push('\n');

    // --- Per-file table, busiest first.
    out.push_str("### Files\n");
    out.push_str(&format!(
        "{:<40} {:>7} {:>7} {:>7} {:>5}\n",
        "file", "ops", "reads", "writes", "err"
    ));
    let mut file_rows: Vec<_> = files.into_iter().collect();
    file_rows.sort_by(|a, b| b.1.ops.cmp(&a.1.ops).then_with(|| a.0.cmp(&b.0)));
    for (file, row) in file_rows.into_iter().take(opts.rows) {
        out.push_str(&format!(
            "{:<40} {:>7} {:>7} {:>7} {:>5}\n",
            file, row.ops, row.reads, row.writes, row.errors
        ));
    }
    out.push('\n');

    // --- Active alerts.
    if alerts.is_empty() {
        out.push_str("### Alerts\nnone active\n");
    } else {
        out.push_str(&format!("### Alerts ({} active)\n", alerts.len()));
        out.push_str(&render_alert_rows(alerts));
    }
    out
}

fn render_alert_rows(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&format!(
            "  [{:<8}] {:<20} t={} {} — {}\n",
            a.severity.as_str(),
            a.kind.as_str(),
            a.time_ns,
            a.subject,
            a.message
        ));
    }
    out
}

/// Renders the full alert history as a panel (newest last) — the
/// companion to the active-alerts section of [`render_top`].
pub fn render_alert_history(alerts: &[Alert]) -> String {
    let mut out = format!("### Alert history ({} raised)\n", alerts.len());
    if alerts.is_empty() {
        out.push_str("no alerts raised\n");
    } else {
        out.push_str(&render_alert_rows(alerts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_diagnose::{Alert, AlertKind, Severity};
    use serde_json::json;

    fn event(time: u64, pid: u64, name: &str, class: &str, lat: u64, ret: i64) -> Value {
        json!({
            "session": "s", "syscall": class, "class": class, "pid": pid,
            "tid": pid, "proc_name": name, "time": time,
            "latency_ns": lat, "ret_val": ret, "file_path": "/data.bin",
        })
    }

    fn sample_index() -> Index {
        let idx = Index::new("dio-s");
        let mut docs = Vec::new();
        for i in 0..40u64 {
            docs.push(event(1_000_000 * i, 7, "writer", "write", 5_000 + i, 8));
        }
        docs.push(event(45_000_000, 9, "reader", "read", 2_000, -5));
        idx.bulk(docs);
        idx
    }

    fn alert() -> Alert {
        Alert {
            seq: 0,
            detector: "data_loss",
            kind: AlertKind::DataLoss,
            severity: Severity::Critical,
            time_ns: 39_000_000,
            window_start_ns: None,
            window_end_ns: None,
            subject: "/data.bin".to_string(),
            message: "read resumed at stale offset".to_string(),
            fields: json!({}),
            evidence: vec![],
        }
    }

    #[test]
    fn top_renders_processes_files_and_alerts() {
        let idx = sample_index();
        let opts =
            TopOptions { window_ns: 50_000_000, now_ns: Some(50_000_000), ..Default::default() };
        let out = render_top(&idx, &[alert()], &opts);
        assert!(out.contains("dio top"));
        assert!(out.contains("writer"));
        assert!(out.contains("reader"));
        assert!(out.contains("/data.bin"));
        assert!(out.contains("[critical] data_loss"));
        // 40 writer ops over a 0.05 s window → 800 ops/s.
        assert!(out.contains("800"), "ops/s column present:\n{out}");
    }

    #[test]
    fn top_without_alerts_says_none() {
        let out = render_top(&sample_index(), &[], &TopOptions::default());
        assert!(out.contains("none active"));
    }

    #[test]
    fn window_excludes_older_events() {
        let idx = sample_index();
        // Window covering only the final read.
        let opts =
            TopOptions { window_ns: 500_000, now_ns: Some(45_200_000), ..Default::default() };
        let out = render_top(&idx, &[], &opts);
        assert!(out.contains("reader"));
        assert!(!out.contains("writer"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let s = sparkline(&[1.0, 8.0]);
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn alert_history_lists_every_alert() {
        let out = render_alert_history(&[alert(), alert()]);
        assert!(out.contains("2 raised"));
        assert_eq!(out.matches("data_loss").count(), 2);
        assert!(render_alert_history(&[]).contains("no alerts raised"));
    }
}
