//! The latency waterfall: where does an event's time go between the
//! kernel tracepoint and the backend acknowledgement?
//!
//! Rendered from a session's span summary (`TraceSummary.spans` or
//! `Tracer::span_summary`), the waterfall shows per-stage p50/p99 bars in
//! pipeline order, the end-to-end latency distribution, the lag
//! watermark, and drop attribution — the uringscope-style
//! submission→completion view for DIO's own pipeline.

use dio_telemetry::{HistogramSnapshot, SpanSummary};

/// Formats nanoseconds with a human unit (ns / µs / ms / s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn bar(value: u64, max: u64, width: usize, glyph: char) -> String {
    if max == 0 {
        return String::new();
    }
    let n = ((value as f64 / max as f64) * width as f64).round() as usize;
    glyph.to_string().repeat(n.min(width))
}

fn distribution_line(name: &str, h: &HistogramSnapshot, name_width: usize) -> String {
    format!(
        "{name:<name_width$}  {:>8}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        h.count,
        fmt_ns(h.min),
        fmt_ns(h.p50),
        fmt_ns(h.p90),
        fmt_ns(h.p99),
        fmt_ns(h.p999),
        fmt_ns(h.max),
    )
}

/// Renders the per-stage latency waterfall of a tracing session.
///
/// Sections:
/// 1. **Waterfall** — one row per stage transition in pipeline order,
///    with p50 (`#`) and p99 (`-`) bars on a shared scale;
/// 2. **End-to-end** — the kernel-dispatch→bulk-index distribution
///    (completed spans only, drop-attributed partials excluded);
/// 3. **Lag watermark** — current and peak pipeline lag;
/// 4. **Drop attribution** — dropped events by the stage that starved
///    (omitted when nothing dropped).
///
/// # Examples
///
/// ```
/// use dio_telemetry::{MetricsRegistry, SpanCollector, Stage, StageStamps};
///
/// let registry = MetricsRegistry::new();
/// let spans = SpanCollector::new(&registry, 0);
/// let mut stamps = StageStamps::new();
/// for (i, stage) in Stage::ALL.into_iter().enumerate() {
///     stamps.stamp(stage, 100 * (i as u64 + 1));
/// }
/// spans.record_shipped(&stamps);
/// let art = dio_viz::render_latency_waterfall(&spans.summary());
/// assert!(art.contains("Latency waterfall"));
/// assert!(art.contains("dispatch_to_push"));
/// ```
pub fn render_latency_waterfall(spans: &SpanSummary) -> String {
    let mut out = format!(
        "== Latency waterfall ({} spans completed, {} dropped) ==\n\n",
        spans.completed, spans.dropped
    );
    if spans.completed == 0 && spans.dropped == 0 {
        out.push_str("no spans recorded\n");
        return out;
    }

    let transitions = SpanSummary::transition_names();
    let name_width = transitions.iter().map(|n| n.len()).max().unwrap_or(8).max("transition".len());
    let scale_max =
        transitions.iter().filter_map(|n| spans.stage(n)).map(|h| h.p99).max().unwrap_or(0);

    const BAR_WIDTH: usize = 40;
    out.push_str(&format!(
        "### Per-stage latency (p50 `#`, p99 `-`, shared scale, max p99 = {})\n",
        fmt_ns(scale_max)
    ));
    for name in transitions {
        let Some(h) = spans.stage(name) else { continue };
        if h.count == 0 {
            out.push_str(&format!("{name:<name_width$} | (no samples)\n"));
            continue;
        }
        let p50_bar = bar(h.p50, scale_max, BAR_WIDTH, '#');
        let p99_tail = bar(h.p99, scale_max, BAR_WIDTH, '-');
        let tail = p99_tail.len().saturating_sub(p50_bar.len());
        out.push_str(&format!(
            "{name:<name_width$} | {p50_bar}{}  p50 {} / p99 {} ({} samples)\n",
            "-".repeat(tail),
            fmt_ns(h.p50),
            fmt_ns(h.p99),
            h.count,
        ));
    }
    out.push('\n');

    out.push_str("### Distributions\n");
    out.push_str(&format!(
        "{:<name_width$}  {:>8}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "transition", "count", "min", "p50", "p90", "p99", "p999", "max"
    ));
    for name in transitions {
        if let Some(h) = spans.stage(name) {
            out.push_str(&distribution_line(name, h, name_width));
        }
    }
    out.push_str(&distribution_line("e2e", &spans.e2e, name_width));
    out.push('\n');

    out.push_str(&format!(
        "lag watermark: {} now, {} peak\n",
        fmt_ns(spans.lag_watermark_ns),
        fmt_ns(spans.peak_lag_ns)
    ));

    if !spans.drops_by_stage.is_empty() {
        out.push_str("\n### Drop attribution (stage that starved)\n");
        let stage_width =
            spans.drops_by_stage.keys().map(String::len).max().unwrap_or(5).max("stage".len());
        let max_drops = spans.drops_by_stage.values().copied().max().unwrap_or(0);
        for (stage, n) in &spans.drops_by_stage {
            out.push_str(&format!(
                "{stage:<stage_width$} | {} {n}\n",
                bar(*n, max_drops, BAR_WIDTH, '#')
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dio_telemetry::{MetricsRegistry, SpanCollector, Stage, StageStamps};

    fn stamps_with_gaps(base: u64, gaps: [u64; 5]) -> StageStamps {
        let mut s = StageStamps::new();
        let mut t = base;
        s.stamp(Stage::KernelDispatch, t);
        for (stage, gap) in Stage::ALL.into_iter().skip(1).zip(gaps) {
            t += gap;
            s.stamp(stage, t);
        }
        s
    }

    #[test]
    fn waterfall_renders_stages_e2e_and_drops() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        for i in 0..20 {
            spans.record_shipped(&stamps_with_gaps(1_000 + i, [100, 5_000, 200, 300, 50_000]));
        }
        // One ring drop: only kernel dispatch stamped.
        let mut partial = StageStamps::new();
        partial.stamp(Stage::KernelDispatch, 9_999);
        spans.record_drop(&partial);

        let art = render_latency_waterfall(&spans.summary());
        assert!(art.contains("20 spans completed, 1 dropped"));
        assert!(art.contains("dispatch_to_push"));
        assert!(art.contains("enqueue_to_index"));
        assert!(art.contains("e2e"));
        assert!(art.contains("lag watermark:"));
        assert!(art.contains("Drop attribution"));
        assert!(art.contains("ring_push"), "ring drop attributed to ring_push:\n{art}");
        // The longest transition dominates the shared scale: its p50 bar
        // must be the longest rendered.
        let enqueue_row = art.lines().find(|l| l.starts_with("enqueue_to_index")).unwrap();
        let push_row = art.lines().find(|l| l.starts_with("dispatch_to_push")).unwrap();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert!(hashes(enqueue_row) > hashes(push_row));
    }

    #[test]
    fn empty_summary_renders_placeholder() {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        let art = render_latency_waterfall(&spans.summary());
        assert!(art.contains("no spans recorded"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(25_000), "25.0µs");
        assert_eq!(fmt_ns(25_000_000), "25.0ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
