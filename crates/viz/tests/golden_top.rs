//! Headless golden-snapshot test of the `dio top` render.
//!
//! The fixture is fully deterministic (fixed event times, pinned
//! `now_ns`), so the rendered screen must match
//! `tests/golden/dio_top.txt` byte for byte. Regenerate after an
//! intentional layout change with:
//!
//! ```text
//! DIO_UPDATE_GOLDEN=1 cargo test -p dio-viz --test golden_top
//! ```

use dio_backend::Index;
use dio_diagnose::{Alert, AlertKind, Severity};
use dio_viz::{render_top, TopOptions};
use serde_json::{json, Value};

fn event(time: u64, pid: u64, name: &str, class: &str, lat: u64, ret: i64, path: &str) -> Value {
    json!({
        "session": "golden", "syscall": class, "class": class, "pid": pid,
        "tid": pid, "proc_name": name, "time": time,
        "latency_ns": lat, "ret_val": ret, "file_path": path,
    })
}

fn fixture() -> Index {
    let idx = Index::new("dio-golden");
    let mut docs = Vec::new();
    // A busy writer ramping up over the window, a slow reader, and a
    // failing stat loop — enough to exercise every column.
    for i in 0..32u64 {
        let burst = 1 + i / 8; // 1,1,..2,..3,..4 → visible sparkline ramp
        for b in 0..burst {
            docs.push(event(
                i * 31_250_000 + b * 1_000,
                101,
                "db_bench",
                "write",
                40_000 + i * 500,
                4096,
                "/db/000042.sst",
            ));
        }
    }
    for i in 0..8u64 {
        docs.push(event(
            i * 125_000_000 + 7,
            202,
            "compaction",
            "read",
            900_000,
            4096,
            "/db/000007.sst",
        ));
    }
    for i in 0..4u64 {
        docs.push(event(i * 250_000_000 + 11, 303, "watchdog", "other", 2_000, -2, "/db/LOCK"));
    }
    idx.bulk(docs);
    idx
}

fn alerts() -> Vec<Alert> {
    vec![Alert {
        seq: 0,
        detector: "error_rate",
        kind: AlertKind::ErrorRateAnomaly,
        severity: Severity::Warning,
        time_ns: 750_000_011,
        window_start_ns: Some(0),
        window_end_ns: Some(1_000_000_000),
        subject: "proc:watchdog".to_string(),
        fields: json!({}),
        evidence: vec![],
        message: "4/4 syscalls failed".to_string(),
        attribution: None,
    }]
}

#[test]
fn dio_top_matches_golden_snapshot() {
    let opts = TopOptions {
        window_ns: 1_000_000_000,
        rows: 10,
        spark_buckets: 16,
        now_ns: Some(1_000_000_000),
    };
    let rendered = render_top(&fixture(), &alerts(), &opts);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dio_top.txt");
    if std::env::var_os("DIO_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden snapshot present");
    assert_eq!(rendered, golden, "dio top render drifted from tests/golden/dio_top.txt");
}
