//! Building customized analyses and visualizations (§II-C/§II-D).
//!
//! ```text
//! cargo run --example custom_dashboard
//! ```
//!
//! The paper's pipeline lets users "create their own queries, correlation
//! algorithms, and visualization dashboards". This example traces a small
//! mixed workload and then builds, from scratch: a custom query, a custom
//! aggregation, a custom dashboard, and a custom correlation pass.

use dio::core::{
    Aggregation, Column, Dio, OpenFlags, Panel, PanelSpec, Query, SearchRequest, SortOrder,
    TracerConfig,
};
use dio_viz::Dashboard;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dio = Dio::new();
    let session = dio.trace(TracerConfig::new("custom"));

    // A workload with both sequential and random access, and some errors.
    let app = dio.kernel().spawn_process("workload");
    let t = app.spawn_thread("workload");
    let fd = t.openat("/seq.dat", OpenFlags::CREAT | OpenFlags::RDWR, 0o644)?;
    for i in 0..32 {
        t.pwrite64(fd, &[i as u8; 512], i * 512)?;
    }
    let fd2 = t.openat("/rand.dat", OpenFlags::CREAT | OpenFlags::RDWR, 0o644)?;
    t.pwrite64(fd2, &[0u8; 4096], 0)?;
    for off in [3000u64, 100, 2000, 500, 3900, 40] {
        let mut buf = [0u8; 64];
        t.pread64(fd2, &mut buf, off)?;
    }
    let _ = t.openat("/missing", OpenFlags::RDONLY, 0); // ENOENT on purpose
    let _ = t.unlink("/also-missing");
    t.close(fd)?;
    t.close(fd2)?;
    session.stop();

    let index = dio.session_index("custom").expect("session stored");

    // --- custom query: failed syscalls only ---
    let failures = index.search(
        &SearchRequest::new(Query::range("ret_val").lt(0.0).build())
            .sort_by("time", SortOrder::Asc),
    );
    println!("failed syscalls: {}", failures.total);
    for hit in &failures.hits {
        println!("  {} -> ret {}", hit.source["syscall"], hit.source["ret_val"]);
    }

    // --- custom aggregation: bytes moved per syscall type ---
    let agg = index.search(
        &SearchRequest::new(Query::terms("syscall", ["pread64", "pwrite64"])).size(0).agg(
            "per_syscall",
            Aggregation::terms("syscall", 10).sub("bytes", Aggregation::stats("ret_val")),
        ),
    );
    for bucket in agg.aggs["per_syscall"].buckets() {
        if let dio::core::AggResult::Stats(stats) = &bucket.sub["bytes"] {
            println!(
                "{}: {} calls, {:.0} bytes total, {:.0} bytes/call",
                bucket.key,
                stats.count,
                stats.sum,
                stats.avg()
            );
        }
    }

    // --- custom dashboard: latency-focused panels ---
    let dashboard = Dashboard::new("latency-hunters")
        .panel(Panel::new(
            "Slowest 5 syscalls",
            PanelSpec::Table {
                columns: vec![
                    Column::new("syscall"),
                    Column::new("latency_ns").grouped(),
                    Column::new("file_path"),
                ],
                request: SearchRequest::match_all().sort_by("latency_ns", SortOrder::Desc).size(5),
            },
        ))
        .panel(Panel::new(
            "Errors by syscall",
            PanelSpec::TopTerms {
                query: Query::range("ret_val").lt(0.0).build(),
                field: "syscall".into(),
                size: 10,
            },
        ));
    println!("\n{}", dashboard.render(&index));

    // --- custom correlation: label sequential vs random files ---
    let profiles = dio::core::analyze_offsets(&index);
    for p in &profiles {
        println!(
            "{}: {:?} ({} ops, {:.0}% sequential, mean req {:.0} B)",
            p.path.as_deref().unwrap_or("?"),
            p.pattern,
            p.ops,
            p.sequential_fraction * 100.0,
            p.mean_request_bytes
        );
    }
    assert!(profiles.iter().any(|p| p.path.as_deref() == Some("/seq.dat")
        && p.pattern == dio::core::AccessPattern::Sequential));
    assert!(profiles.iter().any(|p| p.path.as_deref() == Some("/rand.dat")
        && p.pattern != dio::core::AccessPattern::Sequential));
    Ok(())
}
