//! In-kernel filtering: narrowing the tracing scope (§II-B).
//!
//! ```text
//! cargo run --example filtered_tracing
//! ```
//!
//! Demonstrates the three filter dimensions DIO evaluates in kernel space
//! — syscall type, process id, and file path — plus running several
//! concurrently-filtered sessions against one kernel.

use dio::core::{Dio, OpenFlags, Query, TracerConfig};
use dio_syscall::SyscallKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dio = Dio::new();
    let kernel = dio.kernel();

    let alpha = kernel.spawn_process("alpha");
    let beta = kernel.spawn_process("beta");

    // Session 1: only write syscalls, system-wide.
    let writes_only = dio.trace(TracerConfig::new("writes").syscalls([SyscallKind::Write]));
    // Session 2: everything alpha does.
    let alpha_only = dio.trace(TracerConfig::new("alpha").pids([alpha.pid()]));
    // Session 3: any syscall touching /logs (even fd-based reads/writes —
    // the kernel resolves descriptors against the path filter).
    let logs_only = dio.trace(TracerConfig::new("logs").path_prefix("/logs"));

    let ta = alpha.spawn_thread("alpha");
    let tb = beta.spawn_thread("beta");
    ta.mkdir("/logs", 0o755)?;
    ta.mkdir("/data", 0o755)?;

    // alpha writes a log; beta writes a data file.
    let fd = ta.openat("/logs/service.log", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644)?;
    ta.write(fd, b"alpha log line")?;
    ta.close(fd)?;
    let fd = tb.openat("/data/blob.bin", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644)?;
    tb.write(fd, b"beta data")?;
    tb.fsync(fd)?;
    tb.close(fd)?;

    let writes = writes_only.stop();
    let alpha_events = alpha_only.stop();
    let logs = logs_only.stop();

    println!(
        "session 'writes' stored {} events (both processes' writes)",
        writes.trace.events_stored
    );
    println!(
        "session 'alpha'  stored {} events (alpha's full activity)",
        alpha_events.trace.events_stored
    );
    println!(
        "session 'logs'   stored {} events (everything under /logs)",
        logs.trace.events_stored
    );

    // Verify the filters did what they claim.
    let w = dio.session_index("writes").expect("session");
    assert_eq!(w.count(&Query::MatchAll), 2, "one write per process");
    assert_eq!(w.count(&Query::term("syscall", "write")), 2);

    let a = dio.session_index("alpha").expect("session");
    assert_eq!(a.count(&Query::term("proc_name", "beta")), 0);
    assert!(a.count(&Query::term("proc_name", "alpha")) >= 5);

    let l = dio.session_index("logs").expect("session");
    assert!(l.count(&Query::MatchAll) >= 3, "open+write+close on the log");
    assert_eq!(
        l.count(&Query::prefix("file_path", "/data")),
        0,
        "nothing outside /logs leaks into the session"
    );
    println!("\nall filter invariants hold");
    Ok(())
}
