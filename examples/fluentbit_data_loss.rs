//! The §III-B case study as a runnable example: diagnosing Fluent Bit's
//! tail-plugin data loss (issue fluent/fluent-bit#1875) with DIO.
//!
//! ```text
//! cargo run --example fluentbit_data_loss
//! ```
//!
//! Replays the log-rotation script against the buggy v1.4.0 plugin and the
//! fixed v2.0.5 plugin, both traced by DIO, and lets the automated
//! stale-offset analysis find the bug in one and clear the other.

use dio::core::{dashboards, detect_data_loss, Dio, Query, TracerConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

fn diagnose(version: FluentBitVersion) -> Result<(), Box<dyn std::error::Error>> {
    let label = match version {
        FluentBitVersion::V1_4_0 => "Fluent Bit v1.4.0 (buggy)",
        FluentBitVersion::V2_0_5 => "Fluent Bit v2.0.5 (fixed)",
    };
    println!("==== {label} ====");

    let dio = Dio::new();
    let session = dio.trace(TracerConfig::new("fluentbit"));
    let outcome = run_issue_1875(dio.kernel(), version, "/app.log", 1_000_000)?;
    session.stop();

    let index = dio.session_index("fluentbit").expect("session stored");
    println!(
        "{}",
        dashboards::syscall_table(Query::terms(
            "syscall",
            ["openat", "write", "read", "lseek", "close", "unlink"],
        ))
        .render(&index)
    );
    println!(
        "client wrote {} bytes, tailer consumed {} -> {} bytes lost",
        outcome.bytes_written,
        outcome.bytes_consumed,
        outcome.bytes_lost()
    );

    let incidents = detect_data_loss(&index);
    if incidents.is_empty() {
        println!("diagnosis: no stale-offset reads found\n");
    } else {
        for inc in &incidents {
            println!(
                "diagnosis: DATA LOSS — {} resumed {} at stale offset {} \
                 (inode generation {} inherited state from {}), {} bytes at risk\n",
                inc.reader,
                inc.path.as_deref().unwrap_or("<uncorrelated>"),
                inc.stale_offset,
                inc.tag,
                inc.previous_generation,
                inc.bytes_at_risk
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    diagnose(FluentBitVersion::V1_4_0)?;
    diagnose(FluentBitVersion::V2_0_5)?;
    Ok(())
}
