//! `dio top`: the live view of a running tracing session.
//!
//! ```text
//! cargo run --example live_top
//! ```
//!
//! Starts a session with the streaming diagnosis engine attached
//! ([`TracerConfig::diagnose`]), replays the Fluent Bit issue #1875
//! data-loss scenario next to a steady log writer, and renders `dio top`
//! ticks *while the trace is running*: per-process syscall rates with
//! activity sparklines, the hottest files, and — the point of the live
//! engine — the data-loss alert raised the moment the buggy tailer reads
//! from its stale offset, long before the session is stopped and the
//! offline analysis could run.

use dio::core::{render_alert_history, DiagnoseConfig, Dio, TopOptions, TracerConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dio = Dio::new();
    let session = dio.trace(TracerConfig::new("live-top-demo").diagnose(DiagnoseConfig::default()));

    // Background noise so the top tables have something to rank: a chatty
    // writer appending to its own log.
    let noisy = dio.kernel().spawn_process("app-writer").spawn_thread("app-writer");
    let fd = noisy.creat("/app-writer.log", 0o644)?;
    for _ in 0..200 {
        noisy.write(fd, b"a line of application output\n")?;
    }
    noisy.close(fd)?;

    // The paper's Fig. 2a case study: the buggy tailer resumes from a
    // stale offset after inode reuse and silently loses data.
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/fluent.log", 5_000_000)
        .expect("scenario replays");

    // Wait until the in-process engine has flagged it — live, while the
    // tracer is still attached — and until the shipper has flushed the
    // events the top tables rank.
    let engine = session.diagnosis().expect("diagnose enabled");
    for _ in 0..1_000 {
        let stats = engine.stats();
        if stats.alerts_raised > 0 && session.events_stored() >= stats.observed {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    // One `dio top` tick. A real deployment would redraw this in a loop;
    // rendering is a read-only query, the session keeps tracing.
    println!("{}", session.top(&TopOptions::default()));

    let report = session.stop();
    println!("{}", render_alert_history(&report.trace.alerts));
    let stats = report.trace.diagnosis.expect("engine stats");
    println!(
        "engine: {} events observed, {} evaluated, {} alert(s) — all raised before teardown",
        stats.observed, stats.evaluated, stats.alerts_raised
    );
    assert!(stats.alerts_raised > 0, "the Fig. 2a bug must be flagged live");
    Ok(())
}
