//! A miniature Table II: comparing tracer overheads on a small workload.
//!
//! ```text
//! cargo run --release --example overhead_comparison
//! ```
//!
//! Runs the same file-churn workload untraced and under each tracer
//! (sysdig-like, DIO, strace-like) and prints the relative slowdowns.
//! For the full-scale Table II reproduction use
//! `cargo run --release -p dio-bench --bin exp_table2`.

use std::sync::Arc;

use dio::core::{Dio, DiskProfile, Kernel, OpenFlags, TracerConfig};
use dio_baselines::{StraceConfig, StraceTracer, SysdigConfig, SysdigTracer};
use dio_kernel::SyscallProbe;

fn workload(kernel: &Kernel, tag: &str) -> u64 {
    let proc = kernel.spawn_process(format!("app-{tag}"));
    let t = proc.spawn_thread(format!("app-{tag}"));
    let clock = kernel.clock().clone();
    let start = clock.now_ns();
    t.mkdir(&format!("/{tag}"), 0o755).expect("mkdir");
    for i in 0..400 {
        let path = format!("/{tag}/f{i}");
        let fd = t.openat(&path, OpenFlags::CREAT | OpenFlags::RDWR, 0o644).expect("open");
        t.write(fd, &[0u8; 4096]).expect("write");
        let mut buf = [0u8; 1024];
        t.pread64(fd, &mut buf, 0).expect("read");
        t.close(fd).expect("close");
        if i % 4 == 0 {
            t.unlink(&path).expect("unlink");
        }
    }
    clock.now_ns() - start
}

fn main() {
    let disk = DiskProfile {
        read_bw_bps: 256 << 20,
        write_bw_bps: 128 << 20,
        base_latency_ns: 10_000,
        flush_latency_ns: 40_000,
    };
    let mk_kernel = || Kernel::builder().num_cpus(2).root_disk(disk).build();

    // vanilla
    let vanilla = workload(&mk_kernel(), "v");

    // sysdig-like
    let kernel = mk_kernel();
    let sysdig = SysdigTracer::new(SysdigConfig::default(), kernel.num_cpus());
    kernel.tracepoints().attach(Arc::clone(&sysdig) as Arc<dyn SyscallProbe>);
    let sysdig_time = workload(&kernel, "s");

    // DIO
    let kernel = mk_kernel();
    let dio = Dio::with_kernel(kernel);
    let session = dio.trace(TracerConfig::new("overhead").kernel_costs(1_200, 3_000));
    let dio_time = workload(dio.kernel(), "d");
    let summary = session.stop();

    // strace-like
    let kernel = mk_kernel();
    let strace = StraceTracer::new(StraceConfig::default());
    kernel.tracepoints().attach(Arc::clone(&strace) as Arc<dyn SyscallProbe>);
    let strace_time = workload(&kernel, "t");

    let f = |t: u64| t as f64 / vanilla as f64;
    println!("workload: 400 x (open + write 4K + read 1K + close), 2 CPUs");
    println!("vanilla : {:>8.2} ms  1.00x", vanilla as f64 / 1e6);
    println!("sysdig  : {:>8.2} ms  {:.2}x", sysdig_time as f64 / 1e6, f(sysdig_time));
    println!(
        "DIO     : {:>8.2} ms  {:.2}x  ({} events to backend)",
        dio_time as f64 / 1e6,
        f(dio_time),
        summary.trace.events_stored
    );
    println!(
        "strace  : {:>8.2} ms  {:.2}x  ({} lines)",
        strace_time as f64 / 1e6,
        f(strace_time),
        strace.events()
    );
    println!("\npaper's Table II ordering: vanilla <= sysdig < DIO < strace");
}
