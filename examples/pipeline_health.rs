//! Pipeline health: DIO observing itself.
//!
//! ```text
//! cargo run --example pipeline_health
//! ```
//!
//! Every tracing session ships metrics about its own pipeline — syscall
//! dispatch counts, in-kernel filter verdicts, ring-buffer occupancy and
//! drops, consumer/shipper batch latencies, backend bulk times — to a
//! `dio-telemetry-<session>` index next to the trace itself. This example
//! runs a deliberately under-provisioned session (tiny ring, slow
//! consumer) and renders the health dashboard from those documents, plus
//! the per-stage latency waterfall and the pipeline lag time series
//! derived from end-to-end event spans.

use std::time::Duration;

use dio::core::{
    render_health_dashboard, render_latency_waterfall, Dio, HealthReport, RingConfig, TracerConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dio = Dio::new();

    // Small per-CPU buffers + a lazy consumer: the session will drop
    // events, and its telemetry will show exactly where and how many.
    let session = dio.trace(
        TracerConfig::new("health-demo")
            .ring(RingConfig { bytes_per_cpu: 64 * 512, est_event_bytes: 512 })
            .drain_batch(16)
            .poll_interval(Duration::from_millis(10))
            .telemetry_interval(Duration::from_millis(20)),
    );

    // A bursty application: thousands of small files.
    let thread = dio.kernel().spawn_process("burst").spawn_thread("burst");
    thread.mkdir("/spool", 0o755)?;
    for i in 0..3_000 {
        let fd = thread.creat(&format!("/spool/f{i}"), 0o644)?;
        thread.write(fd, b"payload")?;
        thread.close(fd)?;
    }
    let report = session.stop();

    // The summary carries the final health snapshot directly...
    let health = &report.trace.health;
    println!(
        "trace: stored={} dropped={} filtered={}",
        report.trace.events_stored, report.trace.events_dropped, report.trace.events_filtered
    );
    println!(
        "self-telemetry agrees: ring consumed={} dropped={} (filter rejected={})\n",
        health.counter("ebpf.ring.consumed"),
        health.counter("ebpf.ring.dropped"),
        health.counter("ebpf.filter.rejected"),
    );

    // Per-event spans: where did the time go between the kernel
    // tracepoint and the backend acknowledgement, and which stage starved
    // the dropped events?
    println!("{}", render_latency_waterfall(&report.trace.spans));
    assert_eq!(report.trace.spans.e2e.count, report.trace.events_stored);
    assert_eq!(report.trace.spans.dropped, report.trace.events_dropped);
    assert_eq!(
        report.trace.spans.lag_watermark_ns, 0,
        "a stopped session has shipped everything it will ever ship"
    );

    // ...and the exporter shipped per-round documents to the health index,
    // including the lag watermark the dashboard plots as a time series.
    let index = dio.telemetry_index("health-demo").expect("telemetry index");
    println!("{}", render_health_dashboard(&index));

    // The parsed report supports programmatic checks (alerts, CI gates).
    let parsed = HealthReport::from_index(&index);
    let lag_series = parsed.series("span.lag.watermark_ns");
    let peak_lag = lag_series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    assert!(
        peak_lag > 0.0,
        "an under-provisioned pipeline must show nonzero lag at some export round"
    );
    println!(
        "parsed {} export rounds: {:.0} syscalls/s, {:.2}% dropped, peak lag {:.1}µs",
        parsed.snapshots.len(),
        parsed.syscall_rate(),
        parsed.drop_rate() * 100.0,
        peak_lag / 1e3,
    );
    Ok(())
}
