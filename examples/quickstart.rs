//! Quickstart: trace an application's I/O and explore it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the full DIO pipeline (kernel + tracer + backend + visualizer),
//! runs a tiny application against the simulated kernel, and prints the
//! trace table and a session overview — the 60-second tour of the API.

use dio::core::{dashboards, Dio, OpenFlags, Query, TracerConfig, Whence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deploy DIO: one simulated kernel plus the analysis pipeline.
    let dio = Dio::new();

    // 2. Start a tracing session (all 42 syscalls, no filters).
    let session = dio.trace(TracerConfig::new("quickstart"));

    // 3. Run an application against the kernel.
    let app = dio.kernel().spawn_process("demo-app");
    let thread = app.spawn_thread("demo-app");
    thread.mkdir("/data", 0o755)?;
    let fd = thread.openat("/data/report.txt", OpenFlags::CREAT | OpenFlags::RDWR, 0o644)?;
    thread.write(fd, b"hello, observability!")?;
    thread.lseek(fd, 0, Whence::Set)?;
    let mut buf = [0u8; 5];
    thread.read(fd, &mut buf)?;
    thread.fsync(fd)?;
    thread.close(fd)?;
    thread.stat("/data/report.txt")?;
    thread.unlink("/data/report.txt")?;

    // 4. Stop the session: events are drained and file paths correlated.
    let report = session.stop();
    println!(
        "stored {} events ({} dropped); correlation filled {} paths\n",
        report.trace.events_stored, report.trace.events_dropped, report.correlation.events_updated
    );

    // 5. Explore with the predefined dashboards.
    let index = dio.session_index("quickstart").expect("session stored");
    println!("{}", dashboards::syscall_table(Query::MatchAll).render(&index));
    println!("{}", dashboards::session_overview().render(&index));

    // 6. Or query directly.
    let writes = index.count(&Query::term("syscall", "write"));
    let on_report = index.count(&Query::term("file_path", "/data/report.txt"));
    println!("write syscalls: {writes}; events on /data/report.txt: {on_report}");
    assert_eq!(writes, 1);
    assert!(on_report >= 5);
    Ok(())
}
