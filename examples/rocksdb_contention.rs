//! The §III-C case study as a runnable example: finding the root cause of
//! tail-latency spikes in an LSM key-value store with DIO.
//!
//! ```text
//! cargo run --release --example rocksdb_contention
//! ```
//!
//! Runs a scaled YCSB-A workload against the bundled LSM store (1 flush
//! thread + 7 compaction threads, as in the paper), traced by DIO, then
//! asks the contention analyzer which time windows show background I/O
//! starving the clients.

use std::sync::Arc;

use dio::core::{
    detect_contention, ContentionConfig, Dio, DiskProfile, Kernel, Query, TracerConfig,
};
use dio_dbbench::{load_phase, run, BenchConfig, YcsbWorkload};
use dio_lsmkv::{Db, LsmOptions};
use dio_syscall::SyscallKind;
use dio_viz::dashboards;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A slowed-down disk so compaction bursts visibly contend (see
    // DESIGN.md "Substitutions").
    let disk = DiskProfile {
        read_bw_bps: 192 << 20,
        write_bw_bps: 96 << 20,
        base_latency_ns: 15_000,
        flush_latency_ns: 60_000,
    };
    let kernel = Kernel::builder().num_cpus(4).root_disk(disk).build();
    let dio = Dio::with_kernel(kernel);
    let process = dio.kernel().spawn_process("db_bench");

    let db = Arc::new(Db::open(&process, LsmOptions::benchmark_profile("/db"))?);
    let bench = BenchConfig {
        workload: YcsbWorkload::A,
        client_threads: 8,
        records: 10_000,
        ops_per_thread: 4_000,
        value_size: 400,
        window_ns: 250_000_000,
        ..BenchConfig::default()
    };
    println!("loading {} records...", bench.records);
    load_phase(&db, &process, &bench, 4)?;

    // Trace only the data-path syscalls, as the paper does for this run.
    let session = dio.trace(TracerConfig::new("rocksdb").syscalls([
        SyscallKind::Open,
        SyscallKind::Openat,
        SyscallKind::Creat,
        SyscallKind::Read,
        SyscallKind::Pread64,
        SyscallKind::Write,
        SyscallKind::Pwrite64,
        SyscallKind::Close,
    ]));

    println!("running YCSB-A with 8 client threads...");
    let report = run(&db, &process, &bench);
    let closer = process.spawn_thread("closer");
    db.shutdown(&closer)?;
    let trace = session.stop();

    println!(
        "\nbenchmark: {} ops at {:.0} ops/s; client p99 = {:.2} ms (p50 = {:.3} ms)",
        report.ops,
        report.throughput_ops_sec(),
        report.overall.percentile(99.0) as f64 / 1e6,
        report.overall.percentile(50.0) as f64 / 1e6,
    );
    println!(
        "trace: {} events, {} dropped ({:.2}%)",
        trace.trace.events_stored,
        trace.trace.events_dropped,
        trace.trace.drop_rate() * 100.0
    );

    let index = dio.session_index("rocksdb").expect("session stored");
    println!("\n{}", dashboards::syscalls_over_time(Query::MatchAll, 250_000_000).render(&index));

    let contention = detect_contention(&index, &ContentionConfig::default());
    println!(
        "contention analysis: {} of {} windows have >=5 active compaction threads",
        contention.contended_windows().count(),
        contention.windows.len()
    );
    if contention.contention_detected() {
        println!(
            "root cause confirmed: client syscall rate drops {:.2}x when compactions burst \
             (calm avg {:.0} ops/window vs contended {:.0})",
            contention.degradation_factor(),
            contention.client_ops_calm,
            contention.client_ops_contended
        );
    } else {
        println!("no contention signature in this run — try a slower disk or more ops");
    }
    Ok(())
}
