//! Post-mortem session comparison (§II): trace two versions of an
//! application into one pipeline, then diff the executions.
//!
//! ```text
//! cargo run --example session_diff
//! ```
//!
//! Uses the Fluent Bit case study: the buggy v1.4.0 and fixed v2.0.5 runs
//! are stored as separate sessions, and [`dio_core::diff_sessions`] shows
//! exactly how the fixed version's syscall behaviour differs.

use dio::core::{diff_sessions, Dio, TracerConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dio = Dio::new();

    // Session A: the buggy version.
    let session = dio.trace(TracerConfig::new("v1.4.0"));
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/a.log", 0)?;
    session.stop();

    // Session B: the fixed version (same workload, fresh kernel state not
    // required — different log file keeps the runs independent).
    let session = dio.trace(TracerConfig::new("v2.0.5"));
    run_issue_1875(dio.kernel(), FluentBitVersion::V2_0_5, "/b.log", 0)?;
    session.stop();

    let a = dio.session_index("v1.4.0").expect("session A stored");
    let b = dio.session_index("v2.0.5").expect("session B stored");
    let diff = diff_sessions(&a, &b);
    println!("{}", diff.to_text("v1.4.0", "v2.0.5"));

    // The fixed version reads the second generation instead of seeking
    // past it, so its read results differ; and the thread is renamed
    // fluent-bit -> flb-pipeline between the versions.
    let threads: Vec<&str> =
        diff.by_thread.iter().filter(|d| d.delta() != 0).map(|d| d.key.as_str()).collect();
    assert!(threads.contains(&"fluent-bit"));
    assert!(threads.contains(&"flb-pipeline"));
    println!("thread-name change visible in diff: {threads:?}");
    Ok(())
}
