//! Trace replay: record a session, replay it against a fresh kernel.
//!
//! ```text
//! cargo run --example trace_replay
//! ```
//!
//! DIO's events carry everything a replayer needs (Re-Animator-style, see
//! Table III's related work). This example records the Fluent Bit data-loss
//! scenario, replays it on a clean kernel, and shows that every recorded
//! return value — including the buggy zero-byte read at the stale offset —
//! reproduces exactly.

use dio::core::{DiskProfile, Kernel};
use dio::replay::{replay_session, ReplayConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Record the buggy run.
    let dio = dio::core::Dio::new();
    let session = dio.trace(dio::core::TracerConfig::new("recording"));
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 0)?;
    let summary = session.stop();
    println!("recorded {} events", summary.trace.events_stored);

    // Replay against a pristine kernel.
    let fresh = Kernel::builder().root_disk(DiskProfile::instant()).build();
    let index = dio.session_index("recording").expect("session stored");
    let report = replay_session(&index, &fresh, &ReplayConfig::default());
    println!(
        "replayed {} events, {} skipped, {} divergences",
        report.events_replayed,
        report.events_skipped,
        report.divergences.len()
    );
    assert!(report.is_faithful(), "an unmodified trace must replay exactly: {report:?}");

    // The replayed kernel now holds the same end state: the second
    // generation of app.log with its 16 unread bytes.
    let t = fresh.spawn_process("check").spawn_thread("check");
    assert_eq!(t.stat("/app.log")?.size, 16);
    println!("end state reproduced: /app.log holds the 16 lost bytes");

    // A *different* starting environment makes the replay diverge — the
    // recorded ENOENTs now succeed.
    let tampered = Kernel::builder().root_disk(DiskProfile::instant()).build();
    let setup = tampered.spawn_process("setup").spawn_thread("setup");
    setup.creat("/app.log", 0o644)?;
    setup.write(3, b"pre-existing content beyond everything")?;
    let diverging = replay_session(&index, &tampered, &ReplayConfig::default());
    println!(
        "replay on a tampered kernel: {} divergences (environment differs)",
        diverging.divergences.len()
    );
    assert!(!diverging.divergences.is_empty());
    Ok(())
}
