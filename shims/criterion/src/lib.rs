//! Offline stand-in for `criterion`.
//!
//! Keeps the macro/builder surface of the real crate but implements a
//! simple calibrated timing loop: warm up, pick an iteration count that
//! fills the measurement window, report mean ns/iter (and throughput when
//! configured). Good enough to keep `cargo bench` runnable offline; not a
//! statistical benchmark harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for code using `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver configuration.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples (used to split the window).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.warm_up, self.measurement, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Compatibility no-op (the real crate parses CLI args here).
    pub fn final_summary(&mut self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/<parameter>` naming.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }

    /// `group/name/<parameter>` naming.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used for throughput output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Overrides the sample count (accepted for compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.warm_up, self.measurement, self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.warm_up, self.measurement, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up pass: also calibrates how many iterations fit the window.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        f(&mut bencher);
        if bencher.elapsed < Duration::from_micros(1) {
            bencher.iters = (bencher.iters * 8).min(1 << 20);
        }
    }
    let per_iter = bencher.elapsed.as_nanos().max(1) / u128::from(bencher.iters.max(1));
    let target_iters = (measurement.as_nanos() / per_iter.max(1)).clamp(1, 50_000_000) as u64;
    bencher.iters = target_iters;
    f(&mut bencher);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    let mut line = format!("bench: {name:<50} {ns_per_iter:>12.1} ns/iter");
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) => n as f64 / (ns_per_iter / 1e9),
            Throughput::Bytes(n) => n as f64 / (ns_per_iter / 1e9),
        };
        let unit = match t {
            Throughput::Elements(_) => "elem/s",
            Throughput::Bytes(_) => "B/s",
        };
        line.push_str(&format!("  ({per_sec:>14.0} {unit})"));
    }
    println!("{line}");
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares the benchmark entry functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
