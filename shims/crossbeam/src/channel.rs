//! Blocking bounded channel, API-compatible with `crossbeam::channel` for
//! the operations the workspace uses (`bounded`, `send`, `recv`,
//! `recv_timeout`, disconnection semantics).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Creates a bounded channel with room for `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// The sending half of a bounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            if queue.len() < self.shared.cap {
                queue.push_back(value);
                drop(queue);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            queue = self
                .shared
                .not_full
                .wait_timeout(queue, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the channel buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders hang up.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait_timeout(queue, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Receives a message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            queue = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Option<T> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        let v = queue.pop_front();
        if v.is_some() {
            drop(queue);
            self.shared.not_full.notify_one();
        }
        v
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the channel buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(t.join().unwrap());
    }

    #[test]
    fn send_fails_without_receiver() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
