//! Offline stand-in for `crossbeam`, providing the subset the workspace
//! uses: `queue::ArrayQueue` (lock-free bounded MPMC) and
//! `channel::{bounded, Sender, Receiver}` (blocking bounded channel).

pub mod channel;
pub mod queue;
