//! Lock-free bounded MPMC queue (Vyukov-style sequence-stamped ring),
//! API-compatible with `crossbeam::queue::ArrayQueue` for the operations
//! the workspace uses.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Sequence stamp: `2 * index` when empty and writable for position
    /// `index`, `2 * index + 1` after a value is written, `2 * (index + cap)`
    /// once consumed. Doubling keeps "written" stamps (odd) from ever
    /// aliasing "free" stamps (even), which matters for `cap == 1`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer lock-free queue.
pub struct ArrayQueue<T> {
    slots: Box<[Slot<T>]>,
    cap: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
}

unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be non-zero");
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(2 * i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ArrayQueue {
            slots,
            cap,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Attempts to push, returning `Err(value)` when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        loop {
            let tail = self.tail.0.load(Ordering::SeqCst);
            let slot = &self.slots[tail % self.cap];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 2 * tail {
                if self
                    .tail
                    .0
                    .compare_exchange_weak(tail, tail + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    unsafe { (*slot.value.get()).write(value) };
                    slot.seq.store(2 * tail + 1, Ordering::Release);
                    return Ok(());
                }
            } else if seq < 2 * tail {
                // Slot still occupied by the previous lap; full unless a pop
                // is racing us.
                let head = self.head.0.load(Ordering::SeqCst);
                if head + self.cap <= tail {
                    return Err(value);
                }
                std::hint::spin_loop();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Pops the oldest element, or `None` when the queue is empty.
    pub fn pop(&self) -> Option<T> {
        loop {
            let head = self.head.0.load(Ordering::SeqCst);
            let slot = &self.slots[head % self.cap];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 2 * head + 1 {
                if self
                    .head
                    .0
                    .compare_exchange_weak(head, head + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok()
                {
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.seq.store(2 * (head + self.cap), Ordering::Release);
                    return Some(value);
                }
            } else if seq <= 2 * head {
                let tail = self.tail.0.load(Ordering::SeqCst);
                if tail <= head {
                    return None;
                }
                std::hint::spin_loop();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Approximate number of elements currently queued.
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        tail.saturating_sub(head).min(self.cap)
    }

    /// Whether the queue is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is (approximately) full.
    pub fn is_full(&self) -> bool {
        self.len() == self.cap
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_full() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_one_rejects_when_full() {
        let q = ArrayQueue::new(1);
        assert!(q.push(1).is_ok());
        assert_eq!(q.push(2), Err(2), "second push must not overwrite");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        for lap in 0..10 {
            assert!(q.push(lap).is_ok());
            assert_eq!(q.push(99), Err(99));
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = ArrayQueue::new(3);
        for i in 0..100 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn concurrent_producers_conserve_items() {
        let q = Arc::new(ArrayQueue::new(64));
        let pushed = Arc::new(AtomicUsize::new(0));
        let popped = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            let pushed = pushed.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    if q.push(t * 1000 + i).is_ok() {
                        pushed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = q.clone();
            let popped = popped.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..3000 {
                    if q.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut rest = 0;
        while q.pop().is_some() {
            rest += 1;
        }
        assert_eq!(pushed.load(Ordering::SeqCst), popped.load(Ordering::SeqCst) + rest);
    }
}
