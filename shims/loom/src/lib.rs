//! Offline stand-in for the [loom](https://crates.io/crates/loom) API
//! surface this workspace uses.
//!
//! Real loom model-checks a concurrent closure by exhaustively exploring
//! thread interleavings under the C11 memory model. This shim keeps the
//! same source shape — `loom::model(|| …)` with `loom::thread` /
//! `loom::sync` inside — but executes the closure repeatedly on real OS
//! threads instead, so models double as stress tests on every platform
//! the workspace builds on. The exploration budget comes from
//! `LOOM_MAX_PREEMPTIONS` (read here as an iteration multiplier) to stay
//! command-line compatible with loom invocations in CI.
//!
//! Swapping in the real crate later is a one-line Cargo change: models
//! only use the subset re-exported below.

use std::sync::OnceLock;

/// Default number of executions of the model closure per [`model`] call.
const DEFAULT_ITERS: usize = 64;

fn iterations() -> usize {
    static ITERS: OnceLock<usize> = OnceLock::new();
    *ITERS.get_or_init(|| {
        std::env::var("LOOM_MAX_PREEMPTIONS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|p| DEFAULT_ITERS * p.max(1))
            .unwrap_or(DEFAULT_ITERS)
    })
}

/// Runs `f` under the model: repeatedly, to exercise many interleavings.
///
/// Real loom explores interleavings deterministically; this shim re-runs
/// the closure `iterations()` times on OS threads. Panics propagate, so a
/// violated invariant still fails the test.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

/// Mirror of `loom::thread`, backed by [`std::thread`].
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Mirror of `loom::sync`, backed by [`std::sync`].
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Mirror of `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_closure_many_times() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert!(runs.load(Ordering::SeqCst) >= super::DEFAULT_ITERS);
    }

    #[test]
    fn threads_and_atomics_compose() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }
}
