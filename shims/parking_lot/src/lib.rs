//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The workspace builds without network access, so the real crates.io
//! dependency cannot be fetched. This shim provides the exact API subset the
//! workspace uses: non-poisoning `Mutex`/`RwLock` guards and a `Condvar`
//! whose `wait_for` borrows the guard mutably instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning, like `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the `std` guard in an `Option` so [`Condvar::wait_for`] can
/// temporarily take ownership (the `std` API consumes the guard) while the
/// caller keeps a `&mut` borrow, matching parking_lot's signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock (non-poisoning, like `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempts shared read access without blocking; `None` when a
    /// writer holds (or std would block behind) the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        assert!(*g);
        t.join().unwrap();
    }
}
