//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max_exclusive: r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max_exclusive: len + 1 }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
