//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait (ranges, tuples, `any`, `Just`, `prop_map`,
//! `prop_oneof!`, `collection::vec`) and the `proptest!` /
//! `prop_assert*` macros. Unlike real proptest there is no shrinking —
//! failing inputs are reported verbatim via the panic message — but
//! generation is deterministic per test so failures reproduce.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Test-runner configuration and error types.
pub mod config {
    pub use crate::test_runner::ProptestConfig;
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg_pat =
                    $crate::strategy::Strategy::generate(&($arg_strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
