//! Value-generation strategies for the proptest shim.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerates, bounded).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// Boxes a strategy for storage in heterogeneous collections
/// (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for the full domain of `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

/// Weighted choice between boxed strategies (used by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof needs positive total weight");
        Union { options, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.options {
            let w = u64::from(*weight);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight accounting")
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);
