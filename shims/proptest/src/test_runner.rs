//! Test-runner plumbing for the proptest shim.

use rand::{RngCore, SeedableRng, SmallRng};

/// Number-of-cases configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property against `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Deterministic per-test random source, so failures reproduce exactly.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeds deterministically from the test name (and `PROPTEST_SEED`,
    /// when set, to explore different schedules).
    pub fn for_test(name: &str) -> Self {
        let extra: u64 =
            std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
        let mut seed = 0xcbf29ce484222325u64 ^ extra;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}
