//! Offline stand-in for `rand`, providing the subset the workspace uses:
//! `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workloads and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform over the full domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The small, fast generator (xoshiro256++ here).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}

/// Namespaced RNG types, matching `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}
