//! `Serialize`/`Deserialize` impls for the std types the workspace relies on.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::time::Duration;

use crate::{Deserialize, Error, Map, Number, Serialize, Value};

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_serde_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .$via()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Cow<'_, str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Cow::Owned(String::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        items.try_into().map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => {
                map.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => {
                map.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_object().cloned().ok_or_else(|| Error::custom("expected object"))
    }
}

impl Serialize for Duration {
    /// Mirrors real serde's `{ "secs": u64, "nanos": u32 }` encoding.
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs".to_string(), self.as_secs().to_value());
        map.insert("nanos".to_string(), self.subsec_nanos().to_value());
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::custom("expected duration object"))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing field `secs`"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing field `nanos`"))?;
        let nanos = u32::try_from(nanos).map_err(|_| Error::custom("`nanos` out of range"))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        assert_eq!(Some(3u32).to_value(), Value::Number(Number::from(3u64)));
        assert!(None::<u32>.to_value().is_null());
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&7u32.to_value()).unwrap(), Some(7));
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(u64::from_value(&(-1i64).to_value()).is_err());
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 456_000_000);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let s: HashSet<u32> = [5, 9].into_iter().collect();
        assert_eq!(HashSet::<u32>::from_value(&s.to_value()).unwrap(), s);
    }
}
