//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-cost serialization framework; this shim keeps
//! the same *surface* (the `Serialize`/`Deserialize` traits, the derive
//! macros, and — re-exported through the `serde_json` shim — `Value`,
//! `Map`, `Number`, `json!`) while funneling all serialization through a
//! single dynamic document model: [`Value`]. That trade is fine here: the
//! workspace only serializes configs, trace events, and backend documents.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Types that can serialize themselves into a [`Value`] document.
pub trait Serialize {
    /// Converts `self` into the dynamic document model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] document.
pub trait Deserialize: Sized {
    /// Parses `Self` out of the dynamic document model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch encountered.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Serialization/deserialization error (also re-exported as
/// `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}
