//! The dynamic JSON document model: [`Value`], [`Number`], [`Map`].

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value, mirroring `serde_json::Value`.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with string keys.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` view, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` view, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` view, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Object view, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object view, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array view, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array view, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutable member lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => {
                if !map.contains_key(key) {
                    map.insert(key.to_string(), Value::Null);
                }
                map.get_mut(key).expect("just inserted")
            }
            other => panic!("cannot index non-object value {other} with string key"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => a.get_mut(idx).expect("array index out of bounds"),
            other => panic!("cannot index non-array value {other} with usize"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if n.eq_i128(*other as i128))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

impl_value_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::from(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Value {
        Value::Number(n)
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a JSON string literal with escapes.
pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A JSON number: positive integer, negative integer, or float.
#[derive(Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// `i64` view, when the value is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }

    /// `u64` view, when the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(i) => u64::try_from(i).ok(),
            N::Float(_) => None,
        }
    }

    /// The value as a float (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match self.n {
            N::PosInt(u) => u as f64,
            N::NegInt(i) => i as f64,
            N::Float(f) => f,
        }
    }

    /// Whether this number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }

    /// Builds a float number; integral-valued floats stay floats.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number { n: N::Float(f) })
    }

    pub(crate) fn eq_i128(&self, other: i128) -> bool {
        match self.n {
            N::PosInt(u) => i128::from(u) == other,
            N::NegInt(i) => i128::from(i) == other,
            N::Float(f) => f == other as f64,
        }
    }
}

macro_rules! impl_number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                Number { n: N::PosInt(v as u64) }
            }
        }
    )*};
}

macro_rules! impl_number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                if v >= 0 {
                    Number { n: N::PosInt(v as u64) }
                } else {
                    Number { n: N::NegInt(v as i64) }
                }
            }
        }
    )*};
}

impl_number_from_unsigned!(u8, u16, u32, u64, usize);
impl_number_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number { n: N::Float(v) }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.n, other.n) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            (N::Float(a), N::Float(b)) => a == b,
            // Cross-category comparisons are numeric, which is more lenient
            // than serde_json but never fails a comparison that should hold.
            (N::PosInt(a), N::NegInt(b)) | (N::NegInt(b), N::PosInt(a)) => b >= 0 && a == b as u64,
            (N::Float(f), N::PosInt(u)) | (N::PosInt(u), N::Float(f)) => f == u as f64,
            (N::Float(f), N::NegInt(i)) | (N::NegInt(i), N::Float(f)) => f == i as f64,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            N::Float(v) if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 => {
                // Keep a trailing `.0` so floats survive a parse round-trip
                // as floats, matching serde_json's formatting.
                write!(f, "{v:.1}")
            }
            N::Float(v) if v.is_finite() => write!(f, "{v}"),
            N::Float(_) => f.write_str("null"),
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Number({self})")
    }
}

/// A JSON object: string keys mapped to [`Value`]s, ordered by key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Map {
        Map { inner: BTreeMap::new() }
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Looks up a value mutably by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.inner.get_mut(key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterates entries mutably in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.inner.iter_mut()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        Map { inner: iter.into_iter().collect() }
    }
}
