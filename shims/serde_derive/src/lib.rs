//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (which go through the dynamic `serde::Value` document model) for
//! the type shapes this workspace actually uses:
//!
//! * named-field structs (honoring `#[serde(skip_serializing_if = "Option::is_none")]`,
//!   with `Option` fields tolerating missing keys);
//! * newtype structs (`struct Pid(pub u32)`);
//! * unit enums, optionally with discriminants and
//!   `#[serde(rename_all = "snake_case")]`;
//! * `#[serde(untagged)]` enums whose variants are single-field tuples.
//!
//! The parser works directly on `proc_macro::TokenStream` — no `syn`/`quote`,
//! because the build is fully offline. Unsupported shapes produce a
//! `compile_error!` naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip_if_none: bool,
    is_option: bool,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    rename_all_snake: bool,
    untagged: bool,
    shape: Shape,
}

/// Derives the shim `serde::Serialize` for supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives the shim `serde::Deserialize` for supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&parsed.shape, mode) {
        (Shape::NamedStruct(fields), Mode::Ser) => gen_struct_ser(&parsed.name, fields),
        (Shape::NamedStruct(fields), Mode::De) => gen_struct_de(&parsed.name, fields),
        (Shape::NewtypeStruct, Mode::Ser) => gen_newtype_ser(&parsed.name),
        (Shape::NewtypeStruct, Mode::De) => gen_newtype_de(&parsed.name),
        (Shape::Enum(variants), _) => {
            if parsed.untagged {
                if variants.iter().any(|v| v.arity != 1) {
                    return compile_error(
                        "serde shim: untagged enums must have single-field tuple variants",
                    );
                }
                match mode {
                    Mode::Ser => gen_untagged_ser(&parsed.name, variants),
                    Mode::De => gen_untagged_de(&parsed.name, variants),
                }
            } else {
                if variants.iter().any(|v| v.arity != 0) {
                    return compile_error(
                        "serde shim: non-untagged enums must have unit variants only",
                    );
                }
                match mode {
                    Mode::Ser => gen_unit_enum_ser(&parsed.name, variants, parsed.rename_all_snake),
                    Mode::De => gen_unit_enum_de(&parsed.name, variants, parsed.rename_all_snake),
                }
            }
        }
    };
    code.parse().expect("generated impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut it = input.into_iter().peekable();
    let serde_attrs = take_attrs(&mut it);
    let rename_all_snake =
        serde_attrs.iter().any(|a| a.contains("rename_all") && a.contains("snake_case"));
    let untagged = serde_attrs.iter().any(|a| a.contains("untagged"));
    skip_visibility(&mut it);
    let kw = expect_ident(&mut it)?;
    let name = expect_ident(&mut it)?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim: generic type `{name}` is not supported"));
    }
    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_top_level_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde shim: tuple struct `{name}` must have exactly one field"
                    ));
                }
                Shape::NewtypeStruct
            }
            _ => return Err(format!("serde shim: unsupported struct shape for `{name}`")),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde shim: unsupported enum shape for `{name}`")),
        },
        other => return Err(format!("serde shim: cannot derive for `{other}` items")),
    };
    Ok(Input { name, rename_all_snake, untagged, shape })
}

/// Consumes leading `#[...]` attributes, returning the content of each
/// `#[serde(...)]` as a string (other attributes are skipped).
fn take_attrs(it: &mut TokenIter) -> Vec<String> {
    let mut serde_attrs = Vec::new();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        if let Some(TokenTree::Group(g)) = it.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(i)) = inner.next() {
                if i.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        serde_attrs.push(args.stream().to_string());
                    }
                }
            }
        }
    }
    serde_attrs
}

fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("serde shim: expected identifier, found {other:?}")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = take_attrs(&mut it);
        skip_visibility(&mut it);
        let Some(tt) = it.next() else { break };
        let name = match tt {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("serde shim: expected field name, found {other}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim: expected `:` after field, found {other:?}")),
        }
        // Consume the type up to the next top-level comma; remember whether
        // it is spelled `Option<...>` (missing keys then deserialize as None).
        let mut angle_depth = 0i32;
        let mut first_ident: Option<String> = None;
        while let Some(tt) = it.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    it.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Ident(i) if first_ident.is_none() => {
                    first_ident = Some(i.to_string());
                }
                _ => {}
            }
            it.next();
        }
        let skip_if_none = attrs.iter().any(|a| a.contains("skip_serializing_if"));
        let is_option = first_ident.as_deref() == Some("Option");
        fields.push(Field { name, skip_if_none, is_option });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _attrs = take_attrs(&mut it);
        let Some(tt) = it.next() else { break };
        let name = match tt {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("serde shim: expected variant name, found {other}")),
        };
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = it.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                arity = count_top_level_fields(g.stream());
                it.next();
            }
        }
        // Skip a `= discriminant` (and anything else) up to the comma.
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

/// Counts comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
            _ => {}
        }
    }
    if saw_tokens {
        fields + 1
    } else {
        0
    }
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip_if_none {
            body.push_str(&format!(
                "match ::serde::Serialize::to_value(&self.{fname}) {{ \
                     ::serde::Value::Null => {{}}, \
                     __v => {{ __map.insert({fname:?}.to_string(), __v); }} \
                 }}\n"
            ));
        } else {
            body.push_str(&format!(
                "__map.insert({fname:?}.to_string(), ::serde::Serialize::to_value(&self.{fname}));\n"
            ));
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __map = ::serde::Map::new();\n\
                 {body}\
                 ::serde::Value::Object(__map)\n\
             }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip_if_none || f.is_option {
            body.push_str(&format!(
                "{fname}: match __obj.get({fname:?}) {{ \
                     ::core::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                     ::core::option::Option::None => \
                         ::serde::Deserialize::from_value(&::serde::Value::Null)?, \
                 }},\n"
            ));
        } else {
            body.push_str(&format!(
                "{fname}: ::serde::Deserialize::from_value(__obj.get({fname:?}).ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"missing field `\", {fname:?}, \"`\")))?)?,\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = match __value {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     _ => return ::core::result::Result::Err(::serde::Error::custom(\
                         concat!(\"expected object for struct \", {name:?}))),\n\
                 }};\n\
                 ::core::result::Result::Ok({name} {{\n{body}}})\n\
             }}\n\
         }}"
    )
}

fn gen_newtype_ser(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
         }}"
    )
}

fn gen_newtype_de(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 ::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))\n\
             }}\n\
         }}"
    )
}

fn gen_unit_enum_ser(name: &str, variants: &[Variant], snake: bool) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let ser_name = if snake { snake_case(&v.name) } else { v.name.clone() };
            format!("{name}::{} => {ser_name:?},\n", v.name)
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String((match self {{\n{arms}}}).to_string())\n\
             }}\n\
         }}"
    )
}

fn gen_unit_enum_de(name: &str, variants: &[Variant], snake: bool) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let ser_name = if snake { snake_case(&v.name) } else { v.name.clone() };
            format!("{ser_name:?} => ::core::result::Result::Ok({name}::{}),\n", v.name)
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {arms}\
                         __other => ::core::result::Result::Err(::serde::Error::custom(\
                             format!(concat!(\"unknown variant `{{}}` of \", {name:?}), __other))),\n\
                     }},\n\
                     _ => ::core::result::Result::Err(::serde::Error::custom(\
                         concat!(\"expected string for enum \", {name:?}))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

fn gen_untagged_ser(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{}(__x) => ::serde::Serialize::to_value(__x),\n", v.name))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn gen_untagged_de(name: &str, variants: &[Variant]) -> String {
    let attempts: String = variants
        .iter()
        .map(|v| {
            format!(
                "if let ::core::result::Result::Ok(__x) = \
                     ::serde::Deserialize::from_value(__value) {{\n\
                     return ::core::result::Result::Ok({name}::{}(__x));\n\
                 }}\n",
                v.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {attempts}\
                 ::core::result::Result::Err(::serde::Error::custom(\
                     concat!(\"data did not match any variant of untagged enum \", {name:?})))\n\
             }}\n\
         }}"
    )
}
