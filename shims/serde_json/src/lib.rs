//! Offline stand-in for `serde_json`, layered over the `serde` shim's
//! dynamic [`Value`] document model: `json!`, `to_string`,
//! `to_string_pretty`, `to_value`, `from_str`, `from_value`.

mod parse;

pub use serde::{Error, Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Serializes any [`Serialize`] type into a [`Value`].
///
/// # Errors
///
/// Infallible with the shim's document model; kept as `Result` for API
/// compatibility.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a typed value out of a [`Value`] document.
///
/// # Errors
///
/// Returns the first structural mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible with the shim's document model.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible with the shim's document model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                let _ = write!(out, "{}: ", Value::String(k.clone()));
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns a syntax error with byte offset, or the first structural
/// mismatch when converting into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like literal syntax, interpolating Rust
/// expressions in value position.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`] — a token-tree muncher in the style
/// of the real serde_json macro.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ----- array element accumulation -----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ----- object key/value accumulation -----
    // Insert the finished entry, then continue with the rest.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Munch a value for the current key.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Accumulate key tokens until the `:`.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };
    (@object $object:ident () () ()) => {};

    // ----- entry points -----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value")
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_and_nesting() {
        let v = json!({
            "a": 1,
            "b": { "c": "x", "d": [2, 3] },
            "t": true,
            "n": null,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"]["c"], "x");
        assert_eq!(v["b"]["d"][1], 3);
        assert_eq!(v["t"], true);
        assert!(v["n"].is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn interpolation() {
        let session = "s1".to_string();
        let n = 42u64;
        let v = json!({ "session": session, "n": n, "sum": n + 1 });
        assert_eq!(v["session"], "s1");
        assert_eq!(v["n"], 42u64);
        assert_eq!(v["sum"], 43);
    }

    #[test]
    fn text_roundtrip() {
        let v = json!({ "s": "a\"b\\c\nd", "i": -7, "u": 18446744073709551615u64, "f": 1.5 });
        let text = crate::to_string(&v).unwrap();
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_contains_fields() {
        let v = json!({ "x": [1, 2], "y": { "z": "w" } });
        let text = crate::to_string_pretty(&v).unwrap();
        assert!(text.contains("\"x\": [\n"));
        assert!(text.contains("\"z\": \"w\""));
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_fraction_marker() {
        let text = crate::to_string(&json!(4.0)).unwrap();
        assert_eq!(text, "4.0");
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(4.0));
        assert_eq!(back.as_u64(), None, "still a float after round-trip");
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(crate::from_str::<crate::Value>("{not json").is_err());
        assert!(crate::from_str::<crate::Value>("").is_err());
        assert!(crate::from_str::<crate::Value>("{\"a\": 1,}").is_err());
        assert!(crate::from_str::<crate::Value>("[1 2]").is_err());
        assert!(crate::from_str::<crate::Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: crate::Value = crate::from_str("\"\\u00e9\\u20ac \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é€ 😀");
        let text = crate::to_string(&v).unwrap();
        let back: crate::Value = crate::from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
