//! Recursive-descent JSON parser producing `serde::Value`.

use serde::{Error, Map, Number, Value};

/// Parses one complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone leading surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (the cursor sits on the first digit).
    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from(i)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(Number::from(f)))
    }
}
