//! DIO facade crate: re-exports the whole workspace.
pub use dio_core as core;
pub use dio_replay as replay;
