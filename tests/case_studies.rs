//! Integration tests reproducing both of the paper's case studies at
//! test scale (the full-scale versions live in `dio-bench`'s binaries).

use std::sync::Arc;

use dio::core::{
    detect_contention, detect_data_loss, ContentionConfig, Dio, DiskProfile, Kernel, Query,
    SearchRequest, SortOrder, TracerConfig,
};
use dio_dbbench::{load_phase, run, BenchConfig, YcsbWorkload};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};
use dio_lsmkv::{Db, LsmOptions};
use dio_syscall::SyscallKind;

fn fast_dio() -> Dio {
    Dio::with_kernel(Kernel::builder().root_disk(DiskProfile::instant()).build())
}

/// §III-B, Fig. 2a: the traced buggy run shows the exact erroneous pattern
/// and the analyzer flags it.
#[test]
fn fluentbit_bug_pattern_in_trace() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("fb-bug"));
    let outcome = run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 0).unwrap();
    session.stop();
    assert_eq!(outcome.bytes_lost(), 16);

    let index = dio.session_index("fb-bug").unwrap();
    // The reader's events in time order, second generation only.
    let tags: Vec<String> = index
        .search(
            &SearchRequest::new(Query::term("syscall", "openat")).sort_by("time", SortOrder::Asc),
        )
        .hits
        .iter()
        .filter_map(|h| h.source["file_tag"].as_str().map(String::from))
        .collect();
    let last_tag = tags.last().unwrap().clone();
    let reads = index.search(
        &SearchRequest::new(
            Query::bool_query()
                .must(Query::term("syscall", "read"))
                .must(Query::term("file_tag", last_tag))
                .build(),
        )
        .sort_by("time", SortOrder::Asc),
    );
    // Fig. 2a step 5: first read of the new generation is at offset 26, ret 0.
    let first = &reads.hits[0].source;
    assert_eq!(first["offset"], 26);
    assert_eq!(first["ret_val"], 0);

    let incidents = detect_data_loss(&index);
    assert_eq!(incidents.len(), 1);
    assert_eq!(incidents[0].bytes_at_risk, 16);
}

/// §III-B, Fig. 2b: the fixed version reads generation 2 from offset 0.
#[test]
fn fluentbit_fix_pattern_in_trace() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("fb-fix"));
    let outcome = run_issue_1875(dio.kernel(), FluentBitVersion::V2_0_5, "/app.log", 0).unwrap();
    session.stop();
    assert_eq!(outcome.bytes_lost(), 0);
    let index = dio.session_index("fb-fix").unwrap();
    assert!(detect_data_loss(&index).is_empty());
    // Fig. 2b: a read at offset 0 returning 16 bytes exists.
    assert!(
        index.count(
            &Query::bool_query()
                .must(Query::term("syscall", "read"))
                .must(Query::term("offset", 0))
                .must(Query::term("ret_val", 16))
                .build()
        ) >= 1
    );
}

/// §III-C at test scale: the traced LSM workload shows client and
/// background thread names, and the store's stall machinery engages.
#[test]
fn lsm_workload_under_dio() {
    let disk = DiskProfile {
        read_bw_bps: 256 << 20,
        write_bw_bps: 128 << 20,
        base_latency_ns: 5_000,
        flush_latency_ns: 20_000,
    };
    let kernel = Kernel::builder().num_cpus(4).root_disk(disk).build();
    let dio = Dio::with_kernel(kernel);
    let process = dio.kernel().spawn_process("db_bench");
    let opts = LsmOptions {
        memtable_bytes: 16 * 1024,
        l0_compaction_trigger: 2,
        compaction_threads: 3,
        ..LsmOptions::new("/db")
    };
    let db = Arc::new(Db::open(&process, opts).unwrap());
    let bench = BenchConfig {
        workload: YcsbWorkload::A,
        client_threads: 4,
        records: 500,
        value_size: 200,
        ops_per_thread: 500,
        window_ns: 100_000_000,
        ..BenchConfig::default()
    };
    load_phase(&db, &process, &bench, 2).unwrap();

    let session = dio.trace(TracerConfig::new("lsm").syscalls([
        SyscallKind::Openat,
        SyscallKind::Read,
        SyscallKind::Pread64,
        SyscallKind::Write,
        SyscallKind::Pwrite64,
        SyscallKind::Close,
    ]));
    let report = run(&db, &process, &bench);
    let closer = process.spawn_thread("closer");
    db.shutdown(&closer).unwrap();
    let trace = session.stop();

    assert_eq!(report.ops, 2_000);
    assert!(trace.trace.events_stored > 1_000);

    let index = dio.session_index("lsm").unwrap();
    // Thread attribution: clients and at least the flush thread appear.
    assert!(index.count(&Query::term("proc_name", "db_bench")) > 500);
    assert!(index.count(&Query::term("proc_name", "rocksdb:high0")) > 0, "flush thread traced");
    assert!(index.count(&Query::prefix("proc_name", "rocksdb:low")) > 0, "compactions traced");

    // The contention analyzer runs end-to-end (detection depends on scale).
    let report = detect_contention(
        &index,
        &ContentionConfig { window_ns: 100_000_000, background_threshold: 2, ..Default::default() },
    );
    assert!(!report.windows.is_empty());
}

/// Running both case studies against ONE shared pipeline, as a deployed
/// DIO service would (§II-F "deploy DIO as a service").
#[test]
fn shared_pipeline_multiple_applications() {
    let dio = fast_dio();
    let s1 = dio.trace(TracerConfig::new("svc-fluentbit"));
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/one.log", 0).unwrap();
    s1.stop();

    let s2 = dio.trace(TracerConfig::new("svc-other"));
    let t = dio.kernel().spawn_process("other").spawn_thread("other");
    t.creat("/other.txt", 0o644).unwrap();
    s2.stop();

    assert_eq!(dio.sessions().len(), 2);
    assert!(detect_data_loss(&dio.session_index("svc-fluentbit").unwrap()).len() == 1);
    assert!(detect_data_loss(&dio.session_index("svc-other").unwrap()).is_empty());
}
