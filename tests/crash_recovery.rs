//! In-process recovery tests for the persistent backend (DESIGN.md §11):
//! deliberate on-disk corruption, subscription shutdown semantics, the
//! committed golden fixture, and property-based write→crash→reopen→query
//! round trips. The *process-kill* side of the crash contract lives in
//! `crates/bench/tests/crash_recovery.rs` (child-process harness).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use serde_json::{json, Value};

use dio_backend::{DocStore, SearchRequest, StorageConfig};
use dio_telemetry::MetricsRegistry;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dio-recover-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The active (highest-generation) segment log of every shard.
fn active_logs(root: &Path) -> Vec<PathBuf> {
    let mut logs = Vec::new();
    for entry in std::fs::read_dir(root).expect("read store root") {
        let path = entry.expect("dir entry").path();
        if !path.is_dir() {
            continue;
        }
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&path)
            .expect("read shard dir")
            .map(|e| e.expect("entry").path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "log")
                    && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("seg-"))
            })
            .collect();
        segs.sort();
        if let Some(active) = segs.pop() {
            logs.push(active);
        }
    }
    logs
}

fn all_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy root");
    for file in all_files(from) {
        let rel = file.strip_prefix(from).expect("under root");
        let dst = to.join(rel);
        std::fs::create_dir_all(dst.parent().expect("parent")).expect("create parent");
        std::fs::copy(&file, &dst).expect("copy file");
    }
}

// ------------------------------------------------- deliberate corruption

#[test]
fn torn_tail_is_truncated_and_counted() {
    let dir = tmp_store("torn");
    let docs: Vec<Value> = (0..40).map(|n| json!({"n": n, "syscall": "write"})).collect();
    {
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        store.bulk("dio-t", docs.clone());
        store.flush().unwrap();
    }
    // Simulate a kill mid-append: junk bytes (an unfinished frame) on
    // the tail of two shards' active segments.
    let mut torn_shards = 0;
    for log in active_logs(&dir).into_iter().take(2) {
        let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0xAB; 37]).unwrap();
        torn_shards += 1;
    }
    assert!(torn_shards > 0, "workload produced active segments");

    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    // Every acknowledged document survives; the junk is gone.
    let idx = store.index("dio-t");
    assert_eq!(idx.len(), docs.len());
    for (id, doc) in docs.iter().enumerate() {
        assert_eq!(idx.get(id as u64).as_ref(), Some(doc));
    }
    store.storage().unwrap().verify().expect("invariants after truncation");
    // The repair is visible in telemetry: `backend.recovery.truncated`.
    let registry = MetricsRegistry::new();
    store.bind_telemetry(&registry);
    assert_eq!(
        registry.counter("backend.recovery.truncated").get(),
        torn_shards,
        "one truncation per torn shard"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_file_corruption_opens_with_valid_survivors() {
    let dir = tmp_store("midfile");
    let docs: Vec<Value> = (0..60).map(|n| json!({"n": n, "pad": "x".repeat(40)})).collect();
    {
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        store.bulk("dio-m", docs.clone());
        store.flush().unwrap();
    }
    // Flip a byte in the middle of one active segment: everything from
    // that frame on is unrecoverable (media corruption, not a torn
    // write), and recovery must degrade to a clean prefix — open
    // succeeds, survivors are byte-exact, invariants hold.
    let victim = active_logs(&dir).into_iter().max_by_key(|p| p.metadata().unwrap().len());
    let victim = victim.expect("an active segment");
    let mut bytes = std::fs::read(&victim).unwrap();
    assert!(bytes.len() > 40, "victim segment has content");
    let at = bytes.len() / 2;
    bytes[at] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    assert!(store.storage_report().unwrap().recovery_truncated >= 1);
    store.storage().unwrap().verify().expect("invariants after corruption");
    let idx = store.index("dio-m");
    assert!(idx.len() < docs.len(), "the corrupted suffix is really gone");
    let resp = idx.search(&SearchRequest::match_all().size(1_000_000));
    for hit in resp.hits {
        assert_eq!(
            Some(&hit.source),
            docs.get(hit.id as usize),
            "survivor {} must be byte-exact",
            hit.id
        );
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_hint_file_is_rebuilt_without_data_loss() {
    let dir = tmp_store("hint");
    // 4 KiB segments + ~100-byte docs: plenty of seals, hence hints.
    let docs: Vec<Value> = (0..300).map(|n| json!({"n": n, "pad": "h".repeat(64)})).collect();
    {
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        store.bulk("dio-h", docs.clone());
        store.flush().unwrap();
    }
    let hints: Vec<PathBuf> = all_files(&dir)
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "hint"))
        .collect();
    assert!(!hints.is_empty(), "workload sealed at least one segment");
    // Corrupt one hint mid-file and truncate another: both anomalies
    // must be detected (per-entry CRCs, covered-length trailer) and the
    // hints rebuilt from the logs — hints are an optimization, never a
    // source of truth.
    let mut bytes = std::fs::read(&hints[0]).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x5A;
    std::fs::write(&hints[0], &bytes).unwrap();
    let mut rebuilt = 1;
    if let Some(second) = hints.get(1) {
        let bytes = std::fs::read(second).unwrap();
        std::fs::write(second, &bytes[..bytes.len() - 7]).unwrap();
        rebuilt += 1;
    }

    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    assert!(store.storage_report().unwrap().hints_rewritten >= rebuilt);
    assert_eq!(store.storage_report().unwrap().recovery_truncated, 0, "logs were fine");
    let idx = store.index("dio-h");
    assert_eq!(idx.len(), docs.len());
    for (id, doc) in docs.iter().enumerate() {
        assert_eq!(idx.get(id as u64).as_ref(), Some(doc));
    }
    store.storage().unwrap().verify().expect("invariants");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------- subscriptions across close

#[test]
fn subscription_closes_deterministically_on_store_shutdown() {
    let dir = tmp_store("subs");
    let sub;
    {
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        sub = store.subscribe_with_capacity("dio-live", 2);
        store.bulk("dio-live", vec![json!({"n": 1})]);
        store.bulk("dio-live", vec![json!({"n": 2})]);
        store.bulk("dio-live", vec![json!({"n": 3})]); // over capacity: dropped
        assert!(!sub.is_closed());
        assert_eq!(sub.missed_batches(), 1);
    } // store (and its indexes) dropped: the index side closes the queue

    assert!(sub.is_closed(), "index shutdown closes the subscription");
    // Batches delivered before the close stay drainable...
    assert_eq!(sub.recv_timeout(Duration::from_secs(30)).unwrap()[0]["n"], 1);
    assert_eq!(sub.try_recv().unwrap()[0]["n"], 2);
    // ...and once drained, recv returns None immediately instead of
    // sleeping out the timeout.
    let start = Instant::now();
    assert!(sub.recv_timeout(Duration::from_secs(30)).is_none());
    assert!(start.elapsed() < Duration::from_secs(5), "closed recv must not block");
    assert_eq!(sub.missed_batches(), 1, "miss counter is final after close");

    // Reopening the store is a fresh world: the old handle stays closed,
    // a new subscription sees new traffic.
    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    let fresh = store.subscribe("dio-live");
    store.bulk("dio-live", vec![json!({"n": 4})]);
    assert!(sub.is_closed());
    assert!(sub.try_recv().is_none());
    assert_eq!(fresh.try_recv().unwrap()[0]["n"], 4);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delete_index_closes_its_subscriptions() {
    let dir = tmp_store("subdel");
    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    let sub = store.subscribe("dio-gone");
    store.bulk("dio-gone", vec![json!({"n": 1})]);
    assert!(store.delete_index("dio-gone"));
    assert!(sub.is_closed());
    assert_eq!(sub.try_recv().unwrap()[0]["n"], 1, "pre-delete batch still drainable");
    assert!(sub.recv_timeout(Duration::from_secs(30)).is_none());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------- golden fixture

/// The exact config the committed fixture was generated with. Spelled
/// out literally (not via `tiny_for_tests`) so later tuning of the test
/// profile cannot silently invalidate the fixture.
fn fixture_config() -> StorageConfig {
    StorageConfig {
        shards: 4,
        max_segment_bytes: 4096,
        compact_min_dead_ratio: 0.2,
        compact_min_sealed_bytes: 1024,
        sync_every_batch: false,
        auto_compact: false,
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/store_v1")
}

/// The deterministic history behind the fixture, and the state it must
/// recover to: puts across two sessions, overwrite-free deletes, a
/// dropped third session, and one compaction.
fn fixture_state(store: &DocStore) -> BTreeMap<String, Vec<(u64, Value)>> {
    let s1: Vec<Value> = (0..120).map(|n| json!({"n": n, "syscall": "read"})).collect();
    let s2: Vec<Value> = (0..30).map(|n| json!({"n": n, "syscall": "openat"})).collect();
    store.bulk("dio-fix1", s1.clone());
    store.bulk("dio-fix2", s2.clone());
    store.bulk("dio-dropped", (0..50).map(|n| json!({"n": n})).collect());
    let idx1 = store.index("dio-fix1");
    for id in [3u64, 77, 118] {
        assert!(idx1.delete(id));
    }
    store.delete_index("dio-dropped");
    store.compact_now().unwrap();
    store.flush().unwrap();

    let mut expect = BTreeMap::new();
    expect.insert(
        "dio-fix1".to_string(),
        s1.into_iter()
            .enumerate()
            .map(|(id, doc)| (id as u64, doc))
            .filter(|(id, _)| ![3u64, 77, 118].contains(id))
            .collect::<Vec<_>>(),
    );
    expect.insert(
        "dio-fix2".to_string(),
        s2.into_iter().enumerate().map(|(id, doc)| (id as u64, doc)).collect(),
    );
    expect
}

/// Regenerates `tests/fixtures/store_v1`. Run explicitly (and commit the
/// result) when the on-disk format version changes:
/// `cargo test --test crash_recovery regenerate -- --ignored`
#[test]
#[ignore = "writes the committed fixture; run by hand on format changes"]
fn regenerate_golden_fixture() {
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = DocStore::open_with(&dir, fixture_config()).unwrap();
    fixture_state(&store);
    drop(store);
    println!("fixture regenerated at {}", dir.display());
}

#[test]
fn golden_fixture_reopens_byte_for_byte() {
    let fixture = fixture_dir();
    assert!(
        fixture.join("MANIFEST").exists(),
        "committed fixture missing — run the regenerate_golden_fixture test"
    );
    // Work on a copy: the committed tree must stay pristine even if the
    // assertions below fail halfway.
    let dir = tmp_store("golden");
    copy_tree(&fixture, &dir);

    let store = DocStore::open_with(&dir, fixture_config()).unwrap();
    // Contents: exactly the state the fixture history produced.
    let expect = {
        let scratch = tmp_store("golden-expect");
        let s = DocStore::open_with(&scratch, fixture_config()).unwrap();
        let state = fixture_state(&s);
        drop(s);
        let _ = std::fs::remove_dir_all(&scratch);
        state
    };
    assert_eq!(store.index_names(), expect.keys().cloned().collect::<Vec<_>>());
    for (name, docs) in &expect {
        let idx = store.index(name);
        assert_eq!(idx.len(), docs.len(), "{name}");
        for (id, doc) in docs {
            assert_eq!(idx.get(*id).as_ref(), Some(doc), "{name}/{id}");
        }
    }
    store.storage().unwrap().verify().expect("fixture invariants");
    assert_eq!(store.storage_report().unwrap().recovery_truncated, 0);
    assert_eq!(store.storage_report().unwrap().hints_rewritten, 0);
    drop(store);

    // A clean open + close must not rewrite a single byte: recovery is
    // read-only on an intact store, so format compatibility is
    // testable against the committed tree forever.
    let before: Vec<(PathBuf, Vec<u8>)> = all_files(&fixture)
        .into_iter()
        .map(|p| (p.strip_prefix(&fixture).unwrap().to_path_buf(), std::fs::read(&p).unwrap()))
        .collect();
    let after: Vec<(PathBuf, Vec<u8>)> = all_files(&dir)
        .into_iter()
        .map(|p| (p.strip_prefix(&dir).unwrap().to_path_buf(), std::fs::read(&p).unwrap()))
        .collect();
    assert_eq!(before.len(), after.len(), "no files created or removed");
    for ((rel_a, bytes_a), (rel_b, bytes_b)) in before.iter().zip(after.iter()) {
        assert_eq!(rel_a, rel_b);
        assert_eq!(bytes_a, bytes_b, "{} changed across reopen", rel_a.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------ proptests

/// Abstract mutation for the model-based round trip.
#[derive(Debug, Clone)]
enum StoreOp {
    Put { index: u8, count: u8 },
    Delete { index: u8, pick: u16 },
    Compact,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        4 => (0u8..3, 1u8..5).prop_map(|(index, count)| StoreOp::Put { index, count }),
        2 => (0u8..3, any::<u16>()).prop_map(|(index, pick)| StoreOp::Delete { index, pick }),
        1 => Just(StoreOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary put/delete/compact histories, a simulated crash (junk
    /// appended beyond the acknowledged tail of every active segment),
    /// then reopen: the store must equal the in-memory model exactly.
    #[test]
    fn arbitrary_history_survives_crash_and_reopen(
        ops in proptest::collection::vec(store_op(), 1..30),
        junk in proptest::collection::vec(any::<u8>(), 1..80),
    ) {
        let dir = tmp_store("prop");
        let mut model: BTreeMap<(u8, u64), Value> = BTreeMap::new();
        let mut next_id = [0u64; 3];
        {
            let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
            for (n, op) in ops.iter().enumerate() {
                match op {
                    StoreOp::Put { index, count } => {
                        let docs: Vec<Value> = (0..*count)
                            .map(|k| json!({"op": n, "k": k, "pad": "p".repeat(n % 23)}))
                            .collect();
                        let ids = store.bulk(&format!("dio-p{index}"), docs.clone());
                        for (id, doc) in ids.into_iter().zip(docs) {
                            prop_assert_eq!(id, next_id[*index as usize]);
                            next_id[*index as usize] += 1;
                            model.insert((*index, id), doc);
                        }
                    }
                    StoreOp::Delete { index, pick } => {
                        let live: Vec<u64> = model
                            .keys()
                            .filter(|(i, _)| i == index)
                            .map(|(_, id)| *id)
                            .collect();
                        if !live.is_empty() {
                            let id = live[*pick as usize % live.len()];
                            let deleted = store.index(&format!("dio-p{index}")).delete(id);
                            prop_assert!(deleted);
                            model.remove(&(*index, id));
                        }
                    }
                    StoreOp::Compact => store.compact_now().unwrap(),
                }
            }
        }
        // Crash: unacknowledged junk lands after the durable tail.
        for log in active_logs(&dir) {
            let mut f = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
            f.write_all(&junk).unwrap();
        }

        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        store.storage().unwrap().verify().map_err(TestCaseError::fail)?;
        let total: usize = store.index_names().iter().map(|n| store.index(n).len()).sum();
        prop_assert_eq!(total, model.len(), "exact live-set cardinality");
        for ((index, id), doc) in &model {
            let got = store.get_index(&format!("dio-p{index}")).and_then(|i| i.get(*id));
            prop_assert_eq!(got.as_ref(), Some(doc), "doc {}/{}", index, id);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
