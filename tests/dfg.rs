//! The streaming DFG profiler end to end: mining determinism (property:
//! the mined graph is a pure function of the event sequence, however it
//! is batched), the golden `dio top` DFG panel, and alert attribution
//! over both case-study workloads — the Fig. 2 data-loss alert and the
//! Fig. 3 contention alerts must each name a critical syscall edge.

use proptest::prelude::*;
use serde_json::{json, Value};

use dio::core::{to_json, DfgMiner, DiagnoseConfig, Dio, ProfileConfig, SyscallKind, TracerConfig};
use dio_bench::rocksdb_run::{run_rocksdb, RocksdbRunConfig, TracingSetup};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};

// ------------------------------------------------------ mined-event gen

const SYSCALLS: &[&str] =
    &["openat", "read", "pread64", "write", "pwrite64", "lseek", "fsync", "close", "unlink"];

/// One synthetic parsed event: (tid, syscall index, time gap, latency,
/// optional file-tag index).
fn event_strategy() -> impl Strategy<Value = (u8, u8, u16, u16, u8)> {
    (0u8..3, 0u8..SYSCALLS.len() as u8, any::<u16>(), any::<u16>(), 0u8..3)
}

/// Materializes the generated tuples into the parsed-event documents the
/// consumer ships (monotonic time axis, stable pid/proc fields).
fn materialize(raw: &[(u8, u8, u16, u16, u8)]) -> Vec<Value> {
    let mut time = 0u64;
    raw.iter()
        .map(|&(tid, syscall, gap, latency, tag)| {
            time += 1 + gap as u64;
            json!({
                "time": time,
                "syscall": SYSCALLS[syscall as usize],
                "pid": 100 + (tid as u64 % 2),
                "tid": 100 + tid as u64,
                "proc_name": "gen",
                "latency_ns": latency as u64,
                "ret_val": 1,
                "file_tag": if tag == 0 { Value::Null } else { json!(format!("8:1|{tag}|7")) },
            })
        })
        .collect()
}

fn mine(docs: &[Value], batch: usize) -> Value {
    let miner = DfgMiner::new(ProfileConfig::default());
    for chunk in docs.chunks(batch.max(1)) {
        miner.observe_batch(chunk);
    }
    miner.finish();
    to_json(&miner.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mining the same sequence twice yields byte-identical snapshots —
    /// no hidden wall-clock or iteration-order dependence.
    #[test]
    fn same_sequence_mines_identically(raw in proptest::collection::vec(event_strategy(), 1..120)) {
        let docs = materialize(&raw);
        prop_assert_eq!(mine(&docs, 16), mine(&docs, 16));
    }

    /// Streaming in arbitrary batch sizes equals one-shot offline replay:
    /// the DFG is a pure function of the event sequence, not its framing.
    #[test]
    fn stream_batching_equals_offline_replay(
        raw in proptest::collection::vec(event_strategy(), 1..120),
        batch in 1usize..32,
    ) {
        let docs = materialize(&raw);
        prop_assert_eq!(mine(&docs, batch), mine(&docs, docs.len()));
    }
}

// ------------------------------------------------------ golden top panel

/// A pinned event sequence renders a byte-stable `dio top` DFG panel.
/// Regenerate after an intentional format change with:
///
/// ```text
/// DIO_UPDATE_GOLDEN=1 cargo test --test dfg golden
/// ```
#[test]
fn dfg_top_panel_matches_golden_snapshot() {
    let miner = DfgMiner::new(ProfileConfig::default());
    let script: &[(&str, u64, u64)] = &[
        ("openat", 1_000, 2_500),
        ("write", 11_000, 40_000),
        ("write", 61_000, 42_000),
        ("write", 111_000, 41_000),
        ("fsync", 161_000, 2_900_000),
        ("write", 3_100_000, 39_000),
        ("fsync", 3_150_000, 3_050_000),
        ("close", 6_300_000, 1_800),
    ];
    let docs: Vec<Value> = script
        .iter()
        .map(|&(syscall, time, latency)| {
            json!({
                "time": time, "syscall": syscall, "pid": 7, "tid": 7,
                "proc_name": "writer", "latency_ns": latency, "ret_val": 8,
                "file_tag": "8:1|42|1000",
            })
        })
        .collect();
    miner.observe_batch(&docs);
    miner.finish();

    let rendered = dio::core::render_dfg_panel(&to_json(&miner.snapshot()));
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dfg_top.txt");
    if std::env::var_os("DIO_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden snapshot present");
    assert_eq!(rendered, golden, "DFG panel drifted from tests/golden/dfg_top.txt");
}

// --------------------------------------------- case-study attribution

fn assert_traced_edge(attribution: &Value) -> String {
    let edge = attribution["edge"].as_str().expect("attribution names an edge").to_string();
    let (from, to) = edge.split_once("->").expect("edge is a transition");
    assert!(from.parse::<SyscallKind>().is_ok(), "edge source {from} is a traced syscall");
    assert!(to.parse::<SyscallKind>().is_ok(), "edge target {to} is a traced syscall");
    assert!(
        attribution["transitions"].as_u64().unwrap_or(0) > 0,
        "attribution backed by observed transitions: {attribution}"
    );
    edge
}

/// Fig. 2 (exp_fig2's workload): the buggy tailer's live data-loss alert
/// carries a non-empty attribution block naming a DFG edge.
#[test]
fn fig2_data_loss_alert_carries_dfg_attribution() {
    let dio = Dio::new();
    let session = dio.trace(
        TracerConfig::new("dfg-attr-fig2")
            .diagnose(DiagnoseConfig::default())
            .profile(ProfileConfig::default()),
    );
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 20_000_000)
        .expect("scenario replays");
    let report = session.stop();

    let data_loss: Vec<_> =
        report.trace.alerts.iter().filter(|a| a.detector == "data_loss").collect();
    assert!(!data_loss.is_empty(), "buggy tailer must raise data loss: {:?}", report.trace.alerts);
    for alert in data_loss {
        let attribution = alert.attribution.as_ref().expect("data-loss alert attributed");
        let edge = assert_traced_edge(attribution);
        // The fault is the reader resuming at a stale offset: the alert
        // window closes on the reader's I/O, so the critical transition
        // ends (or starts) in a data-path operation, not pure metadata.
        assert!(
            ["read", "pread64", "write", "openat", "close", "lseek", "stat", "unlink", "creat"]
                .iter()
                .any(|s| edge.contains(s)),
            "edge {edge} names the tail-and-rotate data path"
        );
    }
    // The final DFG rides the summary for offline inspection.
    let dfg = report.trace.dfg.expect("profiling enabled");
    assert!(dfg.transitions > 0);
    assert_eq!(dfg.tags.len(), 2, "both /app.log generations mined");
}

/// Fig. 3 (exp_fig3's workload, scaled down): every live contention
/// alert carries a non-empty attribution block naming a DFG edge.
#[test]
fn fig3_contention_alerts_carry_dfg_attribution() {
    let config = RocksdbRunConfig {
        diagnose: true,
        profile: true,
        ops_per_thread: 4_000,
        ..RocksdbRunConfig::default()
    };
    let result = run_rocksdb(TracingSetup::Dio, &config);
    let (summary, _backend) = result.dio.expect("dio outputs");

    let contention: Vec<_> = summary.alerts.iter().filter(|a| a.detector == "contention").collect();
    assert!(!contention.is_empty(), "compaction must contend: {:?}", summary.alerts);
    for alert in contention {
        let attribution = alert.attribution.as_ref().expect("contention alert attributed");
        assert_traced_edge(attribution);
        assert!(
            attribution["latency_ns"].as_u64().unwrap_or(0) > 0,
            "critical edge carries window latency: {attribution}"
        );
    }
    let dfg = summary.dfg.expect("profiling enabled");
    assert!(dfg.transitions > 0, "fig3 run must mine transitions");
    assert!(!dfg.processes.is_empty(), "per-process graphs mined");
}
