//! Live diagnosis under pressure: when the ring buffer backs up, the
//! engine must degrade to sampled evaluation — visible in its stats and
//! telemetry counters — while the shipper keeps flowing untouched. Plus
//! the zero-tracer path: a backend subscription feeding the engine.

use std::time::Duration;

use dio::core::{
    DiagnoseConfig, DiagnosisEngine, Dio, DiskProfile, Kernel, RingConfig, TracerConfig,
};

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

/// An under-provisioned session (tiny ring, starved consumer) with live
/// diagnosis: detector evaluation drops to sampled mode instead of
/// stalling the shipper.
#[test]
fn pressure_degrades_evaluation_to_sampling_without_stalling_shipper() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(
        TracerConfig::new("degraded")
            .ring(RingConfig { bytes_per_cpu: 32 * 512, est_event_bytes: 512 })
            .drain_batch(8)
            .poll_interval(Duration::from_millis(10))
            .telemetry_interval(Duration::from_millis(5))
            .diagnose(DiagnoseConfig::default()),
    );

    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd = t.creat("/data.bin", 0o644).unwrap();
    for i in 0..4_000u64 {
        t.pwrite64(fd, b"x", i).unwrap();
    }
    t.close(fd).unwrap();
    let report = session.stop();
    let trace = &report.trace;

    // The starvation regime really held.
    assert!(trace.events_dropped > 0, "tiny ring must drop");
    assert!(trace.events_stored > 0);

    // Degradation engaged: some batches were evaluated 1-in-N, so the
    // engine saw everything but inspected only a sample.
    let stats = trace.diagnosis.expect("diagnosis enabled");
    assert_eq!(stats.observed, trace.events_stored, "tap sees every shipped event");
    assert!(stats.degraded_batches > 0, "ring pressure must trigger degraded mode: {stats:?}");
    assert!(stats.sampled_out > 0, "degraded batches skip events: {stats:?}");
    assert_eq!(stats.evaluated + stats.sampled_out, stats.observed);
    assert!(stats.evaluated < stats.observed);

    // Degradation is observable in the session's own telemetry.
    assert_eq!(
        trace.health.counter("diagnose.batches.degraded"),
        stats.degraded_batches,
        "degraded-mode counter must reach the health snapshot"
    );
    assert_eq!(trace.health.counter("diagnose.events.sampled_out"), stats.sampled_out);
    assert_eq!(trace.health.counter("diagnose.events.observed"), stats.observed);

    // The shipper was never stalled by diagnosis: every accepted event
    // still completed its span and landed in the backend.
    assert_eq!(trace.spans.completed, trace.events_stored);
    assert_eq!(trace.spans.lag_watermark_ns, 0, "session drained clean");
    let index = dio.session_index("degraded").expect("session stored");
    assert_eq!(index.len() as u64, trace.events_stored);
}

/// A healthy session evaluates everything: no degraded batches, no
/// sampling.
#[test]
fn unpressured_session_evaluates_every_event() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(TracerConfig::new("calm").diagnose(DiagnoseConfig::default()));
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd = t.creat("/calm.bin", 0o644).unwrap();
    for _ in 0..50 {
        t.write(fd, b"steady").unwrap();
    }
    t.close(fd).unwrap();
    let report = session.stop();
    let stats = report.trace.diagnosis.expect("diagnosis enabled");
    assert_eq!(stats.observed, report.trace.events_stored);
    assert_eq!(stats.evaluated, stats.observed);
    assert_eq!(stats.sampled_out, 0);
    assert_eq!(stats.degraded_batches, 0);
}

/// The backend-subscription path: an engine fed by a continuous query on
/// the session's event index (no tracer tap at all) reaches the same
/// verdict, and a slow subscriber loses batches without ever blocking
/// the indexer.
#[test]
fn backend_subscription_feeds_engine_without_tracer_tap() {
    let dio = Dio::with_kernel(fast_kernel());
    // Subscribe BEFORE the session starts so no batch is missed; note no
    // `.diagnose(..)` on the tracer — this is the out-of-process setup.
    let subscription = dio.backend().subscribe("dio-subfed");
    let engine = DiagnosisEngine::new(DiagnoseConfig::default());
    let handle = engine.spawn_subscriber(subscription);

    let session = dio.trace(TracerConfig::new("subfed"));
    let t = dio.kernel().spawn_process("tailer").spawn_thread("tailer");
    let fd = t.creat("/tail.log", 0o644).unwrap();
    for _ in 0..30 {
        t.write(fd, b"line\n").unwrap();
    }
    t.close(fd).unwrap();
    let report = session.stop();
    assert!(report.trace.diagnosis.is_none(), "tracer itself ran without an engine");

    handle.stop();
    let stats = engine.stats();
    assert_eq!(stats.observed, report.trace.events_stored, "subscription saw every bulk");
    assert_eq!(stats.missed_batches, 0);
}
