//! Parity between the streaming detectors in `dio-diagnose` and the
//! offline algorithms in `dio-correlate`: fed the same event set (with
//! the streaming window sized so nothing is cut off), both must reach
//! the same verdicts — the live engine is an *incremental port*, not a
//! different analysis.
//!
//! The second half holds the shipped `.dio` rule files to the same
//! standard against the *hand-coded* detectors they re-express: over
//! the traced Fig. 2 scenario and Fig. 3-shaped streams, compiled rules
//! must produce the identical alert sequence — same kinds, severities,
//! times, and window bounds, in the same order.

use proptest::prelude::*;

use dio::core::{Dio, DiskProfile, Kernel, Query, SearchRequest, SortOrder, TracerConfig};
use dio_backend::Index;
use dio_correlate::{detect_contention, detect_data_loss, ContentionConfig};
use dio_diagnose::{
    Alert, AlertKind, ContentionDetector, DataLossDetector, DiagnoseConfig, DiagnosisEngine,
    DynDetector, Severity,
};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};
use serde_json::{json, Value};

// --------------------------------------------------------- data loss

/// One file generation: bytes written, then the first read's (offset,
/// ret). Writes preceding reads per generation is the regime both
/// algorithms assume (a tailer only reads after the writer produced
/// something), and where their `bytes_at_risk` accounting coincides.
#[derive(Debug, Clone)]
struct GenSpec {
    writes: Vec<u16>,
    read: Option<(u16, i64)>, // first-read offset, ret_val
}

fn gen_spec() -> impl Strategy<Value = GenSpec> {
    let read =
        prop_oneof![Just(None), (0..200u16, prop_oneof![Just(0i64), 1..100i64]).prop_map(Some),];
    (proptest::collection::vec(1..400u16, 0..4), read)
        .prop_map(|(writes, read)| GenSpec { writes, read })
}

fn data_loss_docs(files: &[Vec<GenSpec>]) -> Vec<Value> {
    let mut docs = Vec::new();
    let mut time = 0u64;
    for (f, gens) in files.iter().enumerate() {
        let (dev, ino) = (7340032u64, 100 + f as u64);
        for (g, spec) in gens.iter().enumerate() {
            // Distinct first-access timestamp per generation = the
            // inode-reuse signature the file tag encodes.
            let tag = format!("{dev}|{ino}|{}", (g as u64 + 1) * 1_000);
            let mut offset = 0u64;
            for &w in &spec.writes {
                time += 10;
                docs.push(json!({
                    "session": "parity", "syscall": "write", "class": "write",
                    "pid": 1, "tid": 1, "proc_name": "flb-pipeline",
                    "time": time, "ret_val": w, "offset": offset,
                    "file_tag": tag, "file_path": format!("/log{f}"),
                }));
                offset += w as u64;
            }
            if let Some((roff, ret)) = spec.read {
                time += 10;
                docs.push(json!({
                    "session": "parity", "syscall": "read", "class": "read",
                    "pid": 2, "tid": 2, "proc_name": "fluent-bit",
                    "time": time, "ret_val": ret, "offset": roff,
                    "file_tag": tag, "file_path": format!("/log{f}"),
                }));
            }
        }
    }
    docs
}

fn data_loss_alerts(alerts: &[Alert]) -> Vec<&Alert> {
    alerts.iter().filter(|a| a.kind == AlertKind::DataLoss).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming [`DataLossDetector`] == offline [`detect_data_loss`]:
    /// same incident count, and per incident the same stale offset,
    /// bytes at risk, and reader.
    #[test]
    fn streaming_data_loss_matches_offline(
        files in proptest::collection::vec(
            proptest::collection::vec(gen_spec(), 1..4), 1..3)
    ) {
        let docs = data_loss_docs(&files);

        let index = Index::new("dio-parity");
        index.bulk(docs.clone());
        let offline = detect_data_loss(&index);

        let mut det = DataLossDetector::default();
        let mut alerts = Vec::new();
        for doc in &docs {
            det.observe(doc, &mut alerts);
        }
        let streamed = data_loss_alerts(&alerts);

        prop_assert_eq!(streamed.len(), offline.len(),
            "incident counts diverge: offline {:?} vs streamed {:?}", offline, alerts);
        for (alert, incident) in streamed.iter().zip(&offline) {
            prop_assert_eq!(alert.fields["stale_offset"].as_u64(), Some(incident.stale_offset));
            prop_assert_eq!(alert.fields["bytes_at_risk"].as_u64(), Some(incident.bytes_at_risk));
            prop_assert_eq!(alert.fields["reader"].as_str().unwrap_or(""), incident.reader.as_str());
            prop_assert_eq!(alert.fields["tag"].as_str().map(str::to_string),
                Some(incident.tag.to_string()));
        }
    }
}

// -------------------------------------------------------- contention

/// One Fig. 4 window: client ops plus background compaction threads.
/// `None` = a silent window (exercises the gap-fill path both
/// implementations must apply identically).
fn window_spec() -> impl Strategy<Value = Option<(u8, u8, u8)>> {
    prop_oneof![Just(None), (0..12u8, 0..8u8, 1..5u8).prop_map(Some)]
}

const WINDOW_NS: u64 = 1_000;

fn contention_docs(windows: &[Option<(u8, u8, u8)>]) -> Vec<Value> {
    let mut docs = Vec::new();
    for (w, spec) in windows.iter().enumerate() {
        let base = w as u64 * WINDOW_NS;
        let Some((clients, bg_threads, bg_ops)) = spec else { continue };
        for i in 0..*clients as u64 {
            docs.push(json!({
                "session": "parity", "syscall": "pread64", "class": "read",
                "pid": 1, "tid": 1, "proc_name": "db_bench_c", "time": base + i,
                "ret_val": 4096,
            }));
        }
        for t in 0..*bg_threads {
            for i in 0..*bg_ops as u64 {
                docs.push(json!({
                    "session": "parity", "syscall": "pwrite64", "class": "write",
                    "pid": 1, "tid": 2 + t, "proc_name": format!("rocksdb:low{t}"),
                    "time": base + 100 + i, "ret_val": 4096,
                }));
            }
        }
    }
    docs
}

fn float_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming [`ContentionDetector::report`] == offline
    /// [`detect_contention`]: identical window activity (including
    /// gap-filled silent windows), means, and overall verdict.
    #[test]
    fn streaming_contention_matches_offline(
        windows in proptest::collection::vec(window_spec(), 1..7),
        threshold in 0..7usize,
    ) {
        let docs = contention_docs(&windows);

        let index = Index::new("dio-parity");
        index.bulk(docs.clone());
        let config = ContentionConfig {
            window_ns: WINDOW_NS,
            background_threshold: threshold,
            ..Default::default()
        };
        let offline = detect_contention(&index, &config);

        let mut det = ContentionDetector::new(
            WINDOW_NS,
            config.client_prefix.clone(),
            config.background_prefix.clone(),
            threshold,
        );
        for doc in &docs {
            det.observe(doc);
        }
        let mut alerts = Vec::new();
        det.evaluate_all(&mut alerts);
        let streamed = det.report();

        prop_assert_eq!(&streamed.windows, &offline.windows);
        prop_assert!(float_eq(streamed.client_ops_contended, offline.client_ops_contended),
            "contended means diverge: {} vs {}",
            streamed.client_ops_contended, offline.client_ops_contended);
        prop_assert!(float_eq(streamed.client_ops_calm, offline.client_ops_calm),
            "calm means diverge: {} vs {}",
            streamed.client_ops_calm, offline.client_ops_calm);
        prop_assert_eq!(streamed.contention_detected(), offline.contention_detected());
    }
}

// ------------------------------------------------- engine end-to-end

/// The assembled engine over the exact Fig. 2a fixture reaches the same
/// verdict as the offline pass over the same stored trace.
#[test]
fn engine_agrees_with_offline_on_fig2a_fixture() {
    let mk = |time: u64, syscall: &str, proc: &str, ret: i64, tag: &str, offset: u64| {
        json!({
            "session": "fig2a", "syscall": syscall,
            "class": if syscall == "read" { "read" } else { "write" },
            "pid": 1, "tid": 1, "proc_name": proc, "time": time,
            "ret_val": ret, "offset": offset, "file_tag": tag,
            "file_path": "/app.log",
        })
    };
    let docs = vec![
        mk(100, "write", "flb-pipeline", 26, "7340032|12|100", 0),
        mk(200, "read", "fluent-bit", 26, "7340032|12|100", 0),
        mk(300, "write", "flb-pipeline", 16, "7340032|12|200", 0),
        mk(400, "read", "fluent-bit", 0, "7340032|12|200", 26),
    ];

    let index = Index::new("dio-fig2a");
    index.bulk(docs.clone());
    let offline = detect_data_loss(&index);
    assert_eq!(offline.len(), 1);

    let engine = DiagnosisEngine::new(DiagnoseConfig::default());
    engine.observe_batch(&docs);
    engine.finish();
    let live = engine.alerts();
    let live_loss = data_loss_alerts(&live);
    assert_eq!(live_loss.len(), 1, "engine must flag the Fig. 2a bug: {live:?}");
    assert_eq!(live_loss[0].fields["stale_offset"].as_u64(), Some(offline[0].stale_offset));
    assert_eq!(live_loss[0].fields["bytes_at_risk"].as_u64(), Some(offline[0].bytes_at_risk));
}

// ------------------------------------------- shipped rules vs detectors

/// The comparable spine of an alert: what must be *identical* between a
/// hand-coded detector and the rule re-expressing it. Messages, subjects,
/// and evidence are each implementation's own voice; kind, severity,
/// time, and window bounds are the diagnosis.
type AlertSpine = (AlertKind, Severity, u64, Option<u64>, Option<u64>);

fn spine(alerts: &[Alert]) -> Vec<AlertSpine> {
    alerts
        .iter()
        .map(|a| (a.kind, a.severity, a.time_ns, a.window_start_ns, a.window_end_ns))
        .collect()
}

/// Runs a compiled rule file over a finished document stream.
fn run_rules(source: &str, docs: &[Value]) -> Vec<Alert> {
    let mut set = dio_rules::compile(source).expect("shipped rules verify");
    let mut out = Vec::new();
    for doc in docs {
        set.observe(doc, &mut out);
        set.evaluate_ready(&mut out);
    }
    set.evaluate_all(&mut out);
    out
}

/// Traces one Fluent Bit issue-1875 run and returns its event documents
/// in stream (time) order.
fn traced_fluentbit_stream(version: FluentBitVersion, session: &str) -> Vec<Value> {
    let dio = Dio::with_kernel(Kernel::builder().root_disk(DiskProfile::instant()).build());
    let handle = dio.trace(TracerConfig::new(session));
    run_issue_1875(dio.kernel(), version, "/app.log", 0).unwrap();
    handle.stop();
    let index = dio.session_index(session).unwrap();
    let total = index.count(&Query::MatchAll) as usize;
    let hits = index
        .search(&SearchRequest::new(Query::MatchAll).sort_by("time", SortOrder::Asc).size(total))
        .hits;
    assert_eq!(hits.len(), total, "stream pull must not truncate");
    hits.into_iter().map(|h| h.source).collect()
}

/// `rules/fig2_data_loss.dio` over the traced buggy run == the
/// hand-coded [`DataLossDetector`]: one critical data-loss alert,
/// identical spine, naming the firing rule.
#[test]
fn fig2_rules_match_detector_on_traced_buggy_stream() {
    let docs = traced_fluentbit_stream(FluentBitVersion::V1_4_0, "rules-fig2a");

    let mut det = DataLossDetector::default();
    let mut hand = Vec::new();
    for doc in &docs {
        det.observe(doc, &mut hand);
    }
    let ruled = run_rules(dio_rules::shipped::FIG2_DATA_LOSS, &docs);

    assert_eq!(spine(&ruled), spine(&hand), "rule alerts must mirror the detector's");
    assert_eq!(hand.len(), 1, "the buggy run raises exactly the Fig. 2a alert: {hand:?}");
    assert_eq!(ruled[0].kind, AlertKind::DataLoss);
    assert_eq!(ruled[0].severity, Severity::Critical);
    assert_eq!(ruled[0].detector, "rules");
    assert_eq!(ruled[0].fields["rule"], "data_loss");
}

/// Over the fixed version's trace both stay silent, and the rule file's
/// `validated_restart` record observes the offset-0 restart the detector
/// counts.
#[test]
fn fig2_rules_match_detector_on_traced_fixed_stream() {
    let docs = traced_fluentbit_stream(FluentBitVersion::V2_0_5, "rules-fig2b");

    let mut det = DataLossDetector::default();
    let mut hand = Vec::new();
    for doc in &docs {
        det.observe(doc, &mut hand);
    }
    assert!(hand.is_empty(), "the fix must not alert: {hand:?}");

    let mut set = dio_rules::compile(dio_rules::shipped::FIG2_DATA_LOSS).unwrap();
    let mut ruled = Vec::new();
    for doc in &docs {
        set.observe(doc, &mut ruled);
    }
    set.evaluate_all(&mut ruled);
    assert!(ruled.is_empty(), "rules must stay silent on the fixed run: {ruled:?}");

    let validated = det.validated_restarts();
    let restarts = set
        .reports()
        .into_iter()
        .find(|r| r["rule"] == "validated_restart")
        .expect("shipped rule present")["records"]
        .as_u64()
        .unwrap_or(0);
    assert_eq!(restarts, validated, "validated restarts counted identically");
    assert_eq!(validated, 1);
}

/// `attribution on` is pure decoration: the same traced stream through
/// the engine with and without an attributor installed yields identical
/// alert spines, fields, and messages — the block rides along on the
/// opted-in rules without ever changing the diagnosis.
#[test]
fn attribution_never_changes_the_alert_spine() {
    let docs = traced_fluentbit_stream(FluentBitVersion::V1_4_0, "attr-parity");

    let run = |attribute: bool| -> Vec<Alert> {
        let engine = DiagnosisEngine::new(DiagnoseConfig::default());
        let set = dio_rules::compile(dio_rules::shipped::FIG2_DATA_LOSS).unwrap();
        engine.install_detector(Box::new(set));
        if attribute {
            engine.set_attributor(Box::new(|alert| {
                json!({
                    "edge": "write->read",
                    "transitions": 1,
                    "subject": alert.subject,
                })
                .into()
            }));
        }
        engine.observe_batch(&docs);
        engine.finish();
        engine.alerts()
    };

    let bare = run(false);
    let attributed = run(true);
    assert!(!bare.is_empty(), "the buggy stream must alert");
    assert!(bare.iter().all(|a| a.attribution.is_none()));
    assert_eq!(spine(&attributed), spine(&bare), "attribution must not change the spine");
    for (a, b) in attributed.iter().zip(&bare) {
        assert_eq!(a.fields, b.fields, "fields untouched by attribution");
        assert_eq!(a.message, b.message, "message untouched by attribution");
        assert_eq!(a.subject, b.subject);
        assert_eq!(a.evidence.len(), b.evidence.len());
    }
    // The shipped data_loss rule opts in, so its alerts carry the block.
    assert!(
        attributed
            .iter()
            .filter(|a| a.fields["rule"] == "data_loss")
            .all(|a| a.attribution.is_some()),
        "opted-in rule alerts must be attributed: {attributed:?}"
    );
}

/// Fig. 3-shaped stream at the engine's real scale (1 s windows,
/// `db_bench*` clients vs `rocksdb:low*` compactions, threshold 5):
/// calm windows build the baseline, then a contended window with
/// depressed client throughput fires — identically on both sides.
fn fig3_docs(windows: &[Option<(u8, u8, u8)>]) -> Vec<Value> {
    const SECOND: u64 = 1_000_000_000;
    let mut docs = Vec::new();
    for (w, spec) in windows.iter().enumerate() {
        let base = w as u64 * SECOND;
        let Some((clients, bg_threads, bg_ops)) = spec else { continue };
        for i in 0..*clients as u64 {
            docs.push(json!({
                "session": "rules-fig3", "syscall": "pread64", "class": "read",
                "pid": 1, "tid": 1, "proc_name": "db_bench_c", "time": base + i,
                "ret_val": 4096,
            }));
        }
        for t in 0..*bg_threads {
            for i in 0..*bg_ops as u64 {
                docs.push(json!({
                    "session": "rules-fig3", "syscall": "pwrite64", "class": "write",
                    "pid": 1, "tid": 2 + t, "proc_name": format!("rocksdb:low{t}"),
                    "time": base + 100 + i, "ret_val": 4096,
                }));
            }
        }
    }
    docs
}

fn fig3_hand_alerts(docs: &[Value]) -> Vec<Alert> {
    let defaults = DiagnoseConfig::default();
    let mut det = ContentionDetector::new(
        defaults.window_ns,
        defaults.client_prefix.clone(),
        defaults.background_prefix.clone(),
        defaults.background_threshold,
    );
    for doc in docs {
        det.observe(doc);
    }
    let mut out = Vec::new();
    det.evaluate_all(&mut out);
    out
}

#[test]
fn fig3_rule_matches_detector_on_contended_stream() {
    // Two calm windows (8 clients each, 2 background threads), then a
    // contended one: 6 distinct compaction threads, clients down to 3.
    let docs = fig3_docs(&[Some((8, 2, 3)), Some((8, 2, 3)), Some((3, 6, 4))]);

    let hand = fig3_hand_alerts(&docs);
    let ruled = run_rules(dio_rules::shipped::FIG3_CONTENTION, &docs);

    assert_eq!(spine(&ruled), spine(&hand), "rule alerts must mirror the detector's");
    assert_eq!(hand.len(), 1, "the contended window must fire: {hand:?}");
    assert_eq!(ruled[0].kind, AlertKind::ContentionSkew);
    assert_eq!(ruled[0].severity, Severity::Warning);
    assert_eq!(ruled[0].fields["rule"], "contention_skew");
    assert_eq!(ruled[0].window_start_ns, Some(2_000_000_000));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary Fig. 3-shaped streams (silent windows included, so the
    /// gap-fill path is exercised): `rules/fig3_contention.dio` and the
    /// hand-coded [`ContentionDetector`] emit identical alert sequences.
    #[test]
    fn fig3_rule_matches_detector_on_arbitrary_windows(
        windows in proptest::collection::vec(window_spec(), 1..7),
    ) {
        let docs = fig3_docs(&windows);
        let hand = fig3_hand_alerts(&docs);
        let ruled = run_rules(dio_rules::shipped::FIG3_CONTENTION, &docs);
        prop_assert_eq!(spine(&ruled), spine(&hand));
    }
}
