//! Parity between the streaming detectors in `dio-diagnose` and the
//! offline algorithms in `dio-correlate`: fed the same event set (with
//! the streaming window sized so nothing is cut off), both must reach
//! the same verdicts — the live engine is an *incremental port*, not a
//! different analysis.

use proptest::prelude::*;

use dio_backend::Index;
use dio_correlate::{detect_contention, detect_data_loss, ContentionConfig};
use dio_diagnose::{
    Alert, AlertKind, ContentionDetector, DataLossDetector, DiagnoseConfig, DiagnosisEngine,
};
use serde_json::{json, Value};

// --------------------------------------------------------- data loss

/// One file generation: bytes written, then the first read's (offset,
/// ret). Writes preceding reads per generation is the regime both
/// algorithms assume (a tailer only reads after the writer produced
/// something), and where their `bytes_at_risk` accounting coincides.
#[derive(Debug, Clone)]
struct GenSpec {
    writes: Vec<u16>,
    read: Option<(u16, i64)>, // first-read offset, ret_val
}

fn gen_spec() -> impl Strategy<Value = GenSpec> {
    let read =
        prop_oneof![Just(None), (0..200u16, prop_oneof![Just(0i64), 1..100i64]).prop_map(Some),];
    (proptest::collection::vec(1..400u16, 0..4), read)
        .prop_map(|(writes, read)| GenSpec { writes, read })
}

fn data_loss_docs(files: &[Vec<GenSpec>]) -> Vec<Value> {
    let mut docs = Vec::new();
    let mut time = 0u64;
    for (f, gens) in files.iter().enumerate() {
        let (dev, ino) = (7340032u64, 100 + f as u64);
        for (g, spec) in gens.iter().enumerate() {
            // Distinct first-access timestamp per generation = the
            // inode-reuse signature the file tag encodes.
            let tag = format!("{dev}|{ino}|{}", (g as u64 + 1) * 1_000);
            let mut offset = 0u64;
            for &w in &spec.writes {
                time += 10;
                docs.push(json!({
                    "session": "parity", "syscall": "write", "class": "write",
                    "pid": 1, "tid": 1, "proc_name": "flb-pipeline",
                    "time": time, "ret_val": w, "offset": offset,
                    "file_tag": tag, "file_path": format!("/log{f}"),
                }));
                offset += w as u64;
            }
            if let Some((roff, ret)) = spec.read {
                time += 10;
                docs.push(json!({
                    "session": "parity", "syscall": "read", "class": "read",
                    "pid": 2, "tid": 2, "proc_name": "fluent-bit",
                    "time": time, "ret_val": ret, "offset": roff,
                    "file_tag": tag, "file_path": format!("/log{f}"),
                }));
            }
        }
    }
    docs
}

fn data_loss_alerts(alerts: &[Alert]) -> Vec<&Alert> {
    alerts.iter().filter(|a| a.kind == AlertKind::DataLoss).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming [`DataLossDetector`] == offline [`detect_data_loss`]:
    /// same incident count, and per incident the same stale offset,
    /// bytes at risk, and reader.
    #[test]
    fn streaming_data_loss_matches_offline(
        files in proptest::collection::vec(
            proptest::collection::vec(gen_spec(), 1..4), 1..3)
    ) {
        let docs = data_loss_docs(&files);

        let index = Index::new("dio-parity");
        index.bulk(docs.clone());
        let offline = detect_data_loss(&index);

        let mut det = DataLossDetector::default();
        let mut alerts = Vec::new();
        for doc in &docs {
            det.observe(doc, &mut alerts);
        }
        let streamed = data_loss_alerts(&alerts);

        prop_assert_eq!(streamed.len(), offline.len(),
            "incident counts diverge: offline {:?} vs streamed {:?}", offline, alerts);
        for (alert, incident) in streamed.iter().zip(&offline) {
            prop_assert_eq!(alert.fields["stale_offset"].as_u64(), Some(incident.stale_offset));
            prop_assert_eq!(alert.fields["bytes_at_risk"].as_u64(), Some(incident.bytes_at_risk));
            prop_assert_eq!(alert.fields["reader"].as_str().unwrap_or(""), incident.reader.as_str());
            prop_assert_eq!(alert.fields["tag"].as_str().map(str::to_string),
                Some(incident.tag.to_string()));
        }
    }
}

// -------------------------------------------------------- contention

/// One Fig. 4 window: client ops plus background compaction threads.
/// `None` = a silent window (exercises the gap-fill path both
/// implementations must apply identically).
fn window_spec() -> impl Strategy<Value = Option<(u8, u8, u8)>> {
    prop_oneof![Just(None), (0..12u8, 0..8u8, 1..5u8).prop_map(Some)]
}

const WINDOW_NS: u64 = 1_000;

fn contention_docs(windows: &[Option<(u8, u8, u8)>]) -> Vec<Value> {
    let mut docs = Vec::new();
    for (w, spec) in windows.iter().enumerate() {
        let base = w as u64 * WINDOW_NS;
        let Some((clients, bg_threads, bg_ops)) = spec else { continue };
        for i in 0..*clients as u64 {
            docs.push(json!({
                "session": "parity", "syscall": "pread64", "class": "read",
                "pid": 1, "tid": 1, "proc_name": "db_bench_c", "time": base + i,
                "ret_val": 4096,
            }));
        }
        for t in 0..*bg_threads {
            for i in 0..*bg_ops as u64 {
                docs.push(json!({
                    "session": "parity", "syscall": "pwrite64", "class": "write",
                    "pid": 1, "tid": 2 + t, "proc_name": format!("rocksdb:low{t}"),
                    "time": base + 100 + i, "ret_val": 4096,
                }));
            }
        }
    }
    docs
}

fn float_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming [`ContentionDetector::report`] == offline
    /// [`detect_contention`]: identical window activity (including
    /// gap-filled silent windows), means, and overall verdict.
    #[test]
    fn streaming_contention_matches_offline(
        windows in proptest::collection::vec(window_spec(), 1..7),
        threshold in 0..7usize,
    ) {
        let docs = contention_docs(&windows);

        let index = Index::new("dio-parity");
        index.bulk(docs.clone());
        let config = ContentionConfig {
            window_ns: WINDOW_NS,
            background_threshold: threshold,
            ..Default::default()
        };
        let offline = detect_contention(&index, &config);

        let mut det = ContentionDetector::new(
            WINDOW_NS,
            config.client_prefix.clone(),
            config.background_prefix.clone(),
            threshold,
        );
        for doc in &docs {
            det.observe(doc);
        }
        let mut alerts = Vec::new();
        det.evaluate_all(&mut alerts);
        let streamed = det.report();

        prop_assert_eq!(&streamed.windows, &offline.windows);
        prop_assert!(float_eq(streamed.client_ops_contended, offline.client_ops_contended),
            "contended means diverge: {} vs {}",
            streamed.client_ops_contended, offline.client_ops_contended);
        prop_assert!(float_eq(streamed.client_ops_calm, offline.client_ops_calm),
            "calm means diverge: {} vs {}",
            streamed.client_ops_calm, offline.client_ops_calm);
        prop_assert_eq!(streamed.contention_detected(), offline.contention_detected());
    }
}

// ------------------------------------------------- engine end-to-end

/// The assembled engine over the exact Fig. 2a fixture reaches the same
/// verdict as the offline pass over the same stored trace.
#[test]
fn engine_agrees_with_offline_on_fig2a_fixture() {
    let mk = |time: u64, syscall: &str, proc: &str, ret: i64, tag: &str, offset: u64| {
        json!({
            "session": "fig2a", "syscall": syscall,
            "class": if syscall == "read" { "read" } else { "write" },
            "pid": 1, "tid": 1, "proc_name": proc, "time": time,
            "ret_val": ret, "offset": offset, "file_tag": tag,
            "file_path": "/app.log",
        })
    };
    let docs = vec![
        mk(100, "write", "flb-pipeline", 26, "7340032|12|100", 0),
        mk(200, "read", "fluent-bit", 26, "7340032|12|100", 0),
        mk(300, "write", "flb-pipeline", 16, "7340032|12|200", 0),
        mk(400, "read", "fluent-bit", 0, "7340032|12|200", 26),
    ];

    let index = Index::new("dio-fig2a");
    index.bulk(docs.clone());
    let offline = detect_data_loss(&index);
    assert_eq!(offline.len(), 1);

    let engine = DiagnosisEngine::new(DiagnoseConfig::default());
    engine.observe_batch(&docs);
    engine.finish();
    let live = engine.alerts();
    let live_loss = data_loss_alerts(&live);
    assert_eq!(live_loss.len(), 1, "engine must flag the Fig. 2a bug: {live:?}");
    assert_eq!(live_loss[0].fields["stale_offset"].as_u64(), Some(offline[0].stale_offset));
    assert_eq!(live_loss[0].fields["bytes_at_risk"].as_u64(), Some(offline[0].bytes_at_risk));
}
