//! Cross-crate integration: the full Fig. 1 pipeline, end to end.

use dio::core::{
    dashboards, Aggregation, Dio, DiskProfile, Kernel, OpenFlags, Query, SearchRequest, SortOrder,
    TracerConfig, Whence,
};
use dio_syscall::{SyscallKind, Tid};

fn fast_dio() -> Dio {
    Dio::with_kernel(Kernel::builder().root_disk(DiskProfile::instant()).build())
}

#[test]
fn trace_store_query_visualize() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("e2e"));

    let app = dio.kernel().spawn_process("writer");
    let t = app.spawn_thread("writer");
    t.mkdir("/var", 0o755).unwrap();
    let fd = t.openat("/var/f.db", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
    for i in 0..10u64 {
        t.pwrite64(fd, &[0xAB; 256], i * 256).unwrap();
    }
    t.fsync(fd).unwrap();
    t.lseek(fd, 0, Whence::Set).unwrap();
    let mut buf = [0u8; 128];
    t.read(fd, &mut buf).unwrap();
    t.close(fd).unwrap();

    let report = session.stop();
    // mkdir + open + 10 pwrite + fsync + lseek + read + close = 16
    assert_eq!(report.trace.events_stored, 16);
    assert_eq!(report.trace.events_dropped, 0);
    assert!(report.correlation.events_updated >= 13, "fd events gained paths");
    assert_eq!(report.correlation.events_unresolved, 0);

    let index = dio.session_index("e2e").unwrap();
    // Query layer.
    assert_eq!(index.count(&Query::term("syscall", "pwrite64")), 10);
    assert_eq!(index.count(&Query::term("file_path", "/var/f.db")), 15);
    assert_eq!(index.count(&Query::term("proc_name", "writer")), 16);
    // Aggregation layer.
    let res = index.search(
        &SearchRequest::match_all().size(0).agg("by_class", Aggregation::terms("class", 10)),
    );
    let classes: Vec<&str> =
        res.aggs["by_class"].buckets().iter().map(|b| b.key.as_str().unwrap()).collect();
    assert!(classes.contains(&"data"));
    assert!(classes.contains(&"metadata"));
    assert!(classes.contains(&"directory management"));
    // Visualization layer.
    let rendered = dashboards::syscall_table(Query::MatchAll).render(&index);
    assert!(rendered.contains("pwrite64"));
    assert!(rendered.contains("/var/f.db"));
    assert!(rendered.contains("16 events"));
}

#[test]
fn offsets_are_pre_syscall_and_sequential() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("offsets").syscalls([SyscallKind::Write]));
    let t = dio.kernel().spawn_process("seq").spawn_thread("seq");
    let fd = t.openat("/s", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644).unwrap();
    for _ in 0..5 {
        t.write(fd, &[1u8; 100]).unwrap();
    }
    session.stop();
    let index = dio.session_index("offsets").unwrap();
    let hits = index
        .search(
            &SearchRequest::new(Query::term("syscall", "write")).sort_by("time", SortOrder::Asc),
        )
        .hits;
    let offsets: Vec<u64> = hits.iter().map(|h| h.source["offset"].as_u64().unwrap()).collect();
    assert_eq!(offsets, vec![0, 100, 200, 300, 400], "offset BEFORE each write applies");
}

#[test]
fn multi_process_sessions_are_attributable() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("attr"));
    let mut tids: Vec<Tid> = Vec::new();
    for name in ["svc-a", "svc-b", "svc-c"] {
        let p = dio.kernel().spawn_process(name);
        let t = p.spawn_thread(name);
        tids.push(t.tid());
        t.creat(&format!("/{name}.out"), 0o644).unwrap();
    }
    session.stop();
    let index = dio.session_index("attr").unwrap();
    for (i, name) in ["svc-a", "svc-b", "svc-c"].iter().enumerate() {
        let q = Query::bool_query()
            .must(Query::term("proc_name", *name))
            .must(Query::term("tid", tids[i].0 as i64))
            .build();
        assert_eq!(index.count(&q), 1, "{name}");
    }
}

#[test]
fn post_mortem_sessions_survive_tracer() {
    let dio = fast_dio();
    for round in 0..3 {
        let session = dio.trace(TracerConfig::new(format!("run-{round}")));
        let t = dio.kernel().spawn_process("app").spawn_thread("app");
        for i in 0..=round {
            t.creat(&format!("/r{round}-f{i}"), 0o644).unwrap();
        }
        session.stop();
    }
    // All three sessions remain queryable afterwards (post-mortem §II).
    assert_eq!(dio.sessions(), vec!["run-0", "run-1", "run-2"]);
    for round in 0..3u64 {
        let index = dio.session_index(&format!("run-{round}")).unwrap();
        assert_eq!(index.count(&Query::MatchAll), round + 1);
    }
}

#[test]
fn errors_carry_linux_errno_encoding() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("errs"));
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let _ = t.openat("/nope", OpenFlags::RDONLY, 0); // ENOENT
    let _ = t.close(99); // EBADF
    t.mkdir("/d", 0o755).unwrap();
    let _ = t.mkdir("/d", 0o755); // EEXIST
    session.stop();
    let index = dio.session_index("errs").unwrap();
    assert_eq!(index.count(&Query::term("ret_val", -2)), 1, "ENOENT");
    assert_eq!(index.count(&Query::term("ret_val", -9)), 1, "EBADF");
    assert_eq!(index.count(&Query::term("ret_val", -17)), 1, "EEXIST");
    assert_eq!(index.count(&Query::range("ret_val").lt(0.0).build()), 3);
}

#[test]
fn near_real_time_visibility_while_running() {
    let dio = fast_dio();
    let session =
        dio.trace(TracerConfig::new("live").flush_interval(std::time::Duration::from_millis(10)));
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    t.creat("/live.txt", 0o644).unwrap();
    // Events become visible without stopping the session.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if session.events_stored() >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "event did not arrive in time");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let rendered = session.render(&dashboards::syscall_table(Query::MatchAll));
    assert!(rendered.contains("creat"));
    session.stop();
}

#[test]
fn session_stops_when_traced_processes_exit() {
    let dio = fast_dio();
    let session = dio.trace(TracerConfig::new("lifecycle"));
    let proc = dio.kernel().spawn_process("short-lived");
    let pid = proc.pid();
    let worker = {
        let kernel = dio.kernel().clone();
        std::thread::spawn(move || {
            let p = kernel.process(pid).unwrap();
            let t = p.spawn_thread("short-lived");
            let fd = t.creat("/done-marker", 0o644).unwrap();
            t.write(fd, b"bye").unwrap();
            // Exit WITHOUT closing: exit() must release the descriptor.
            p.exit();
        })
    };
    let report = session.stop_when_exited(dio.kernel(), &[pid]);
    worker.join().unwrap();
    assert!(dio.kernel().all_exited(&[pid]));
    assert_eq!(report.trace.events_stored, 2, "creat + write traced before exit");
    // exit() closed the fd, so the inode number is reusable.
    let t = dio.kernel().spawn_process("after").spawn_thread("after");
    t.unlink("/done-marker").unwrap();
    let probe = t.creat("/reuse-probe", 0o644).unwrap();
    assert!(probe >= 3);
}
