//! Flight-recorder integration tests (DESIGN.md §12): the causal span
//! chain of a persistent ingest, dump triggers (alert fire, explicit
//! request), reconciliation of recovery counters against recovery span
//! attributes, the golden Chrome-trace snapshot, and the eviction
//! causality property.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use serde_json::json;

use dio_backend::{DocStore, StorageConfig};
use dio_diagnose::{DiagnoseConfig, DiagnosisEngine};
use dio_kernel::{DiskProfile, Kernel};
use dio_telemetry::trace::{self, AttrValue, Attrs, FlightRecorder, TraceSpan};
use dio_tracer::{Tracer, TracerConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dio-flightrec-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

/// The span with `name` whose parent is `parent`, within `trace_id`.
fn child_of<'a>(
    spans: &'a [TraceSpan],
    trace_id: u64,
    parent: u64,
    name: &str,
) -> Option<&'a TraceSpan> {
    spans.iter().find(|s| s.trace_id == trace_id && s.parent_id == parent && s.name == name)
}

// ------------------------------------------------ the causal ingest chain

/// One traced ingest into a persistent store must leave the full
/// causally-nested chain in the flight recorder:
/// session → ship.batch → backend.bulk → storage.append → storage.fsync.
#[test]
fn persistent_ingest_records_causal_chain() {
    let dir = tmp_dir("chain");
    let config = StorageConfig { sync_every_batch: true, ..StorageConfig::tiny_for_tests() };
    let backend = DocStore::open_with(&dir, config).expect("open persistent store");
    let kernel = fast_kernel();
    let tracer = Tracer::attach(TracerConfig::new("flightrec-chain"), &kernel, backend.clone());

    let t = kernel.spawn_process("app").spawn_thread("app");
    let fd = t.creat("/chain.bin", 0o644).unwrap();
    for _ in 0..12 {
        t.write(fd, b"twelve bytes").unwrap();
    }
    t.close(fd).unwrap();
    let summary = tracer.stop();
    assert!(summary.events_stored >= 14, "workload shipped");

    let spans = trace::recorder().snapshot();
    let session = spans
        .iter()
        .find(|s| {
            s.name == "session"
                && s.attrs.get("sid") == Some(AttrValue::U64(trace::fnv64("flightrec-chain")))
        })
        .expect("session root span recorded");
    let ship = child_of(&spans, session.trace_id, session.span_id, "ship.batch")
        .expect("ship.batch parented to the session");
    let bulk = child_of(&spans, session.trace_id, ship.span_id, "backend.bulk")
        .expect("backend.bulk parented to the shipped batch");
    let append = child_of(&spans, session.trace_id, bulk.span_id, "storage.append")
        .expect("storage.append parented to the bulk");
    let fsync = child_of(&spans, session.trace_id, append.span_id, "storage.fsync")
        .expect("storage.fsync parented to the append (sync_every_batch)");

    // The chain nests in time as well as by parent links.
    assert!(session.start_ns <= ship.start_ns && ship.end_ns <= session.end_ns);
    assert!(ship.start_ns <= bulk.start_ns && bulk.end_ns <= ship.end_ns);
    assert!(bulk.start_ns <= append.start_ns && append.end_ns <= bulk.end_ns);
    assert!(append.start_ns <= fsync.start_ns && fsync.end_ns <= append.end_ns);

    // And the exported Chrome trace carries every stage of the chain.
    let chrome = trace::chrome_trace_json(&spans);
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    for name in ["session", "ship.batch", "backend.bulk", "storage.append", "storage.fsync"] {
        assert!(events.iter().any(|e| e["name"] == *name), "chrome export contains {name}");
    }

    drop(backend);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------- dump triggers

fn buggy_batch() -> Vec<serde_json::Value> {
    let ev = |time: u64, proc_name: &str, syscall: &str, ret: i64, tag: &str, offset: u64| {
        json!({
            "time": time, "proc_name": proc_name, "syscall": syscall,
            "ret_val": ret, "file_tag": tag, "offset": offset, "class": "data",
        })
    };
    vec![
        ev(1, "app", "write", 26, "7340032|12|100", 0),
        ev(2, "fluent-bit", "read", 26, "7340032|12|100", 0),
        ev(3, "fluent-bit", "read", 0, "7340032|12|100", 26),
        ev(4, "app", "write", 16, "7340032|12|200", 0),
        ev(5, "fluent-bit", "read", 0, "7340032|12|200", 26),
    ]
}

/// The first alert an engine raises freezes the flight recorder to
/// `flightrec-alert-01.json` — a deterministic name, not the pid, so
/// re-runs overwrite their artifacts instead of littering `results/`.
/// Later alerts do not rewrite it, an explicit dump lands beside it as
/// `flightrec-manual-01.json`, and a dump storm is capped at
/// [`trace::dump_cap`] files per reason.
///
/// Serializes on `DIO_RESULTS_DIR`, which no other test in this binary
/// touches.
#[test]
fn alert_and_manual_dumps_write_chrome_artifacts() {
    let dir = tmp_dir("dumps");
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("DIO_RESULTS_DIR", &dir);

    let engine = DiagnosisEngine::new(DiagnoseConfig::default());
    let fresh = engine.observe_batch(&buggy_batch());
    assert!(!fresh.is_empty(), "batch raises an alert");
    let alert_dump = dir.join("flightrec-alert-01.json");
    assert!(alert_dump.is_file(), "alert fire dumped the recorder");

    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&alert_dump).unwrap())
            .expect("dump is valid JSON");
    assert_eq!(doc["otherData"]["reason"], "alert");
    assert!(doc["traceEvents"].as_array().is_some());
    assert!(doc["otherData"]["criticalPath"].as_str().is_some());

    // A second alerting batch must not dump again (one snapshot per
    // engine): overwrite the file with a marker and re-fire.
    std::fs::write(&alert_dump, "marker").unwrap();
    engine.observe_batch(&buggy_batch());
    assert_eq!(std::fs::read_to_string(&alert_dump).unwrap(), "marker");

    let manual = trace::dump_on_trigger("manual").expect("manual dump path");
    assert_eq!(manual, dir.join("flightrec-manual-01.json"));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manual).unwrap()).unwrap();
    assert_eq!(doc["otherData"]["reason"], "manual");

    // A dump storm stays capped: past the cap, the last slot is reused.
    let cap = trace::dump_cap();
    let mut last = None;
    for _ in 0..cap + 3 {
        last = trace::dump_on_trigger("storm");
    }
    assert_eq!(last.unwrap(), dir.join(format!("flightrec-storm-{cap:02}.json")));
    let storms = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().file_name().to_string_lossy().starts_with("flightrec-storm-")
        })
        .count() as u64;
    assert_eq!(storms, cap, "storm artifacts capped at dump_cap() files");

    std::env::remove_var("DIO_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------- recovery spans reconcile counters

/// Reopening a torn store must describe the same repairs twice — as
/// `backend.recovery.*` counters and as attributes on the recovery
/// spans — and the two must agree exactly.
#[test]
fn recovery_spans_reconcile_with_recovery_counters() {
    let dir = tmp_dir("reconcile");
    let docs: Vec<serde_json::Value> =
        (0..40).map(|n| json!({"n": n, "syscall": "write"})).collect();
    {
        let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
        store.bulk("dio-r", docs);
        store.flush().unwrap();
    }
    // Tear the tail of every shard's active segment.
    let mut torn_shards = 0u64;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let shard_dir = entry.unwrap().path();
        if !shard_dir.is_dir() {
            continue;
        }
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        segs.sort();
        if let Some(active) = segs.pop() {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&active).unwrap();
            f.write_all(&[0xAB; 29]).unwrap();
            torn_shards += 1;
        }
    }
    assert!(torn_shards > 0, "workload produced active segments");

    let store = DocStore::open_with(&dir, StorageConfig::tiny_for_tests()).unwrap();
    let report = store.storage_report().expect("persistent store");
    assert_eq!(report.recovery_truncated, torn_shards);

    // Find THIS store's most recent storage.open span by its path hash,
    // then sum the torn-tail attrs over its recovery.shard children.
    let spans = trace::recorder().snapshot();
    let store_hash = trace::fnv64(&dir.to_string_lossy());
    let open = spans
        .iter()
        .filter(|s| {
            s.name == "storage.open" && s.attrs.get("store") == Some(AttrValue::U64(store_hash))
        })
        .max_by_key(|s| s.start_ns)
        .expect("reopen recorded a storage.open span");
    assert_eq!(open.attrs.get("torn_truncated"), Some(AttrValue::U64(torn_shards)));
    let shard_spans: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| s.name == "recovery.shard" && s.parent_id == open.span_id)
        .collect();
    assert_eq!(shard_spans.len(), report.shards, "one recovery span per shard");
    let span_truncations: u64 = shard_spans
        .iter()
        .map(|s| match s.attrs.get("torn_truncated") {
            Some(AttrValue::U64(n)) => n,
            other => panic!("recovery.shard carries torn_truncated, got {other:?}"),
        })
        .sum();
    assert_eq!(
        span_truncations, report.recovery_truncated,
        "span attrs and backend.recovery.truncated describe the same repairs"
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------- golden Chrome snapshot

/// A seeded recorder with pinned span times must export byte-identical
/// Chrome JSON. Regenerate after an intentional format change with:
///
/// ```text
/// DIO_UPDATE_GOLDEN=1 cargo test --test flightrec golden
/// ```
#[test]
fn chrome_export_matches_golden_snapshot() {
    let rec = FlightRecorder::new(16, 42);
    let trace_id = rec.alloc_id();
    let root_id = rec.alloc_id();
    let child_id = rec.alloc_id();
    let mut root_attrs = Attrs::default();
    root_attrs.push("docs", AttrValue::U64(128));
    root_attrs.push("note", AttrValue::Str("golden \"quoted\"\n"));
    root_attrs.push("factor", AttrValue::F64(1.5));
    let span =
        |span_id: u64, parent_id: u64, name: &'static str, start: u64, end: u64, attrs: Attrs| {
            rec.record(TraceSpan {
                trace_id,
                span_id,
                parent_id,
                category: "storage",
                name,
                start_ns: start,
                end_ns: end,
                thread: 0,
                emit_seq: 0,
                attrs,
            });
        };
    span(child_id, root_id, "storage.fsync", 2_500, 7_750, Attrs::default());
    span(root_id, 0, "storage.append", 1_000, 9_000, root_attrs);

    let rendered = rec.export_chrome_json();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/flightrec_chrome.json");
    if std::env::var_os("DIO_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden snapshot present");
    assert_eq!(rendered, golden, "chrome export drifted from tests/golden/flightrec_chrome.json");
}

// ------------------------------------------------ eviction causality

proptest! {
    /// Ring eviction is oldest-first per thread, so a surviving span
    /// whose parent was emitted *after* it (the guard pattern: children
    /// record before their parents) implies the parent also survives —
    /// the recorder never strands a child by evicting its later-emitted
    /// parent.
    #[test]
    fn eviction_never_strands_a_child_of_a_later_parent(
        capacity in 1usize..12,
        links in proptest::collection::vec((any::<bool>(), 0usize..64), 1..64),
    ) {
        let rec = FlightRecorder::new(capacity, 7);
        let n = links.len();
        // Span i may pick a parent among spans emitted after it
        // (j > i), mirroring how guards finish children before parents.
        let parent_of: Vec<Option<usize>> = links
            .iter()
            .enumerate()
            .map(|(i, &(has_parent, r))| {
                let later = n - i - 1;
                (has_parent && later > 0).then(|| i + 1 + r % later)
            })
            .collect();
        for (i, parent) in parent_of.iter().enumerate() {
            rec.record(TraceSpan {
                trace_id: 1,
                span_id: i as u64 + 1,
                parent_id: parent.map(|p| p as u64 + 1).unwrap_or(0),
                category: "t",
                name: "t",
                start_ns: i as u64,
                end_ns: i as u64 + 1,
                thread: 0,
                emit_seq: 0,
                attrs: Attrs::default(),
            });
        }
        let survivors: std::collections::HashSet<u64> =
            rec.snapshot().iter().map(|s| s.span_id).collect();
        prop_assert!(survivors.len() <= capacity);
        prop_assert!(!survivors.is_empty());
        for (i, parent) in parent_of.iter().enumerate() {
            let (child_id, Some(p)) = (i as u64 + 1, parent) else { continue };
            // Parent emitted after the child: child surviving implies
            // the parent does too.
            if survivors.contains(&child_id) {
                prop_assert!(
                    survivors.contains(&(*p as u64 + 1)),
                    "span {child_id} survived but its later-emitted parent {} was evicted",
                    p + 1
                );
            }
        }
    }
}
