//! Property-based tests over the core invariants DESIGN.md §6 calls out.

use proptest::prelude::*;

use dio::core::{DiskProfile, Kernel, OpenFlags, Query, SimClock, Whence};
use dio_backend::{Index, SearchRequest};
use dio_dbbench::LatencyHistogram;
use dio_ebpf::RingBuffer;
use dio_kernel::Vfs;
use dio_syscall::{FileTag, SyscallKind, SyscallSet};
use dio_telemetry::{MetricsRegistry, SpanCollector, Stage, StageStamps};

// ------------------------------------------------------------------ VFS

/// Model-based test: a simulated-VFS file behaves like an in-memory byte
/// vector under arbitrary write/read/truncate/seek sequences.
#[derive(Debug, Clone)]
enum FileOp {
    Write(Vec<u8>),
    PWrite(Vec<u8>, u16),
    Read(u8),
    Seek(u16),
    Truncate(u16),
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(FileOp::Write),
        (proptest::collection::vec(any::<u8>(), 0..64), any::<u16>())
            .prop_map(|(d, o)| FileOp::PWrite(d, o % 512)),
        any::<u8>().prop_map(FileOp::Read),
        any::<u16>().prop_map(|o| FileOp::Seek(o % 600)),
        any::<u16>().prop_map(|o| FileOp::Truncate(o % 600)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vfs_file_matches_vec_model(ops in proptest::collection::vec(file_op(), 1..40)) {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = kernel.spawn_process("model").spawn_thread("model");
        let fd = t.openat("/m", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut cursor: usize = 0;

        for op in ops {
            match op {
                FileOp::Write(data) => {
                    let n = t.write(fd, &data).unwrap();
                    prop_assert_eq!(n, data.len());
                    let end = cursor + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[cursor..end].copy_from_slice(&data);
                    cursor = end;
                }
                FileOp::PWrite(data, off) => {
                    t.pwrite64(fd, &data, off as u64).unwrap();
                    let end = off as usize + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[off as usize..end].copy_from_slice(&data);
                }
                FileOp::Read(len) => {
                    let mut buf = vec![0u8; len as usize];
                    let n = t.read(fd, &mut buf).unwrap();
                    // The cursor may sit past EOF (seek/truncate): reads
                    // there return 0 bytes, like POSIX.
                    let start = cursor.min(model.len());
                    let expect_n = (model.len() - start).min(len as usize);
                    prop_assert_eq!(n, expect_n);
                    prop_assert_eq!(&buf[..n], &model[start..start + n]);
                    cursor += n;
                }
                FileOp::Seek(off) => {
                    let pos = t.lseek(fd, off as i64, Whence::Set).unwrap();
                    prop_assert_eq!(pos, off as u64);
                    cursor = off as usize;
                }
                FileOp::Truncate(len) => {
                    t.ftruncate(fd, len as u64).unwrap();
                    model.resize(len as usize, 0);
                }
            }
            prop_assert_eq!(t.fstat(fd).unwrap().size, model.len() as u64);
        }
    }

    /// Inode numbers are reused lowest-first and never collide while live.
    #[test]
    fn inode_reuse_is_lowest_first(removals in proptest::collection::vec(0usize..8, 1..8)) {
        let vfs = Vfs::new(1, DiskProfile::instant(), SimClock::new());
        let mut live: Vec<(String, u64)> = (0..8)
            .map(|i| {
                let path = format!("/f{i}");
                let ino = vfs.create_file(&path, false).unwrap().ino();
                (path, ino)
            })
            .collect();
        for r in removals {
            if live.is_empty() {
                break;
            }
            let (path, _) = live.remove(r % live.len());
            vfs.unlink(&path).unwrap();
        }
        // Allocate a new file: it must take the smallest free number.
        let live_inos: std::collections::HashSet<u64> = live.iter().map(|(_, i)| *i).collect();
        let fresh = vfs.create_file("/fresh", false).unwrap().ino();
        prop_assert!(!live_inos.contains(&fresh), "no collision with live inodes");
        for candidate in 2..fresh {
            prop_assert!(
                live_inos.contains(&candidate),
                "smaller number {candidate} was free but not used (got {fresh})"
            );
        }
    }

    /// File tags distinguish generations: same path recreated n times
    /// yields n distinct tags even when inode numbers repeat.
    #[test]
    fn file_tags_unique_per_generation(n in 2usize..6) {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let t = kernel.spawn_process("gen").spawn_thread("gen");
        let mut tags: Vec<FileTag> = Vec::new();
        for _ in 0..n {
            let fd = t.openat("/g", OpenFlags::CREAT | OpenFlags::WRONLY, 0o644).unwrap();
            let inode = t.fstat(fd).unwrap();
            let vfs = kernel.root_vfs();
            let ino = vfs.lookup("/g", true).unwrap();
            tags.push(FileTag::new(inode.dev, inode.ino, ino.first_access_ns()));
            t.close(fd).unwrap();
            t.unlink("/g").unwrap();
        }
        let distinct: std::collections::HashSet<&FileTag> = tags.iter().collect();
        prop_assert_eq!(distinct.len(), n, "{:?}", tags);
    }
}

// ----------------------------------------------------------- ring buffer

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: pushed + dropped == produced, consumed <= pushed, and
    /// the consumer sees a per-CPU-FIFO prefix of what fit.
    #[test]
    fn ring_buffer_conserves_events(
        slots in 1usize..32,
        cpus in 1u32..4,
        items in proptest::collection::vec((0u32..4, any::<u32>()), 0..200),
    ) {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(cpus, slots);
        let mut accepted_per_cpu: Vec<Vec<u32>> = vec![Vec::new(); cpus as usize];
        for (cpu, value) in &items {
            if ring.try_push(*cpu, *value) {
                accepted_per_cpu[(*cpu as usize) % cpus as usize].push(*value);
            }
        }
        let stats = ring.stats();
        prop_assert_eq!(stats.pushed + stats.dropped, items.len() as u64);
        for cpu in 0..cpus {
            let drained = ring.drain(cpu, usize::MAX);
            prop_assert_eq!(&drained, &accepted_per_cpu[cpu as usize], "cpu {} FIFO", cpu);
        }
        prop_assert_eq!(ring.stats().consumed, stats.pushed);
        prop_assert!(ring.is_empty());
    }
}

// ----------------------------------------------------------- histograms

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram percentiles are monotone, bounded by min/max, and within
    /// the documented ~3% relative resolution.
    #[test]
    fn histogram_percentiles_bounded(values in proptest::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut prev = 0u64;
        for p in [1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let got = h.percentile(p);
            prop_assert!(got >= *sorted.first().unwrap() && got <= *sorted.last().unwrap());
            prop_assert!(got >= prev, "percentiles are monotone");
            prev = got;
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = sorted[rank.min(sorted.len() - 1)] as f64;
            prop_assert!(
                (got as f64 - exact).abs() <= exact * 0.07 + 1.0,
                "p{}: got {}, exact {}", p, got, exact
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.min(), *sorted.first().unwrap());
    }
}

// -------------------------------------------------------------- backend

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index-accelerated search returns exactly the same documents as a
    /// full scan with `Query::matches`.
    #[test]
    fn index_search_equals_scan(
        docs in proptest::collection::vec((0i64..20, 0i64..5, any::<bool>()), 1..80),
        term in 0i64..20,
        lo in 0i64..5,
    ) {
        let index = Index::new("prop");
        let values: Vec<serde_json::Value> = docs
            .iter()
            .map(|(a, b, c)| serde_json::json!({"a": a, "b": b, "flag": c}))
            .collect();
        index.bulk(values.clone());
        let queries = vec![
            Query::term("a", term),
            Query::range("b").gte(lo as f64).build(),
            Query::bool_query()
                .must(Query::term("a", term))
                .must_not(Query::term("flag", true))
                .build(),
            Query::bool_query()
                .should(Query::term("a", term))
                .should(Query::range("b").gt(lo as f64).build())
                .build(),
        ];
        for q in queries {
            let via_index = index.search(&SearchRequest::new(q.clone()).size(usize::MAX)).total;
            let via_scan = values.iter().filter(|d| q.matches(d)).count() as u64;
            prop_assert_eq!(via_index, via_scan, "query {:?}", q);
        }
    }

    /// SyscallSet behaves like a HashSet over the 42 kinds.
    #[test]
    fn syscall_set_matches_hashset(indices in proptest::collection::vec(0usize..42, 0..80)) {
        let mut set = SyscallSet::new();
        let mut model = std::collections::HashSet::new();
        for (i, idx) in indices.iter().enumerate() {
            let kind = SyscallKind::ALL[*idx];
            if i % 3 == 2 {
                prop_assert_eq!(set.remove(kind), model.remove(&kind));
            } else {
                prop_assert_eq!(set.insert(kind), model.insert(kind));
            }
            prop_assert_eq!(set.len(), model.len());
        }
        for &kind in SyscallKind::ALL {
            prop_assert_eq!(set.contains(kind), model.contains(&kind));
        }
    }
}

// ------------------------------------------------------------- LSM store

/// Model-based test of the LSM engine: arbitrary put/delete/get/scan/flush
/// sequences behave like a BTreeMap, including across a crash-free reopen.
#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, u8),
    Delete(u8),
    Get(u8),
    Scan(u8, u8),
    Flush,
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| KvOp::Put(k % 64, v)),
        2 => any::<u8>().prop_map(|k| KvOp::Delete(k % 64)),
        3 => any::<u8>().prop_map(|k| KvOp::Get(k % 64)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(f, n)| KvOp::Scan(f % 64, n % 16 + 1)),
        1 => Just(KvOp::Flush),
    ]
}

fn kv_key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lsm_store_matches_btreemap_model(ops in proptest::collection::vec(kv_op(), 1..60)) {
        let kernel = Kernel::builder().root_disk(DiskProfile::instant()).build();
        let process = kernel.spawn_process("kv");
        let client = process.spawn_thread("client");
        let opts = dio_lsmkv::LsmOptions {
            memtable_bytes: 256, // rotate aggressively to exercise flush/compaction
            l0_compaction_trigger: 2,
            compaction_threads: 2,
            ..dio_lsmkv::LsmOptions::new("/db")
        };
        let db = dio_lsmkv::Db::open(&process, opts.clone()).unwrap();
        let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = std::collections::BTreeMap::new();

        for op in &ops {
            match op {
                KvOp::Put(k, v) => {
                    db.put(&client, &kv_key(*k), &[*v; 8]).unwrap();
                    model.insert(kv_key(*k), vec![*v; 8]);
                }
                KvOp::Delete(k) => {
                    db.delete(&client, &kv_key(*k)).unwrap();
                    model.remove(&kv_key(*k));
                }
                KvOp::Get(k) => {
                    prop_assert_eq!(
                        db.get(&client, &kv_key(*k)).unwrap(),
                        model.get(&kv_key(*k)).cloned(),
                        "get {:?}", kv_key(*k)
                    );
                }
                KvOp::Scan(from, n) => {
                    let got = db.scan(&client, &kv_key(*from), *n as usize).unwrap();
                    let expect: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(kv_key(*from)..)
                        .take(*n as usize)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, expect, "scan from {:?}", kv_key(*from));
                }
                KvOp::Flush => db.flush_now(&client).unwrap(),
            }
        }

        // Clean shutdown + reopen must preserve every key (durability).
        db.shutdown(&client).unwrap();
        drop(db);
        let db = dio_lsmkv::Db::open(&process, opts).unwrap();
        for (k, v) in &model {
            let got = db.get(&client, k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v), "after reopen: {:?}", k);
        }
        // And deleted keys stay deleted.
        for k in 0..64u8 {
            if !model.contains_key(&kv_key(k)) {
                prop_assert_eq!(db.get(&client, &kv_key(k)).unwrap(), None);
            }
        }
        db.shutdown(&client).unwrap();
    }
}

// ------------------------------------------- ring drop accounting

/// One step of an arbitrary producer/consumer interleaving.
#[derive(Debug, Clone)]
enum RingOp {
    Push(u32, u32),
    Drain(u32, usize),
    DrainAll(usize),
}

fn ring_op() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        4 => (0u32..4, any::<u32>()).prop_map(|(c, v)| RingOp::Push(c, v)),
        1 => (0u32..4, 1usize..8).prop_map(|(c, n)| RingOp::Drain(c, n)),
        1 => (1usize..16).prop_map(RingOp::DrainAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exact drop accounting under arbitrary push/drain interleavings:
    /// after every step `pushed + dropped == attempts` and
    /// `consumed <= pushed`; per-CPU counters always sum to the totals and
    /// no buffer's occupancy high-water mark exceeds its capacity.
    #[test]
    fn ring_buffer_exact_drop_accounting(
        slots in 1usize..16,
        cpus in 1u32..4,
        ops in proptest::collection::vec(ring_op(), 0..250),
    ) {
        let ring: RingBuffer<u32> = RingBuffer::with_slots(cpus, slots);
        let mut attempts = 0u64;
        for op in &ops {
            match *op {
                RingOp::Push(cpu, value) => {
                    let _ = ring.try_push(cpu, value);
                    attempts += 1;
                }
                RingOp::Drain(cpu, max) => {
                    ring.drain(cpu % cpus, max);
                }
                RingOp::DrainAll(max) => {
                    ring.drain_all(max);
                }
            }
            let s = ring.stats();
            prop_assert_eq!(s.pushed + s.dropped, attempts);
            prop_assert!(s.consumed <= s.pushed);
        }

        // Drain to empty: everything pushed is eventually consumed.
        ring.drain_all(usize::MAX);
        let s = ring.stats();
        prop_assert_eq!(s.pushed + s.dropped, attempts);
        prop_assert_eq!(s.consumed, s.pushed);
        prop_assert!(ring.is_empty());
        prop_assert_eq!(s.per_cpu.iter().map(|c| c.pushed).sum::<u64>(), s.pushed);
        prop_assert_eq!(s.per_cpu.iter().map(|c| c.dropped).sum::<u64>(), s.dropped);
        prop_assert_eq!(s.per_cpu.iter().map(|c| c.consumed).sum::<u64>(), s.consumed);
        prop_assert!(s.occupancy_hwm as usize <= slots);
        for c in &s.per_cpu {
            prop_assert!(c.occupancy_hwm as usize <= slots, "cpu {} HWM", c.cpu);
        }
    }
}

// ------------------------------------------------------------ event spans

/// Stamp values are bounded so a wrapped subtraction (a "negative"
/// latency) would be detected as a huge outlier by the assertions below.
const STAMP_BOUND: u64 = 1_000_000;

/// A stamp record with an arbitrary subset of stages stamped, in
/// arbitrary (possibly inverted) order.
fn arbitrary_stamps() -> impl Strategy<Value = StageStamps> {
    let maybe_stamp = prop_oneof![Just(None), (1u64..STAMP_BOUND).prop_map(Some),];
    proptest::collection::vec(maybe_stamp, Stage::COUNT).prop_map(|values| {
        let mut stamps = StageStamps::new();
        for (stage, v) in Stage::ALL.into_iter().zip(values) {
            if let Some(ns) = v {
                stamps.stamp(stage, ns);
            }
        }
        stamps
    })
}

/// A complete record whose stamps respect pipeline order.
fn ordered_stamps() -> impl Strategy<Value = StageStamps> {
    proptest::collection::vec(1u64..STAMP_BOUND, Stage::COUNT).prop_map(|mut values| {
        values.sort_unstable();
        let mut stamps = StageStamps::new();
        for (stage, ns) in Stage::ALL.into_iter().zip(values) {
            stamps.stamp(stage, ns);
        }
        stamps
    })
}

/// A partial record: a prefix of the pipeline stamped in order, at least
/// one stage missing — what a mid-flight discard leaves behind.
fn partial_stamps() -> impl Strategy<Value = StageStamps> {
    (0..Stage::COUNT, proptest::collection::vec(1u64..STAMP_BOUND, Stage::COUNT)).prop_map(
        |(len, mut values)| {
            values.sort_unstable();
            let mut stamps = StageStamps::new();
            for (stage, ns) in Stage::ALL.into_iter().zip(values).take(len) {
                stamps.stamp(stage, ns);
            }
            stamps
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Derived latencies never go negative (i.e. never wrap) under
    /// arbitrary stamp interleavings, and exist exactly when both
    /// endpoints are stamped.
    #[test]
    fn span_latencies_non_negative_under_arbitrary_interleavings(stamps in arbitrary_stamps()) {
        for (i, from) in Stage::ALL.into_iter().enumerate() {
            for to in Stage::ALL.into_iter().skip(i + 1) {
                match stamps.latency_between(from, to) {
                    Some(ns) => {
                        prop_assert!(stamps.get(from).is_some() && stamps.get(to).is_some());
                        // Bounded stamps -> bounded latency; a wrapped
                        // subtraction would land near u64::MAX.
                        prop_assert!(ns < STAMP_BOUND, "{} -> {}: {ns}", from.name(), to.name());
                    }
                    None => prop_assert!(
                        stamps.get(from).is_none() || stamps.get(to).is_none()
                    ),
                }
            }
        }

        // The collector ingests the same record without panicking, and
        // every histogram it derives stays within the stamp bound.
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        if stamps.is_complete() {
            spans.record_shipped(&stamps);
        } else {
            spans.record_drop(&stamps);
        }
        let summary = spans.summary();
        for h in summary.stages.values().chain([&summary.e2e]) {
            prop_assert!(h.max < STAMP_BOUND, "wrapped latency leaked: {}", h.max);
        }
    }

    /// For in-order stamps the per-stage transitions decompose the
    /// end-to-end latency exactly: adjacent latencies sum to e2e.
    #[test]
    fn span_stage_latencies_decompose_e2e(stamps in ordered_stamps()) {
        let adjacent: u64 = Stage::ALL
            .windows(2)
            .map(|w| stamps.latency_between(w[0], w[1]).expect("complete record"))
            .sum();
        prop_assert_eq!(stamps.e2e_ns().expect("complete record"), adjacent);
    }

    /// Drop-attributed partial spans never count toward the end-to-end
    /// histogram, whatever the interleaving of completions and drops; the
    /// per-outcome counters and drop attribution reconcile exactly.
    #[test]
    fn dropped_partial_spans_never_count_toward_e2e(
        ops in proptest::collection::vec(
            prop_oneof![
                ordered_stamps().prop_map(|s| (true, s)),
                partial_stamps().prop_map(|s| (false, s)),
            ],
            0..60,
        ),
    ) {
        let registry = MetricsRegistry::new();
        let spans = SpanCollector::new(&registry, 0);
        let mut shipped = 0u64;
        let mut droppedu = 0u64;
        for (complete, stamps) in &ops {
            if *complete {
                spans.record_shipped(stamps);
                shipped += 1;
            } else {
                spans.record_drop(stamps);
                droppedu += 1;
            }
        }

        let summary = spans.summary();
        prop_assert_eq!(summary.completed, shipped);
        prop_assert_eq!(summary.e2e.count, shipped, "only complete spans reach e2e");
        prop_assert_eq!(summary.dropped, droppedu);
        prop_assert_eq!(summary.drops_by_stage.values().sum::<u64>(), droppedu);
        // A prefix record is attributed to the first stage it never
        // reached, so ring-stage attribution can only come from records
        // that stopped before the ring.
        for (stage, n) in &summary.drops_by_stage {
            prop_assert!(*n > 0, "empty attribution bucket {stage} published");
        }
    }
}
