//! End-to-end coverage of the live introspection server: OpenMetrics
//! exposition (golden snapshot + self-lint against a live scrape),
//! metric→trace exemplars resolving into the flight-recorder dump, SSE
//! alert streaming during a Fig. 2-style run, and scrape-under-ingest
//! isolation (the served pipeline must not drop a single event because
//! someone is watching it).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dio::core::{lint_openmetrics, DiagnoseConfig, Dio, DiskProfile, Kernel, TracerConfig};
use dio_fluentbit::{run_issue_1875, FluentBitVersion};
use dio_telemetry::{openmetrics, MetricsRegistry};

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

/// Plain blocking GET against the server; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to dio-serve");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

// --------------------------------------------- golden OpenMetrics render

/// A deterministically seeded registry must render byte-identical
/// OpenMetrics text. Regenerate after an intentional format change with:
///
/// ```text
/// DIO_UPDATE_GOLDEN=1 cargo test --test serve golden
/// ```
#[test]
fn openmetrics_render_matches_golden_snapshot() {
    let registry = MetricsRegistry::new();
    registry.counter("tracer.events.stored").add(1234);
    registry.counter("consumer.batches").add(9);
    registry.counter("serve.sse.missed_batches").add(2);
    registry.gauge("ring.occupancy").set(17);
    let h = registry.histogram("tracer.shipper.batch_ns");
    h.enable_exemplars();
    h.record_with_exemplar(1_500, 0xdead_beef);
    h.record_with_exemplar(3_000_000, 0x0abc);
    h.record(10);
    // An empty histogram still closes its family with +Inf/_sum/_count.
    registry.histogram("backend.storage.fsync_ns");

    let rendered = openmetrics::render(&registry);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/openmetrics.txt");
    if std::env::var_os("DIO_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden snapshot present");
    assert_eq!(rendered, golden, "exposition drifted from tests/golden/openmetrics.txt");
    assert_eq!(lint_openmetrics(&rendered), Vec::<String>::new(), "golden must lint clean");
    // SSE backpressure accounting is part of the stable exposition: a
    // slow alert-stream client shows up here, never as silent loss.
    assert!(
        rendered.contains("serve_sse_missed_batches_total 2"),
        "SSE missed-batch counter must render: {rendered}"
    );
}

// ------------------------------------ live endpoints, lint and exemplars

/// Boots a diagnosed session with the server attached, replays the
/// Fig. 2 workload, and checks every endpoint: the scrape lints clean,
/// the JSON views carry the workload, the flight recorder downloads as
/// Chrome JSON, and at least one histogram bucket's `trace_id` exemplar
/// resolves to a span in that same dump.
#[test]
fn live_scrape_lints_clean_and_exemplars_resolve_into_flightrec() {
    let dio = Dio::with_kernel(fast_kernel());
    let mut session = dio.trace(TracerConfig::new("serve-e2e").diagnose(DiagnoseConfig::default()));
    let addr = session.serve("127.0.0.1:0").expect("bind ephemeral");
    assert_eq!(session.serve_addr(), Some(addr));

    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 20_000_000)
        .expect("scenario replays");
    // Let the consumer/shipper drain and the shipper record batch_ns (the
    // exemplar source) before scraping.
    for _ in 0..1_000 {
        if session.events_stored() >= 10 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(lint_openmetrics(&metrics), Vec::<String>::new(), "live scrape must lint clean");
    assert!(metrics.contains("ebpf_ring_consumed_total"), "{metrics}");
    assert!(metrics.contains("tracer_shipper_batch_ns_bucket"), "{metrics}");

    // At least one batch_ns bucket carries a trace_id exemplar...
    let exemplar_id = metrics
        .lines()
        .filter(|l| l.starts_with("tracer_shipper_batch_ns_bucket"))
        .find_map(|l| {
            let (_, rest) = l.split_once("trace_id=\"")?;
            rest.split_once('"').map(|(id, _)| id.to_string())
        })
        .expect("batch_ns must expose a trace_id exemplar");

    // ...and that id resolves to a span in the /flightrec download.
    let (status, flightrec) = http_get(addr, "/flightrec");
    assert_eq!(status, 200);
    let dump: serde_json::Value = serde_json::from_str(&flightrec).expect("valid Chrome JSON");
    assert!(dump.get("traceEvents").is_some(), "Chrome Trace Event envelope");
    assert!(
        flightrec.contains(&format!("0x{exemplar_id}")),
        "exemplar trace_id {exemplar_id} must resolve to a span in the flight recorder"
    );

    let (status, top) = http_get(addr, "/api/top?rows=5&window_ns=60000000000");
    assert_eq!(status, 200);
    let top: serde_json::Value = serde_json::from_str(&top).expect("valid JSON");
    assert!(top["total_ops"].as_u64().unwrap_or(0) > 0, "{top}");
    assert!(top["processes"].as_array().is_some_and(|p| !p.is_empty()), "{top}");

    let (status, health) = http_get(addr, "/api/health");
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(&health).expect("valid JSON");
    assert_eq!(health["session"].as_str(), Some("serve-e2e"));

    let (status, screen) = http_get(addr, "/top");
    assert_eq!(status, 200);
    assert!(screen.contains("dio top"), "{screen}");

    let (status, dashboard) = http_get(addr, "/dashboard");
    assert_eq!(status, 200);
    assert!(dashboard.contains("pipeline-health"), "{dashboard}");

    assert_eq!(http_get(addr, "/healthz").0, 200);
    assert_eq!(http_get(addr, "/readyz").0, 200);
    assert_eq!(http_get(addr, "/api/storage").0, 404, "in-memory session");
    assert_eq!(http_get(addr, "/nope").0, 404);

    session.stop();
}

// -------------------------------------------------- SSE alert streaming

/// An SSE client connected before the workload sees the Fig. 2a
/// data-loss alert live, as an `event: alert` frame, while the trace is
/// still running.
#[test]
fn sse_client_receives_live_data_loss_alert() {
    let dio = Dio::with_kernel(fast_kernel());
    let mut session = dio.trace(TracerConfig::new("serve-sse").diagnose(DiagnoseConfig::default()));
    let addr = session.serve("127.0.0.1:0").expect("bind ephemeral");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET /api/alerts/stream HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut buf = [0u8; 4096];
    let n = stream.read(&mut buf).expect("sse head");
    let mut collected = String::from_utf8_lossy(&buf[..n]).to_string();
    assert!(collected.contains("text/event-stream"), "{collected}");

    // The buggy tail plugin loses data; the engine raises the alert live
    // and the sink ships it to the telemetry index the stream watches.
    run_issue_1875(dio.kernel(), FluentBitVersion::V1_4_0, "/app.log", 20_000_000)
        .expect("scenario replays");

    while !collected.contains("event: alert") {
        let n = stream.read(&mut buf).expect("alert frame before timeout");
        assert!(n > 0, "stream closed before an alert arrived");
        collected.push_str(&String::from_utf8_lossy(&buf[..n]));
    }
    let data_line = collected
        .lines()
        .find(|l| l.starts_with("data: "))
        .expect("alert frame carries a data line");
    let alert: serde_json::Value =
        serde_json::from_str(data_line.trim_start_matches("data: ")).expect("alert is JSON");
    assert_eq!(alert["kind"].as_str(), Some("alert"));

    drop(stream);
    session.stop();
}

// ------------------------------------------- scrape-under-ingest safety

/// Sustained scraping (several concurrent pollers hammering /metrics and
/// /api/top) while the traced application writes thousands of events:
/// the pipeline must finish with zero drops, and SSE backpressure stays
/// accounted (missed batches are counted, never silently lost).
#[test]
fn concurrent_scrapes_never_stall_the_pipeline() {
    let dio = Dio::with_kernel(fast_kernel());
    let mut session = dio.trace(TracerConfig::new("serve-load"));
    let addr = session.serve("127.0.0.1:0").expect("bind ephemeral");

    let stop_scraping = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrapers: Vec<_> = (0..3)
        .map(|i| {
            let stop = std::sync::Arc::clone(&stop_scraping);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let path = if i % 2 == 0 { "/metrics" } else { "/api/top" };
                    let (status, _) = http_get(addr, path);
                    assert!(status == 200 || status == 503, "unexpected status {status}");
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let t = dio.kernel().spawn_process("writer").spawn_thread("writer");
    let fd = t.creat("/load.bin", 0o644).unwrap();
    for i in 0..5_000u64 {
        t.pwrite64(fd, b"payload", i * 7).unwrap();
    }
    t.close(fd).unwrap();

    stop_scraping.store(true, std::sync::atomic::Ordering::Release);
    let total_scrapes: u64 = scrapers.into_iter().map(|s| s.join().expect("scraper ok")).sum();
    assert!(total_scrapes > 0, "scrapers must have run");

    let report = session.stop();
    assert_eq!(report.trace.events_dropped, 0, "scraping must never cost events");
    assert_eq!(report.trace.events_stored, 5_002);
}

// ----------------------------------------------- env-var bootstrapping

/// `DIO_SERVE_ADDR` starts the server without any code change; the
/// session reports where it bound.
#[test]
fn serve_addr_env_bootstraps_server() {
    std::env::set_var("DIO_SERVE_ADDR", "127.0.0.1:0");
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(TracerConfig::new("serve-env"));
    std::env::remove_var("DIO_SERVE_ADDR");

    let addr = session.serve_addr().expect("env var must start the server");
    assert_eq!(http_get(addr, "/healthz").0, 200);
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(lint_openmetrics(&metrics), Vec::<String>::new());
    session.stop();
}
