//! End-to-end event spans: per-stage stamps must reconcile *exactly*
//! with the pipeline's event accounting — every stored event is one
//! completed span, every dropped event is one drop-attributed partial
//! span, and the lag watermark returns to zero once the session has
//! shipped everything it will ever ship.

use std::time::Duration;

use dio::core::{
    Dio, DiskProfile, Kernel, Query, RingConfig, SearchRequest, SpanSummary, TracerConfig,
};

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

fn transition_counts(spans: &SpanSummary) -> Vec<(&'static str, u64)> {
    SpanSummary::transition_names()
        .into_iter()
        .map(|name| (name, spans.stage(name).map(|h| h.count).unwrap_or(0)))
        .collect()
}

/// Span-derived end-to-end counts reconcile exactly with the event
/// counts of an under-provisioned (really dropping) session.
#[test]
fn span_counts_reconcile_exactly_with_event_counts() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(
        TracerConfig::new("span-recon")
            // A starved consumer over tiny buffers -> real drops, so both
            // the completed and the drop-attributed paths are exercised.
            .ring(RingConfig { bytes_per_cpu: 32 * 512, est_event_bytes: 512 })
            .drain_batch(8)
            .poll_interval(Duration::from_millis(10))
            .telemetry_interval(Duration::from_millis(5))
            // Sample every span into the telemetry index.
            .span_sample_every(1),
    );

    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd = t.creat("/data.bin", 0o644).unwrap();
    for i in 0..4_000u64 {
        t.pwrite64(fd, b"x", i).unwrap();
    }
    t.close(fd).unwrap();
    let report = session.stop();
    let spans = &report.trace.spans;

    // The workload actually exercised both outcomes.
    assert!(report.trace.events_dropped > 0, "tiny ring must drop");
    assert!(report.trace.events_stored > 0);

    // Exact reconciliation: one completed span per stored event, one
    // dropped span per dropped event, nothing double-counted.
    assert_eq!(spans.completed, report.trace.events_stored);
    assert_eq!(spans.e2e.count, report.trace.events_stored);
    assert_eq!(spans.dropped, report.trace.events_dropped);
    assert_eq!(
        spans.completed + spans.dropped,
        report.trace.events_stored + report.trace.events_dropped,
        "every accepted event ends as exactly one span"
    );

    // Every completed span crossed every hand-off: each transition
    // histogram counts exactly the stored events. (Ring-dropped events
    // never reach RingPush, so they contribute to no transition.)
    for (name, count) in transition_counts(spans) {
        assert_eq!(count, report.trace.events_stored, "transition {name}");
    }

    // Drop attribution: the only starvation point in this configuration
    // is the ring, and the per-stage counters sum back to the total.
    assert_eq!(spans.drops_by_stage.get("ring_push"), Some(&spans.dropped));
    assert_eq!(spans.drops_by_stage.values().sum::<u64>(), spans.dropped);

    // A stopped session has shipped everything it will ever ship.
    assert_eq!(spans.lag_watermark_ns, 0);
    assert!(spans.peak_lag_ns > 0, "a starved pipeline must have lagged at some point");

    // The health snapshot carries the same accounting as counters.
    assert_eq!(report.trace.health.counter("span.completed"), spans.completed);
    assert_eq!(report.trace.health.counter("span.dropped"), spans.dropped);
    assert_eq!(report.trace.health.counter("span.drop.at_ring_push"), spans.dropped);

    // One source of truth for drops: the ring's per-CPU counters, the
    // `ebpf.ring.dropped` telemetry counter, and the span collector's
    // attribution are all updated at the ring's single overflow site, so
    // every layer reports the same number.
    assert_eq!(report.trace.health.counter("ebpf.ring.dropped"), spans.dropped);
    assert_eq!(report.trace.health.counter("ebpf.ring.dropped"), report.trace.events_dropped);

    // With 1-in-1 sampling every completed span became a queryable span
    // document in the telemetry index, next to the metric documents.
    let index = dio.telemetry_index("span-recon").expect("telemetry index exists");
    assert_eq!(index.count(&Query::term("kind", "span")), spans.completed);
}

/// Sampling: 1-in-N keeps the document volume bounded while the span
/// accounting itself stays exact; N = 0 disables span documents entirely.
#[test]
fn span_sampling_bounds_documents_without_losing_accounting() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(
        TracerConfig::new("sampled")
            .telemetry_interval(Duration::from_millis(5))
            .span_sample_every(10),
    );
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    for i in 0..500u64 {
        let fd = t.creat(&format!("/f{i}"), 0o644).unwrap();
        t.write(fd, b"payload").unwrap();
        t.close(fd).unwrap();
    }
    let report = session.stop();
    let spans = &report.trace.spans;

    // Accounting is exact regardless of the sampling rate.
    assert_eq!(spans.completed, report.trace.events_stored);
    assert_eq!(spans.e2e.count, 1_500);
    assert_eq!(spans.dropped, 0);
    assert!(spans.drops_by_stage.is_empty());

    // 1-in-10 sampling: exactly ceil(1500 / 10) documents, in order.
    let index = dio.telemetry_index("sampled").expect("telemetry index exists");
    assert_eq!(index.count(&Query::term("kind", "span")), 150);

    // Sampled documents carry the derived stage latencies.
    let resp = index.search(&SearchRequest::new(Query::term("kind", "span")).size(1));
    let doc = &resp.hits[0].source;
    assert!(doc.get("stamps").is_some(), "raw stamps present: {doc}");
    assert!(doc.get("stage_ns").is_some(), "derived latencies present: {doc}");
    assert!(doc.get("e2e_ns").is_some(), "e2e present: {doc}");
    assert_eq!(doc.get("session").and_then(|v| v.as_str()), Some("sampled"));
}

/// Disabling telemetry disables span documents but not span accounting.
#[test]
fn spans_accounted_even_with_telemetry_off() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(TracerConfig::new("quiet").telemetry(false).span_sample_every(1));
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd = t.creat("/q.bin", 0o644).unwrap();
    t.write(fd, b"data").unwrap();
    t.close(fd).unwrap();
    let report = session.stop();

    assert_eq!(report.trace.spans.completed, 3);
    assert_eq!(report.trace.spans.e2e.count, 3);
    assert_eq!(report.trace.spans.lag_watermark_ns, 0);
    assert!(dio.telemetry_index("quiet").is_none(), "no exporter, no span documents");
}
