//! Concurrency stress: many threads, shared files, tracing under load,
//! drops under a deliberately starved consumer.

use std::sync::Arc;

use dio::core::{Dio, DiskProfile, Kernel, OpenFlags, Query, RingConfig, TracerConfig};
use dio_kernel::{SimClock, Vfs};

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

#[test]
fn parallel_file_churn_is_trace_consistent() {
    let kernel = fast_kernel();
    let dio = Dio::with_kernel(kernel);
    let session = dio.trace(TracerConfig::new("churn"));

    let mut handles = Vec::new();
    for w in 0..6 {
        let proc = dio.kernel().spawn_process(format!("worker{w}"));
        let t = proc.spawn_thread(format!("worker{w}"));
        handles.push(std::thread::spawn(move || {
            t.mkdir(&format!("/w{w}"), 0o755).unwrap();
            for i in 0..50 {
                let path = format!("/w{w}/f{i}");
                let fd = t.openat(&path, OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();
                t.write(fd, &[w as u8; 64]).unwrap();
                t.fsync(fd).unwrap();
                t.close(fd).unwrap();
                if i % 2 == 0 {
                    t.unlink(&path).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let report = session.stop();
    // 6 workers x (1 mkdir + 50 x (open+write+fsync+close) + 25 unlink)
    let expected = 6 * (1 + 50 * 4 + 25);
    assert_eq!(report.trace.events_stored, expected);
    assert_eq!(report.trace.events_dropped, 0);

    let index = dio.session_index("churn").unwrap();
    for w in 0..6 {
        assert_eq!(
            index.count(&Query::term("proc_name", format!("worker{w}"))),
            (1 + 50 * 4 + 25) as u64,
            "worker{w} attribution"
        );
    }
    // Every event that carries a tag got a path (all opens captured).
    assert_eq!(report.correlation.events_unresolved, 0);
}

#[test]
fn starved_consumer_drops_but_stays_consistent() {
    let kernel = fast_kernel();
    let dio = Dio::with_kernel(kernel);
    let session = dio.trace(
        TracerConfig::new("starved")
            .ring(RingConfig { bytes_per_cpu: 64 * 512, est_event_bytes: 512 }) // 64 slots/cpu
            .drain_batch(16)
            .poll_interval(std::time::Duration::from_millis(10)),
    );
    let t = dio.kernel().spawn_process("burst").spawn_thread("burst");
    for i in 0..5_000 {
        t.creat(&format!("/b{i}"), 0o644).unwrap();
    }
    let report = session.stop();
    let total = report.trace.events_stored + report.trace.events_dropped;
    assert_eq!(total, 5_000, "every event either stored or counted as dropped");
    assert!(report.trace.events_dropped > 0, "the tiny ring must overflow");
    // Whatever reached the backend is whole and queryable.
    let index = dio.session_index("starved").unwrap();
    assert_eq!(index.count(&Query::term("syscall", "creat")), report.trace.events_stored);
}

#[test]
fn shared_fd_between_threads_of_one_process() {
    let kernel = fast_kernel();
    let proc = kernel.spawn_process("sharer");
    let opener = proc.spawn_thread("opener");
    let fd = opener.openat("/shared", OpenFlags::CREAT | OpenFlags::RDWR, 0o644).unwrap();

    // Positional writes from many threads over the same descriptor.
    let mut handles = Vec::new();
    for w in 0..4u8 {
        let t = proc.spawn_thread(format!("t{w}"));
        handles.push(std::thread::spawn(move || {
            for i in 0..64u64 {
                t.pwrite64(fd, &[w + 1], w as u64 * 64 + i).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut buf = vec![0u8; 256];
    assert_eq!(opener.pread64(fd, &mut buf, 0).unwrap(), 256);
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(b, (i / 64) as u8 + 1, "byte {i}");
    }
}

#[test]
fn concurrent_inode_reuse_never_collides() {
    let kernel = fast_kernel();
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let mut handles = Vec::new();
    for w in 0..4 {
        let proc = kernel.spawn_process(format!("reuser{w}"));
        let t = proc.spawn_thread(format!("reuser{w}"));
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut inos = Vec::new();
            for i in 0..100 {
                let path = format!("/r{w}-{i}");
                let fd = t.creat(&path, 0o644).unwrap();
                inos.push((t.fstat(fd).unwrap().ino, path.clone()));
                t.close(fd).unwrap();
                if i % 3 != 0 {
                    t.unlink(&path).unwrap();
                }
            }
            // Inode numbers of still-live files from this worker.
            inos.into_iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == 0)
                .map(|(_, (ino, path))| (ino, path))
                .collect::<Vec<_>>()
        }));
    }
    let mut live: Vec<(u64, String)> = Vec::new();
    for h in handles {
        live.extend(h.join().unwrap());
    }
    // Every live path still resolves to its recorded inode: reuse never
    // handed a live number to someone else.
    let t = kernel.spawn_process("checker").spawn_thread("checker");
    let mut seen = std::collections::HashSet::new();
    for (ino, path) in live {
        assert!(seen.insert(ino), "inode {ino} appears twice among live files");
        assert_eq!(t.stat(&path).unwrap().ino, ino, "{path}");
    }
}

#[test]
fn two_devices_show_distinct_tags() {
    // The paper's testbed: an NVMe dataset disk and a SATA logging disk.
    let kernel = fast_kernel();
    let log_vfs = Vfs::new(999_001, DiskProfile::instant(), SimClock::new());
    kernel.mount("/log", log_vfs);
    let dio = Dio::with_kernel(kernel);
    let session = dio.trace(TracerConfig::new("two-disks"));

    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd1 = t.creat("/data.bin", 0o644).unwrap();
    t.write(fd1, b"on root").unwrap();
    let fd2 = t.creat("/log/app.log", 0o644).unwrap();
    t.write(fd2, b"on logging disk").unwrap();
    session.stop();

    let index = dio.session_index("two-disks").unwrap();
    let tags: Vec<dio::core::FileTag> = index
        .search(&dio::core::SearchRequest::new(Query::term("syscall", "write")))
        .hits
        .iter()
        .map(|h| h.source["file_tag"].as_str().unwrap().parse().unwrap())
        .collect();
    assert_eq!(tags.len(), 2);
    let devs: std::collections::HashSet<u64> = tags.iter().map(|t| t.dev).collect();
    assert_eq!(devs, [dio_kernel::ROOT_DEV, 999_001].into_iter().collect());
    assert_eq!(index.count(&Query::term("file_path", "/log/app.log")), 2);
}

#[test]
fn ring_buffer_concurrent_drop_accounting_is_exact() {
    // Multi-producer / multi-consumer hammering on the per-CPU ring: every
    // push attempt must land in exactly one of {pushed, dropped}, consumers
    // never observe more events than were pushed, and the per-CPU counters
    // sum to the totals.
    use std::sync::atomic::{AtomicBool, Ordering};

    const CPUS: u32 = 4;
    const SLOTS: usize = 32;
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 20_000;

    let ring: Arc<dio_ebpf::RingBuffer<u64>> =
        Arc::new(dio_ebpf::RingBuffer::with_slots(CPUS, SLOTS));
    let stop = Arc::new(AtomicBool::new(false));

    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut taken = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    taken += ring.drain_all(64).len() as u64;
                    // A deliberately lagging consumer, so the tiny buffers
                    // actually overflow (the regime §III-D measures).
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                taken += ring.drain_all(usize::MAX).len() as u64;
                taken
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let _ = ring.try_push((p % CPUS as u64) as u32, p * PER_PRODUCER + i);
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }

    // Mid-run (consumers still draining): accounting already exact.
    let attempts = PRODUCERS * PER_PRODUCER;
    let mid = ring.stats();
    assert_eq!(mid.pushed + mid.dropped, attempts, "every attempt pushed or dropped");
    assert!(mid.consumed <= mid.pushed, "cannot consume more than was pushed");

    stop.store(true, Ordering::Relaxed);
    let consumed_by_threads: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
    let leftover = ring.drain_all(usize::MAX).len() as u64;

    let stats = ring.stats();
    assert_eq!(stats.pushed + stats.dropped, attempts);
    assert_eq!(stats.consumed, consumed_by_threads + leftover, "drains account for consumed");
    assert_eq!(stats.consumed, stats.pushed, "fully drained at shutdown");
    assert!(ring.is_empty());
    assert!(stats.dropped > 0, "32-slot buffers under 160k bursty pushes must overflow");

    // Per-CPU counters reconcile with the totals, and no buffer ever held
    // more than its capacity.
    assert_eq!(stats.per_cpu.iter().map(|c| c.pushed).sum::<u64>(), stats.pushed);
    assert_eq!(stats.per_cpu.iter().map(|c| c.dropped).sum::<u64>(), stats.dropped);
    assert_eq!(stats.per_cpu.iter().map(|c| c.consumed).sum::<u64>(), stats.consumed);
    assert!(stats.occupancy_hwm as usize <= SLOTS);
    for cpu in &stats.per_cpu {
        assert_eq!(cpu.pushed + cpu.dropped, attempts / CPUS as u64, "uniform producer load");
        assert!(cpu.occupancy_hwm as usize <= SLOTS);
    }
}
