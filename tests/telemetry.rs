//! Self-telemetry end-to-end: the metrics the pipeline reports about
//! itself must reconcile *exactly* with the ground truth the tracer
//! returns in its [`TraceSummary`], and the health index + dashboard must
//! be populated after a traced run.

use std::time::Duration;

use dio::core::{Dio, DiskProfile, Kernel, Query, RingConfig, TracerConfig};
use dio_viz::{render_health_dashboard, HealthReport};

fn fast_kernel() -> Kernel {
    Kernel::builder().root_disk(DiskProfile::instant()).build()
}

/// Telemetry counters reconcile exactly with the trace summary: stored,
/// dropped and filtered events agree between the self-reported metrics and
/// the pipeline's own accounting.
#[test]
fn telemetry_counters_reconcile_with_trace_summary() {
    let dio = Dio::with_kernel(fast_kernel());
    let traced = dio.kernel().spawn_process("app");
    let noisy = dio.kernel().spawn_process("neighbor");
    let session = dio.trace(
        TracerConfig::new("recon")
            // Only the traced process passes the in-kernel filter -> every
            // syscall of the neighbor is counted as filtered.
            .pids([traced.pid()])
            // A starved consumer over tiny buffers -> real drops.
            .ring(RingConfig { bytes_per_cpu: 32 * 512, est_event_bytes: 512 })
            .drain_batch(8)
            .poll_interval(Duration::from_millis(10))
            .telemetry_interval(Duration::from_millis(5)),
    );

    let t = traced.spawn_thread("app");
    let fd = t.creat("/data.bin", 0o644).unwrap();
    for i in 0..4_000u64 {
        t.pwrite64(fd, b"x", i).unwrap();
    }
    t.close(fd).unwrap();
    let n = noisy.spawn_thread("neighbor");
    let nfd = n.creat("/noise.bin", 0o644).unwrap();
    for i in 0..500u64 {
        n.pwrite64(nfd, b"y", i).unwrap();
    }
    n.close(nfd).unwrap();
    let report = session.stop();
    let health = &report.trace.health;

    // Exact reconciliation against the summary's ground truth.
    assert_eq!(health.counter("ebpf.ring.dropped"), report.trace.events_dropped);
    assert_eq!(health.counter("ebpf.filter.rejected"), report.trace.events_filtered);
    assert_eq!(health.counter("ebpf.ring.consumed"), report.trace.events_stored);
    assert_eq!(
        health.counter("ebpf.ring.pushed"),
        report.trace.events_stored,
        "shutdown drains the ring, so everything pushed is stored"
    );

    // The workload actually exercised every accounting path.
    assert!(report.trace.events_dropped > 0, "tiny ring must drop");
    assert_eq!(
        report.trace.events_filtered, 502,
        "the neighbor's creat + 500 writes + close rejected by the PID filter"
    );
    assert!(report.trace.events_stored > 0);

    // Conservation across the whole pipeline: every accepted event is
    // pushed or dropped, and every dispatched syscall is accepted or
    // rejected by the filter.
    assert_eq!(
        health.counter("ebpf.filter.accepted"),
        health.counter("ebpf.ring.pushed") + health.counter("ebpf.ring.dropped"),
    );
    assert_eq!(
        health.counter("kernel.syscalls.dispatched"),
        health.counter("ebpf.filter.accepted") + health.counter("ebpf.filter.rejected"),
    );
    assert_eq!(
        health.counter("kernel.syscalls.dispatched"),
        4_504,
        "both processes' syscalls are dispatched; only the filter separates them"
    );

    // Stage instrumentation saw real traffic.
    assert!(health.gauge("ebpf.ring.occupancy_hwm") > 0);
    let batches = health.histogram("tracer.shipper.batch_ns").expect("shipper timed batches");
    assert!(batches.count > 0);
    assert!(batches.p99 >= batches.p50);
    assert!(health.histogram("tracer.consumer.parse_ns").expect("parse timed").count > 0);
}

/// A traced run populates the `dio-telemetry-<session>` index with health
/// documents, the session listing hides it, and the health dashboard
/// renders nonzero derived indicators from it.
#[test]
fn health_index_and_dashboard_populated() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(
        TracerConfig::new("healthy")
            .ring(RingConfig { bytes_per_cpu: 64 * 512, est_event_bytes: 512 })
            .drain_batch(16)
            .poll_interval(Duration::from_millis(5))
            .telemetry_interval(Duration::from_millis(5)),
    );
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    for i in 0..2_000u64 {
        let fd = t.creat(&format!("/f{i}"), 0o644).unwrap();
        t.write(fd, b"payload").unwrap();
        t.close(fd).unwrap();
    }
    let report = session.stop();

    // The telemetry index exists, is populated, and stays out of the
    // user-facing session list.
    assert_eq!(dio.sessions(), vec!["healthy".to_string()]);
    let index = dio.telemetry_index("healthy").expect("telemetry index exists");
    assert!(index.count(&Query::MatchAll) > 0, "health documents shipped");
    assert!(
        index.count(&Query::term("metric", "kernel.syscalls.dispatched")) > 0,
        "per-metric docs queryable"
    );

    // Parsed report agrees with the live snapshot the summary captured.
    let parsed = HealthReport::from_index(&index);
    assert!(!parsed.snapshots.is_empty());
    let last = parsed.latest().expect("at least one export round");
    assert_eq!(
        last.counter("kernel.syscalls.dispatched"),
        report.trace.health.counter("kernel.syscalls.dispatched"),
        "final export round carries the end state"
    );
    assert!(parsed.syscall_rate() > 0.0);

    // The rendered dashboard shows the acceptance-criteria indicators.
    let out = render_health_dashboard(&index);
    assert!(out.contains("pipeline-health"), "dashboard header:\n{out}");
    assert!(out.contains("syscall dispatch rate:"), "syscall rate shown:\n{out}");
    assert!(out.contains("ring drop rate:"), "drop rate shown:\n{out}");
    assert!(out.contains("occupancy high-water mark"), "ring HWM shown:\n{out}");
    assert!(out.contains("tracer.shipper.batch_ns"), "shipper latency percentiles:\n{out}");
    assert!(!out.contains("no health documents"));
}

/// Telemetry can be disabled: no exporter index, empty health snapshot,
/// and the pipeline still works.
#[test]
fn telemetry_off_leaves_no_index() {
    let dio = Dio::with_kernel(fast_kernel());
    let session = dio.trace(TracerConfig::new("quiet").telemetry(false));
    let t = dio.kernel().spawn_process("app").spawn_thread("app");
    let fd = t.creat("/q.bin", 0o644).unwrap();
    t.write(fd, b"data").unwrap();
    t.close(fd).unwrap();
    let report = session.stop();

    assert_eq!(report.trace.events_stored, 3);
    assert!(dio.telemetry_index("quiet").is_none(), "no exporter ran");
    // The in-process registry still counted (instrumentation is always on;
    // only the export loop is gated).
    assert_eq!(report.trace.health.counter("kernel.syscalls.dispatched"), 3);
}
